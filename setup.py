"""Legacy shim: the sandbox's setuptools has no `wheel`, so PEP-660 editable
installs fail; `python setup.py develop` / `pip install -e .` via this file
works offline."""

from setuptools import setup

setup()
