"""Persistent content-addressed store of sizing results.

The store is a JSONL file (one entry per line) fronted by an in-memory
index.  Entries are plain dicts (see
:func:`repro.cache.fingerprint.make_entry`) keyed by the content address of
the sizing problem; a secondary index over ``(circuit_fp, context_fp)``
serves *near-hit* lookups — same circuit and context, different delay spec —
whose envs warm-start a fresh GP solve.

Concurrency model: the cache is **single-writer**.  Worker processes open
the file read-only (``autosync=False``) and accumulate their new entries in
memory; the parent collects them over the pool boundary and appends
(:meth:`SizingCache.merge_entries`).  Loading is tolerant: corrupt or
foreign lines are skipped and counted, and duplicate keys resolve
last-write-wins, so a torn append can never poison the store.

The cache is an *accelerator*, never an oracle: every exact hit is either
admitted on a verified solution certificate whose bindings are re-checked
at lookup time (``SmartSizer._admit_certified``, DESIGN §13) or
re-verified by the engine's own STA check loop before it is returned (see
``SmartSizer._verify_cached`` and DESIGN.md's soundness argument).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..obs.log import get_logger

log = get_logger(__name__)

FORMAT = "smart-sizing-cache/1"

#: Minimal shape a line must have to be accepted into the index.
_REQUIRED_FIELDS = ("key", "circuit_fp", "context_fp", "spec_fp", "env")


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache session.

    ``cert_hits`` counts the exact hits admitted on a verified solution
    certificate instead of a full STA re-run (it is a subset of
    ``exact_hits``: STA-verified admissions are ``exact_hits -
    cert_hits``), so the stats always record which verification path ran.
    """

    exact_hits: int = 0
    cert_hits: int = 0
    warm_hits: int = 0
    misses: int = 0
    stores: int = 0
    verify_failures: int = 0
    wall_saved_s: float = 0.0

    @property
    def lookups(self) -> int:
        return self.exact_hits + self.warm_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Exact-hit fraction of all lookups (0.0 when none happened)."""
        return self.exact_hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "exact_hits": self.exact_hits,
            "cert_hits": self.cert_hits,
            "warm_hits": self.warm_hits,
            "misses": self.misses,
            "stores": self.stores,
            "verify_failures": self.verify_failures,
            "wall_saved_s": round(self.wall_saved_s, 6),
            "hit_rate": round(self.hit_rate, 6),
        }

    def absorb(self, other: Dict[str, float]) -> None:
        """Fold a worker's stats dict into this one (hit_rate recomputed)."""
        self.exact_hits += int(other.get("exact_hits", 0))
        self.cert_hits += int(other.get("cert_hits", 0))
        self.warm_hits += int(other.get("warm_hits", 0))
        self.misses += int(other.get("misses", 0))
        self.stores += int(other.get("stores", 0))
        self.verify_failures += int(other.get("verify_failures", 0))
        self.wall_saved_s += float(other.get("wall_saved_s", 0.0))


class SizingCache:
    """Content-addressed sizing-result cache with optional JSONL persistence.

    Parameters
    ----------
    path:
        JSONL file backing the cache.  ``None`` keeps the cache purely
        in-memory (still useful: an advisor run sizes the same circuit
        fingerprint across delay scales and baselines).
    autosync:
        When True (the default) every :meth:`put` appends to ``path``
        immediately.  Workers use ``autosync=False`` so only the parent
        process ever writes the file.
    certificates:
        Optional solution-certificate store (duck-typed to
        :class:`repro.lint.solution.SolutionCertificateStore`; held as a
        plain attribute so this module never imports the lint package).
        When attached, the engine admits exact hits on a verified
        ``smart-solution-certificate/1`` record instead of a full STA
        re-run, and falls back to the STA check when the certificate is
        absent, stale, or fails any binding.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        autosync: bool = True,
        certificates: Optional[object] = None,
    ):
        self.path = path
        self.autosync = autosync
        self.certificates = certificates
        self.stats = CacheStats()
        self._entries: Dict[str, dict] = {}
        self._by_context: Dict[Tuple[str, str], List[str]] = {}
        self._new: List[dict] = []
        self.skipped_lines = 0
        if path and os.path.exists(path):
            self._load(path)

    # -- loading -----------------------------------------------------------

    def _load(self, path: str) -> None:
        with open(path) as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    self.skipped_lines += 1
                    log.warning("%s:%d: skipping corrupt cache line", path, line_no)
                    continue
                if not isinstance(entry, dict) or any(
                    f not in entry for f in _REQUIRED_FIELDS
                ):
                    self.skipped_lines += 1
                    log.warning("%s:%d: skipping foreign cache line", path, line_no)
                    continue
                self._index(entry)

    def _index(self, entry: dict) -> None:
        key = entry["key"]
        if key not in self._entries:
            self._by_context.setdefault(
                (entry["circuit_fp"], entry["context_fp"]), []
            ).append(key)
        self._entries[key] = entry

    # -- lookups -----------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """Exact hit: the entry stored under this content address, or None."""
        return self._entries.get(key)

    def nearest(
        self, circuit_fp: str, context_fp: str, spec_data: float
    ) -> Optional[dict]:
        """Best warm-start candidate: same circuit + context, closest delay
        target by log-ratio (sizing scales multiplicatively with budget)."""
        keys = self._by_context.get((circuit_fp, context_fp))
        if not keys or spec_data <= 0:
            return None
        best, best_dist = None, math.inf
        for key in keys:
            entry = self._entries[key]
            cached = float(entry.get("spec_data", 0.0))
            if cached <= 0:
                continue
            dist = abs(math.log(cached / spec_data))
            if dist < best_dist:
                best, best_dist = entry, dist
        return best

    # -- writes ------------------------------------------------------------

    def put(self, entry: dict) -> None:
        """Insert an entry (idempotent per key) and persist when autosyncing."""
        if any(f not in entry for f in _REQUIRED_FIELDS):
            raise ValueError(
                f"cache entry missing required fields {_REQUIRED_FIELDS}"
            )
        known = self._entries.get(entry["key"])
        self._index(entry)
        self.stats.stores += 1
        if known == entry:
            return
        self._new.append(entry)
        if self.autosync and self.path:
            self._append(entry)

    def merge_entries(self, entries: Iterable[dict]) -> int:
        """Fold entries produced elsewhere (worker processes) into this
        cache; returns how many were new."""
        merged = 0
        for entry in entries:
            if self._entries.get(entry["key"]) == entry:
                continue
            self._index(entry)
            self._new.append(entry)
            merged += 1
            if self.autosync and self.path:
                self._append(entry)
        return merged

    def _append(self, entry: dict) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(
                json.dumps(
                    entry, sort_keys=True, separators=(",", ":"), default=str
                )
                + "\n"
            )

    def seed(self, entries: Iterable[dict]) -> None:
        """Index entries without marking them new or persisting — how a
        parent cache's snapshot is shipped into a worker process."""
        for entry in entries:
            if isinstance(entry, dict) and all(
                f in entry for f in _REQUIRED_FIELDS
            ):
                self._index(entry)

    def drain_new(self) -> List[dict]:
        """Return and clear the not-yet-shipped entries (worker-side: what
        goes back to the parent after each task)."""
        new, self._new = self._new, []
        return new

    def flush(self) -> None:
        """Append all not-yet-persisted entries (for ``autosync=False``)."""
        if not self.path:
            return
        for entry in self._new:
            self._append(entry)
        self._new = []

    # -- introspection -----------------------------------------------------

    def new_entries(self) -> List[dict]:
        """Entries added this session (what a worker ships to the parent)."""
        return list(self._new)

    def entries_snapshot(self) -> List[dict]:
        """Every entry currently indexed (used to seed worker caches when
        the parent cache has no backing file)."""
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        backing = self.path or "<memory>"
        return f"SizingCache({backing!r}, entries={len(self._entries)})"


class JsonlArtifactStore:
    """Generic content-addressed JSONL artifact store.

    The persistence substrate shared by the interface-contract store
    (:mod:`repro.cache.contracts`) and the incremental lint result cache
    (:mod:`repro.lint.incremental`).  Same concurrency model and tolerance
    properties as :class:`SizingCache`: single writer, corrupt/foreign lines
    skipped and counted, duplicate keys last-write-wins.  Entries are plain
    dicts carrying at least ``key`` and ``format``; a line whose ``format``
    disagrees with this store's is foreign (a different artifact kind, or a
    prior incompatible schema) and is ignored rather than aliased.
    """

    #: Minimal shape a line must have to be accepted.
    REQUIRED_FIELDS = ("key", "format")

    def __init__(
        self,
        path: Optional[str] = None,
        fmt: str = "smart-artifact/1",
        autosync: bool = True,
    ):
        self.path = path
        self.format = fmt
        self.autosync = autosync
        self._entries: Dict[str, dict] = {}
        self._new: List[dict] = []
        self.skipped_lines = 0
        if path and os.path.exists(path):
            self._load(path)

    def _load(self, path: str) -> None:
        with open(path) as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    self.skipped_lines += 1
                    log.warning(
                        "%s:%d: skipping corrupt artifact line", path, line_no
                    )
                    continue
                if (
                    not isinstance(entry, dict)
                    or any(f not in entry for f in self.REQUIRED_FIELDS)
                    or entry["format"] != self.format
                ):
                    self.skipped_lines += 1
                    log.warning(
                        "%s:%d: skipping foreign artifact line", path, line_no
                    )
                    continue
                self._entries[entry["key"]] = entry

    def get(self, key: str) -> Optional[dict]:
        return self._entries.get(key)

    def put(self, key: str, payload: dict) -> dict:
        """Store ``payload`` under ``key`` (idempotent; persists when
        autosyncing).  Returns the full entry as indexed."""
        entry = dict(payload)
        entry["key"] = key
        entry["format"] = self.format
        if self._entries.get(key) == entry:
            return entry
        self._entries[key] = entry
        self._new.append(entry)
        if self.autosync and self.path:
            self._append(entry)
        return entry

    def _append(self, entry: dict) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(
                json.dumps(
                    entry, sort_keys=True, separators=(",", ":"), default=str
                )
                + "\n"
            )

    def flush(self) -> None:
        """Append all not-yet-persisted entries (for ``autosync=False``)."""
        if not self.path:
            return
        for entry in self._new:
            self._append(entry)
        self._new = []

    def entries(self) -> List[dict]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        backing = self.path or "<memory>"
        return (
            f"JsonlArtifactStore({backing!r}, format={self.format!r}, "
            f"entries={len(self._entries)})"
        )
