"""Content-addressed persistent sizing cache.

Pairs a canonical circuit fingerprint (:mod:`repro.netlist.fingerprint`)
with context (models/objective/solver) and spec fingerprints to address a
JSONL store of sizing envs.  Exact hits are re-verified by the engine's STA
check loop before reuse; near hits warm-start the GP solve.  See DESIGN.md
("Sizing cache") for the key composition and the soundness argument.
"""

from .fingerprint import (
    CacheKey,
    circuit_fingerprint,
    context_fingerprint,
    make_entry,
    sizing_cache_key,
    spec_fingerprint,
)
from .contracts import CONTRACT_STORE_FORMAT, ContractStore
from .store import FORMAT, CacheStats, JsonlArtifactStore, SizingCache

__all__ = [
    "CacheKey",
    "CacheStats",
    "CONTRACT_STORE_FORMAT",
    "ContractStore",
    "FORMAT",
    "JsonlArtifactStore",
    "SizingCache",
    "circuit_fingerprint",
    "context_fingerprint",
    "make_entry",
    "sizing_cache_key",
    "spec_fingerprint",
]
