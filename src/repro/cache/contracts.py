"""Persistent store of macro interface contracts.

An interface contract (:mod:`repro.lint.contracts`) summarizes one macro's
boundary behavior — per-port phase/monotonicity facts, load/drive and
delay-slope intervals, funcspec equivalence status, slice-isomorphism
signature, plus the macro's own flat lint findings.  Contracts are
content-addressed by the v2 circuit fingerprint: a contract is valid for
*exactly* the netlist it was derived from, so reuse never needs a
timestamp or dirty bit — either the fingerprint matches and every fact
still holds, or it misses and the contract is re-derived.

A secondary index over the contract's *identity* (caller-chosen, e.g.
``"adder/static_ripple|w8"``) powers stale detection (rule CTR504): if an
identity resolves to contracts whose fingerprints all differ from the
instantiated circuit's, the macro was edited after characterization.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .store import JsonlArtifactStore

CONTRACT_STORE_FORMAT = "smart-contract-store/1"


class ContractStore:
    """Content-addressed contract artifacts over a JSONL backing file.

    Same single-writer discipline as :class:`~repro.cache.store.SizingCache`;
    ``path=None`` keeps contracts purely in memory (one hier-lint run still
    reuses a shared macro's contract across its instances).
    """

    def __init__(self, path: Optional[str] = None, autosync: bool = True):
        self._store = JsonlArtifactStore(
            path, fmt=CONTRACT_STORE_FORMAT, autosync=autosync
        )
        self._by_identity: Dict[str, List[str]] = {}
        for entry in self._store.entries():
            self._index_identity(entry)

    def _index_identity(self, entry: dict) -> None:
        identity = entry.get("identity")
        if identity:
            keys = self._by_identity.setdefault(identity, [])
            if entry["key"] not in keys:
                keys.append(entry["key"])

    # -- lookups -----------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[dict]:
        """The contract derived from exactly this netlist, or None."""
        return self._store.get(fingerprint)

    def for_identity(self, identity: str) -> List[dict]:
        """Every stored contract claiming this identity (any fingerprint) —
        the raw material of CTR504 stale-contract detection."""
        return [
            entry
            for key in self._by_identity.get(identity, ())
            for entry in [self._store.get(key)]
            if entry is not None
        ]

    # -- writes ------------------------------------------------------------

    def put(self, contract: dict) -> dict:
        """Store a serialized contract under its circuit fingerprint."""
        fingerprint = contract.get("fingerprint")
        if not fingerprint:
            raise ValueError("contract has no 'fingerprint' field")
        entry = self._store.put(fingerprint, contract)
        self._index_identity(entry)
        return entry

    def flush(self) -> None:
        self._store.flush()

    # -- introspection -----------------------------------------------------

    @property
    def path(self) -> Optional[str]:
        return self._store.path

    @property
    def skipped_lines(self) -> int:
        return self._store.skipped_lines

    def entries(self) -> List[dict]:
        return self._store.entries()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._store

    def __repr__(self) -> str:
        backing = self.path or "<memory>"
        return f"ContractStore({backing!r}, contracts={len(self)})"
