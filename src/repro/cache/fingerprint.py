"""Cache-key composition for sizing results.

A sizing outcome is a pure function of three things, each fingerprinted
independently so the store can distinguish *exact* hits from *near* hits:

* the **circuit** (:func:`repro.netlist.fingerprint.circuit_fingerprint`) —
  stage graph, size-table bounds/pins/ratios, nets, interface;
* the **context** — technology constants, registered stage models (GP and
  analysis libraries separately: the paper's posynomial-vs-PathMill split),
  objective, OTB window, solver method, extraction thresholds;
* the **spec** — the :class:`~repro.sizing.constraints.DelaySpec` plus the
  convergence tolerance.

``key = H(circuit_fp | context_fp | spec_fp)`` addresses exact reuse; the
pair ``(circuit_fp, context_fp)`` addresses the warm-start neighborhood:
same problem geometry, different delay target.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Optional

from ..netlist.fingerprint import circuit_fingerprint

__all__ = [
    "CacheKey",
    "circuit_fingerprint",
    "context_fingerprint",
    "library_payload",
    "sizing_cache_key",
    "spec_fingerprint",
]


def _digest(payload: Any) -> str:
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def library_payload(library) -> Any:
    """Canonical form of a :class:`~repro.models.gates.ModelLibrary`:
    the technology constants plus which model class serves each stage kind
    (a registered custom model must change the fingerprint)."""
    return {
        "tech": dataclasses.asdict(library.tech),
        "models": {
            kind.value: type(model).__name__
            for kind, model in sorted(
                library.registered_models().items(), key=lambda kv: kv[0].value
            )
        },
    }


def context_fingerprint(
    library,
    *,
    analysis_library=None,
    objective: str = "area",
    otb_borrow: float = 0.0,
    gp_method: str = "slsqp",
    max_paths: int = 2_000_000,
    enumeration_threshold: int = 20_000,
) -> str:
    """Fingerprint of everything besides the circuit and the delay spec."""
    payload = {
        "library": library_payload(library),
        "analysis_library": (
            library_payload(analysis_library)
            if analysis_library is not None
            else None
        ),
        "objective": objective,
        "otb_borrow": otb_borrow,
        "gp_method": gp_method,
        "max_paths": max_paths,
        "enumeration_threshold": enumeration_threshold,
    }
    return _digest(payload)


def spec_fingerprint(spec, tolerance: float) -> str:
    """Fingerprint of a :class:`DelaySpec` plus convergence tolerance."""
    return _digest(
        {"spec": dataclasses.asdict(spec), "tolerance": tolerance}
    )


@dataclass(frozen=True)
class CacheKey:
    """The decomposed content address of one sizing problem."""

    circuit_fp: str
    context_fp: str
    spec_fp: str

    @property
    def key(self) -> str:
        return _digest([self.circuit_fp, self.context_fp, self.spec_fp])


def sizing_cache_key(
    circuit,
    library,
    spec,
    *,
    analysis_library=None,
    objective: str = "area",
    otb_borrow: float = 0.0,
    gp_method: str = "slsqp",
    max_paths: int = 2_000_000,
    enumeration_threshold: int = 20_000,
    tolerance: float = 2.0,
) -> CacheKey:
    """The full content address of one :meth:`SmartSizer.size` problem."""
    return CacheKey(
        circuit_fp=circuit_fingerprint(circuit),
        context_fp=context_fingerprint(
            library,
            analysis_library=analysis_library,
            objective=objective,
            otb_borrow=otb_borrow,
            gp_method=gp_method,
            max_paths=max_paths,
            enumeration_threshold=enumeration_threshold,
        ),
        spec_fp=spec_fingerprint(spec, tolerance),
    )


def make_entry(
    key: CacheKey,
    *,
    circuit_name: str,
    objective: str,
    spec_data: float,
    tolerance: float,
    env,
    iterations: int,
    area: float,
    runtime_s: float,
    created_unix: Optional[float] = None,
) -> dict:
    """A store-ready cache entry (plain dict — the store is engine-agnostic)."""
    import time

    return {
        "key": key.key,
        "circuit_fp": key.circuit_fp,
        "context_fp": key.context_fp,
        "spec_fp": key.spec_fp,
        "circuit": circuit_name,
        "objective": objective,
        "spec_data": float(spec_data),
        "tolerance": float(tolerance),
        "env": {name: float(value) for name, value in env.items()},
        "iterations": int(iterations),
        "area": float(area),
        "runtime_s": float(runtime_s),
        "created_unix": (
            float(created_unix) if created_unix is not None else time.time()
        ),
    }
