"""Synthetic datapath functional blocks (Section 6.4 / Table 2 substrate).

The paper applies SMART to whole functional blocks of a production
microprocessor: an instruction-alignment block, two execution-unit bypass
blocks and an instruction-fetch block.  Those netlists are proprietary; the
published facts about them are *compositional* — e.g. "over 13,800
transistors ... datapath macros accounted for 22% of the total transistor
width, and 36% of the total power".

A :class:`BlockDesign` reproduces that composition: a set of macro instances
(drawn from the SMART database, baseline-sized by the over-design heuristic)
plus a body of random control logic whose size is chosen to hit a target
macro width fraction.  The random logic is built as real gates (chains and
trees with designer-fixed sizes and no regularity), so transistor counts and
power come from the same estimators as everything else.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..baseline.overdesign import BaselineResult, OverdesignSizer
from ..macros.base import MacroDatabase, MacroSpec
from ..macros.registry import default_database
from ..models.gates import ModelLibrary
from ..netlist.circuit import Circuit
from ..netlist.stages import StageKind
from ..sim.power import PowerEstimator


@dataclass
class MacroInstanceSpec:
    """One macro instantiation request inside a block."""

    topology: str
    spec: MacroSpec
    count: int = 1
    #: Baseline sizing target: delay budget handed to the over-design sizer,
    #: ps.  None -> a depth-scaled default.
    target_delay: Optional[float] = None


@dataclass(frozen=True)
class BlockConnection:
    """One block-level net wiring macro instances together.

    ``driver`` and each sink are ``(instance_name, port)`` pairs using the
    names :meth:`SizedMacro.instance_name` produces.  Ports not mentioned
    in any connection stay block-level I/O.
    """

    net: str
    driver: Tuple[str, str]
    sinks: Tuple[Tuple[str, str], ...]
    wire_cap: float = 0.0
    external_load: float = 0.0


@dataclass
class SizedMacro:
    """A macro instance with its baseline ("original") sizing."""

    name: str
    topology: str
    spec: MacroSpec
    circuit: Circuit
    baseline: BaselineResult
    count: int

    def instance_name(self, copy: int = 0) -> str:
        """The merge prefix / hierarchical instance name of replica
        ``copy`` — the handle :class:`BlockConnection` endpoints use."""
        return (
            f"{self.topology.split('/')[-1]}_"
            f"{self.name.split('/')[-1]}_{copy}"
        )

    @property
    def width(self) -> float:
        return self.baseline.area * self.count

    def power(self, library: ModelLibrary) -> float:
        report = PowerEstimator(self.circuit, library).estimate(
            self.baseline.resolved
        )
        return report.total * self.count


@dataclass
class BlockDesign:
    """A composed functional block."""

    name: str
    macros: List[SizedMacro]
    random_logic: Circuit
    random_widths: Dict[str, float]
    library: ModelLibrary
    #: Macro-to-macro wiring; consumed by ``merged_circuit`` (flat) and by
    #: ``repro.lint.hier.hier_from_block`` (contract composition).
    connections: List[BlockConnection] = field(default_factory=list)

    # -- composition stats ----------------------------------------------------

    @property
    def macro_width(self) -> float:
        return sum(m.width for m in self.macros)

    @property
    def random_width(self) -> float:
        return self.random_logic.total_width(self.random_widths)

    @property
    def total_width(self) -> float:
        return self.macro_width + self.random_width

    @property
    def macro_width_fraction(self) -> float:
        total = self.total_width
        return self.macro_width / total if total else 0.0

    def macro_power(self) -> float:
        return sum(m.power(self.library) for m in self.macros)

    def random_power(self) -> float:
        return (
            PowerEstimator(self.random_logic, self.library)
            .estimate(self.random_widths)
            .total
        )

    def total_power(self) -> float:
        return self.macro_power() + self.random_power()

    def macro_power_fraction(self) -> float:
        total = self.total_power()
        return self.macro_power() / total if total else 0.0

    def transistor_count(self) -> int:
        return (
            sum(m.circuit.transistor_count() * m.count for m in self.macros)
            + self.random_logic.transistor_count()
        )

    # -- single-netlist view ----------------------------------------------------

    def merged_circuit(self) -> Circuit:
        """The whole block as one :class:`Circuit`.

        Every macro instance (including replicas) and the random control
        logic are instantiated under their own prefixes; macro I/O becomes
        block I/O and all domino macros share one block clock.  This is the
        literal "13,800-transistor block" netlist of Section 6.4 — it can be
        validated, timed, power-estimated, and exported as a single SPICE
        deck.  :attr:`connections` are honored: connected ports bind to
        shared block nets (with the connection's wire cap and load) instead
        of becoming block I/O.
        """
        from ..netlist.nets import NetKind

        block = Circuit(f"{self.name}_flat")
        block.add_net("clk", NetKind.CLOCK)
        port_maps: Dict[str, Dict[str, str]] = {}
        for conn in self.connections:
            net = block.add_net(conn.net)
            net.wire_cap = conn.wire_cap
            net.external_load = conn.external_load
            for inst, port in (conn.driver, *conn.sinks):
                port_maps.setdefault(inst, {})[port] = conn.net
        for macro in self.macros:
            for copy in range(macro.count):
                prefix = macro.instance_name(copy)
                sub = macro.circuit
                # Clock nets bind to the shared block clock by pre-creating
                # the name mapping target; everything else gets prefixed.
                mapping_clk = sub.clock_nets()
                for clk_name in mapping_clk:
                    if clk_name != "clk":
                        block.add_net(clk_name, NetKind.CLOCK)
                pm = port_maps.get(prefix, {})
                mapping = block.merge(sub, prefix=prefix, port_map=pm)
                for net_name in sub.primary_inputs:
                    if net_name not in pm:
                        block.mark_input(mapping[net_name])
                for net_name in sub.primary_outputs:
                    if net_name not in pm:
                        block.mark_output(mapping[net_name])
        for conn in self.connections:
            if conn.external_load > 0:
                block.mark_output(conn.net, external_load=conn.external_load)
        mapping = block.merge(self.random_logic, prefix="ctrl")
        for net_name in self.random_logic.primary_inputs:
            block.mark_input(mapping[net_name])
        for net_name in self.random_logic.primary_outputs:
            block.mark_output(mapping[net_name])
        return block

    def merged_widths(self) -> Dict[str, float]:
        """Label widths for :meth:`merged_circuit` (baseline sizing)."""
        widths: Dict[str, float] = {}
        for macro in self.macros:
            for copy in range(macro.count):
                prefix = macro.instance_name(copy)
                for label, value in macro.baseline.widths.items():
                    widths[f"{prefix}/{label}"] = value
        for label, value in self.random_widths.items():
            widths[f"ctrl/{label}"] = value
        return widths


def _random_logic(
    name: str,
    target_width: float,
    rng: random.Random,
    library: ModelLibrary,
) -> Tuple[Circuit, Dict[str, float]]:
    """Random static control logic totalling roughly ``target_width`` µm.

    Chains of INV/NAND2/NOR2/NAND3 with hand-picked (pinned-style) widths and
    one unique label per stage — exactly the irregular logic SMART does *not*
    optimize.
    """
    circuit = Circuit(f"{name}_ctrl")
    table = circuit.size_table
    tech = library.tech
    from ..netlist.nets import NetKind, Pin, PinClass
    from ..netlist.stages import Stage

    inputs = [circuit.add_net(f"ctl_in{i}") for i in range(8)]
    for net in inputs:
        circuit.mark_input(net.name)

    widths: Dict[str, float] = {}
    live = list(inputs)
    total = 0.0
    index = 0
    while total < target_width:
        kind = rng.choice(
            [StageKind.INV, StageKind.NAND, StageKind.NAND, StageKind.NOR]
        )
        n_in = 1 if kind is StageKind.INV else rng.choice([2, 2, 3])
        srcs = [rng.choice(live) for _ in range(n_in)]
        out = circuit.add_net(f"ctl_n{index}")
        wp = rng.uniform(1.0, 6.0)
        wn = rng.uniform(0.8, 4.0)
        pu = f"CP{index}"
        pd = f"CN{index}"
        table.declare(pu, tech.min_width, tech.max_width)
        table.declare(pd, tech.min_width, tech.max_width)
        widths[pu] = wp
        widths[pd] = wn
        stage = Stage(
            name=f"ctl{index}",
            kind=kind,
            inputs=[
                Pin(f"in{i}", net, PinClass.DATA) for i, net in enumerate(srcs)
            ],
            output=out,
            size_vars={"pull_up": pu, "pull_down": pd},
        )
        circuit.add_stage(stage)
        total += (wp + wn) * (n_in if kind is not StageKind.INV else 1)
        live.append(out)
        if len(live) > 24:
            live = live[-24:]
        index += 1
    # Terminate dangling nets as block outputs.
    driven = {s.output.name for s in circuit.stages}
    loaded = {pin.net.name for s in circuit.stages for pin in s.inputs}
    for net_name in sorted(driven - loaded):
        circuit.mark_output(net_name, external_load=5.0)
    return circuit, widths


def build_block(
    name: str,
    macro_menu: Sequence[MacroInstanceSpec],
    macro_width_fraction: float,
    library: Optional[ModelLibrary] = None,
    database: Optional[MacroDatabase] = None,
    margin: float = 1.5,
    seed: int = 1,
    connections: Sequence[BlockConnection] = (),
) -> BlockDesign:
    """Compose a block: baseline-size the macros, then add enough random
    logic that macros are ``macro_width_fraction`` of the total width.
    ``connections`` wires macro instances to each other (see
    :class:`BlockConnection`); unconnected macro I/O stays block I/O."""
    if not 0 < macro_width_fraction < 1:
        raise ValueError("macro_width_fraction must be in (0, 1)")
    library = library or ModelLibrary()
    database = database or default_database()
    rng = random.Random(seed)

    macros: List[SizedMacro] = []
    for m_index, inst in enumerate(macro_menu):
        circuit = database.generate(inst.topology, inst.spec, library.tech)
        sizer = OverdesignSizer(circuit, library, margin=margin)
        target = inst.target_delay
        if target is None:
            from ..sizing.paths import longest_path_length

            target = 25.0 * max(1, longest_path_length(circuit))
        baseline = sizer.size(target)
        macros.append(
            SizedMacro(
                name=f"{name}/m{m_index}",
                topology=inst.topology,
                spec=inst.spec,
                circuit=circuit,
                baseline=baseline,
                count=inst.count,
            )
        )

    macro_width = sum(m.width for m in macros)
    random_target = macro_width * (1.0 / macro_width_fraction - 1.0)
    random_logic, random_widths = _random_logic(name, random_target, rng, library)
    return BlockDesign(
        name=name,
        macros=macros,
        random_logic=random_logic,
        random_widths=random_widths,
        library=library,
        connections=list(connections),
    )


def demo_block(
    library: Optional[ModelLibrary] = None,
    name: str = "demo_dp",
) -> BlockDesign:
    """The stock multi-macro connected block behind ``repro lint --hier``.

    Four static macros wired as a small datapath slice: a 4-bit ripple
    adder whose sum bits fan out to both a zero-detector and a 4:1 mux's
    data inputs (two sinks per net — the CTR503 load-composition case),
    with a 2:4 decoder driving the mux's one-hot selects.
    """
    library = library or ModelLibrary()
    menu = [
        MacroInstanceSpec("adder/static_ripple", MacroSpec("adder", 4)),
        MacroInstanceSpec("zero_detect/static_tree", MacroSpec("zero_detect", 4)),
        MacroInstanceSpec("mux/strong_mutex_passgate", MacroSpec("mux", 4)),
        MacroInstanceSpec("decoder/flat_static", MacroSpec("decoder", 2)),
    ]
    design = build_block(
        name, menu, macro_width_fraction=0.5, library=library, seed=7
    )
    adder, zdet, mux, dec = (m.instance_name(0) for m in design.macros)
    connections = [
        BlockConnection(
            net=f"sum{i}",
            driver=(adder, f"sum{i}"),
            sinks=((zdet, f"a{i}"), (mux, f"in{i}")),
            wire_cap=1.5,
        )
        for i in range(4)
    ] + [
        BlockConnection(
            net=f"sel{i}",
            driver=(dec, f"o{i}"),
            sinks=((mux, f"s{i}"),),
            wire_cap=1.0,
        )
        for i in range(4)
    ]
    design.connections = connections
    return design
