"""SMART-on-a-block power reduction flow (Section 6.4 / Table 2).

Protocol, exactly as the paper describes its block experiments:

1. every macro in the block starts at its "original" (over-designed) sizing;
2. SMART re-sizes each macro *at the delay the original achieves* (so "a
   timing analysis on the new design showed no performance penalty"),
   minimizing power;
3. block-level savings are the macro power recovered over the whole block's
   power (the random control logic is untouched — SMART is a macro tool).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim.power import PowerEstimator
from ..sizing.engine import (
    SizingError,
    SmartSizer,
    measure_class_delays,
    measure_slopes,
    spec_from_measurement,
)
from .generator import BlockDesign


@dataclass
class MacroReduction:
    """Before/after for one macro instance group."""

    name: str
    topology: str
    count: int
    width_before: float
    width_after: float
    power_before: float
    power_after: float
    delay_before: float
    delay_after: float
    converged: bool

    @property
    def power_saving(self) -> float:
        if self.power_before <= 0:
            return 0.0
        return 1.0 - self.power_after / self.power_before

    @property
    def width_saving(self) -> float:
        if self.width_before <= 0:
            return 0.0
        return 1.0 - self.width_after / self.width_before


@dataclass
class BlockPowerResult:
    """Block-level outcome of the power-reduction pass."""

    block_name: str
    macros: List[MacroReduction]
    random_power: float
    random_width: float

    @property
    def power_before(self) -> float:
        return self.random_power + sum(m.power_before for m in self.macros)

    @property
    def power_after(self) -> float:
        return self.random_power + sum(m.power_after for m in self.macros)

    @property
    def power_saving(self) -> float:
        before = self.power_before
        return (before - self.power_after) / before if before else 0.0

    @property
    def width_before(self) -> float:
        return self.random_width + sum(m.width_before for m in self.macros)

    @property
    def width_after(self) -> float:
        return self.random_width + sum(m.width_after for m in self.macros)

    @property
    def width_saving(self) -> float:
        before = self.width_before
        return (before - self.width_after) / before if before else 0.0

    @property
    def no_performance_penalty(self) -> bool:
        """True when every re-sized macro still meets its original delay
        (within the sizer's convergence tolerance)."""
        return all(m.converged for m in self.macros)


def reduce_block_power(
    block: BlockDesign,
    objective: str = "power",
    tolerance: float = 2.0,
    slack_fraction: float = 0.0,
) -> BlockPowerResult:
    """Run the Section-6.4 flow over a block.

    ``slack_fraction`` optionally loosens each macro's delay target by that
    fraction of the original delay (the paper's re-sizings hold timing, so
    the default is 0).
    """
    library = block.library
    reductions: List[MacroReduction] = []
    for macro in block.macros:
        baseline = macro.baseline
        target = baseline.realized_delay * (1.0 + slack_fraction)
        power_before = macro.power(library)
        reduction = MacroReduction(
            name=macro.name,
            topology=macro.topology,
            count=macro.count,
            width_before=macro.width,
            width_after=macro.width,
            power_before=power_before,
            power_after=power_before,
            delay_before=baseline.realized_delay,
            delay_after=baseline.realized_delay,
            converged=False,
        )
        classes = measure_class_delays(macro.circuit, library, baseline.widths)
        out_slope, int_slope = measure_slopes(
            macro.circuit, library, baseline.widths
        )
        spec = spec_from_measurement(
            classes,
            slack=1.0 + slack_fraction,
            max_output_slope=max(150.0, out_slope * 1.05),
            max_internal_slope=max(350.0, int_slope * 1.05),
        )
        sizer = SmartSizer(macro.circuit, library, objective=objective)
        try:
            result = sizer.size(spec, tolerance=tolerance)
        except SizingError:
            reductions.append(reduction)  # keep the original sizing
            continue
        power_after = (
            PowerEstimator(macro.circuit, library).estimate(result.resolved).total
            * macro.count
        )
        # Only accept the re-sizing when it converged AND actually helps —
        # the designer keeps the original otherwise.
        if result.converged and power_after < power_before:
            reduction.width_after = result.area * macro.count
            reduction.power_after = power_after
            reduction.delay_after = max(result.realized.values(), default=target)
            reduction.converged = True
        reductions.append(reduction)
    return BlockPowerResult(
        block_name=block.name,
        macros=reductions,
        random_power=block.random_power(),
        random_width=block.random_width,
    )
