"""Synthetic functional-block substrate for the Section 6.4 / Table 2
block-level experiments."""

from .generator import (
    BlockDesign,
    MacroInstanceSpec,
    SizedMacro,
    build_block,
)
from .power_reduction import BlockPowerResult, MacroReduction, reduce_block_power

__all__ = [
    "BlockDesign",
    "MacroInstanceSpec",
    "SizedMacro",
    "build_block",
    "reduce_block_power",
    "BlockPowerResult",
    "MacroReduction",
]
