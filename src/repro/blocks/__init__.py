"""Synthetic functional-block substrate for the Section 6.4 / Table 2
block-level experiments."""

from .generator import (
    BlockConnection,
    BlockDesign,
    MacroInstanceSpec,
    SizedMacro,
    build_block,
    demo_block,
)
from .power_reduction import BlockPowerResult, MacroReduction, reduce_block_power

__all__ = [
    "BlockConnection",
    "BlockDesign",
    "MacroInstanceSpec",
    "SizedMacro",
    "build_block",
    "demo_block",
    "reduce_block_power",
    "BlockPowerResult",
    "MacroReduction",
]
