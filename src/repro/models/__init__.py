"""Posynomial component model library (equations (1)-(2) of the paper) and
the technology constants they are parameterized by."""

from .calibrate import (
    CalibrationSample,
    fit_technology,
    measure_samples,
    model_error,
    predicted_delay,
)
from .gates import (
    DominoModel,
    ModelError,
    ModelLibrary,
    PassGateModel,
    StageModel,
    Transition,
    TriStateModel,
)
from .technology import GENERIC_130, GENERIC_180, Technology

__all__ = [
    "Technology",
    "GENERIC_180",
    "GENERIC_130",
    "ModelLibrary",
    "ModelError",
    "StageModel",
    "PassGateModel",
    "TriStateModel",
    "DominoModel",
    "Transition",
    "CalibrationSample",
    "measure_samples",
    "predicted_delay",
    "fit_technology",
    "model_error",
]
