"""Model calibration against the transient simulator.

Figure 3's "Model Building for Sizing" step: before a macro family joins the
database, its component models are fitted so GP predictions track simulation.
Here we calibrate the two technology knobs the posynomial templates expose —
``slope_sensitivity`` (delay added per ps of input slope) and ``stack_derate``
(series-stack resistance factor) — by measuring inverter/NAND test structures
with the switch-level simulator and least-squares fitting the template.

"Better model accuracy leads to faster convergence" (Section 5.1): the
convergence benchmark exercises exactly this by running the sizer with
calibrated vs. deliberately detuned models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..netlist.devices import Polarity, Transistor
from .gates import LN2
from .technology import Technology
from ..sim.transient import TransientSimulator
from ..sim.waveforms import step


@dataclass
class CalibrationSample:
    """One measured data point: an inverter (or stack) driving a load."""

    width_p: float
    width_n: float
    load_ff: float
    input_slope: float
    stack: int
    measured_delay: float  # ps, falling output (NMOS path)


def _inverter_devices(
    width_p: float, width_n: float, stack: int, tech: Technology
) -> List[Transistor]:
    """An inverter whose pull-down is a ``stack``-high series chain (gates
    tied together), the standard stack-penalty test structure."""
    devices = [
        Transistor(
            name="mp",
            polarity=Polarity.PMOS,
            drain="out",
            gate="in",
            source="vdd",
            bulk="vdd",
            width=width_p,
            length=tech.length,
        )
    ]
    node = "out"
    for i in range(stack):
        lower = "vss" if i == stack - 1 else f"mid{i}"
        devices.append(
            Transistor(
                name=f"mn{i}",
                polarity=Polarity.NMOS,
                drain=node,
                gate="in",
                source=lower,
                bulk="vss",
                width=width_n,
                length=tech.length,
            )
        )
        node = lower
    return devices


def measure_samples(
    tech: Technology,
    widths: Tuple[float, ...] = (1.0, 2.0, 4.0),
    loads: Tuple[float, ...] = (5.0, 20.0),
    slopes: Tuple[float, ...] = (10.0, 60.0),
    stacks: Tuple[int, ...] = (1, 2, 3),
) -> List[CalibrationSample]:
    """Run the transient simulator over the calibration grid."""
    samples: List[CalibrationSample] = []
    for w in widths:
        for load in loads:
            for slope in slopes:
                for stack in stacks:
                    devices = _inverter_devices(2.0 * w, w, stack, tech)
                    sim = TransientSimulator(
                        devices, tech, extra_caps={"out": load}
                    )
                    stim = {"in": step(tech.vdd, at=100.0, rise=slope)}
                    horizon = 100.0 + slope + 40.0 * tech.tau * stack
                    result = sim.run(
                        stim, duration=horizon, dt=min(1.0, slope / 8.0),
                        initial={"out": tech.vdd},
                    )
                    delay = result.delay("in", "out", in_rising=True, out_rising=False)
                    if delay is not None and delay > 0:
                        samples.append(
                            CalibrationSample(
                                width_p=2.0 * w,
                                width_n=w,
                                load_ff=load,
                                input_slope=slope,
                                stack=stack,
                                measured_delay=delay,
                            )
                        )
    return samples


def predicted_delay(sample: CalibrationSample, tech: Technology) -> float:
    """The posynomial template's prediction for one sample."""
    stack_r = tech.r_nmos / sample.width_n
    if sample.stack > 1:
        stack_r *= sample.stack * tech.stack_derate
    c_par = tech.c_diff * (sample.width_p + sample.width_n)
    return LN2 * stack_r * (c_par + sample.load_ff) + (
        tech.slope_sensitivity * sample.input_slope
    )


def fit_technology(
    tech: Technology, samples: Optional[List[CalibrationSample]] = None
) -> Technology:
    """Least-squares fit of ``slope_sensitivity`` and ``stack_derate``.

    The template is linear in both knobs given the samples, so the fit is a
    small linear regression — no iterative optimization needed.
    """
    if samples is None:
        samples = measure_samples(tech)
    if not samples:
        raise ValueError("no calibration samples measured")

    rows = []
    rhs = []
    for s in samples:
        base = LN2 * (tech.r_nmos / s.width_n) * (
            tech.c_diff * (s.width_p + s.width_n) + s.load_ff
        )
        if s.stack > 1:
            # delay = base*stack*derate + sens*slope
            rows.append([base * s.stack, s.input_slope])
            rhs.append(s.measured_delay)
        else:
            # delay = base + sens*slope
            rows.append([0.0, s.input_slope])
            rhs.append(s.measured_delay - base)
    A = np.asarray(rows)
    y = np.asarray(rhs)
    has_stack = A[:, 0] != 0
    if has_stack.any():
        solution, *_ = np.linalg.lstsq(A, y, rcond=None)
        derate, sens = float(solution[0]), float(solution[1])
    else:
        sens = float(np.dot(A[:, 1], y) / np.dot(A[:, 1], A[:, 1]))
        derate = tech.stack_derate

    derate = min(1.2, max(0.5, derate))
    sens = min(1.0, max(0.05, sens))
    return tech.scaled(stack_derate=derate, slope_sensitivity=sens)


def model_error(
    tech: Technology, samples: List[CalibrationSample]
) -> float:
    """RMS relative error of the template over the samples."""
    if not samples:
        raise ValueError("no samples")
    errors = [
        (predicted_delay(s, tech) - s.measured_delay) / s.measured_delay
        for s in samples
    ]
    return math.sqrt(sum(e * e for e in errors) / len(errors))
