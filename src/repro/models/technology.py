"""Process technology parameters.

The paper's experiments ran on an Intel 0.18 µm-class process whose device
models are proprietary; we substitute a generic logical-effort/RC technology
with plausible late-1990s constants.  Every published result is normalized,
so what matters is the *ratios* this file fixes (PMOS/NMOS resistance, gate
vs diffusion capacitance, stack penalties), not the absolute picoseconds.

Unit system (used everywhere in the package):

====================  =========
width                 µm
capacitance           fF
resistance            kΩ
time                  kΩ·fF = ps
voltage               V
energy                fJ
power                 µW (at ``frequency`` GHz)
====================  =========
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Technology:
    """Immutable bundle of process constants.

    Attributes
    ----------
    r_nmos, r_pmos:
        Effective switching resistance per unit width, kΩ·µm.  The 2.4x
        PMOS/NMOS ratio reflects the hole/electron mobility gap.
    c_gate, c_diff:
        Gate and drain/source diffusion capacitance per unit width, fF/µm.
    vdd:
        Supply voltage, V.
    length:
        Drawn channel length, µm.
    min_width, max_width:
        Manufacturable device width range, µm (device size constraints in
        Figure 4).
    stack_derate:
        Extra per-device resistance factor for series stacks (velocity
        saturation makes an n-stack slightly faster than n·R; 0.9 is typical).
    slope_gain:
        Output transition time as a multiple of the 50% switching delay.
    slope_sensitivity:
        Added delay per ps of input transition time (the ``tin_slope`` term in
        equation (1)).
    skew_speedup:
        Pull-up resistance multiplier of a high-skew gate (domino output
        inverters trade noise margin for a fast rising edge).
    pass_parallel:
        Resistance factor of a complementary pass gate relative to an NMOS of
        the same width (the parallel PMOS helps).
    frequency:
        Clock frequency in GHz for power numbers.
    activity:
        Default signal switching activity (transitions per cycle x 1/2).
    """

    name: str = "generic180"
    r_nmos: float = 8.0
    r_pmos: float = 19.2
    c_gate: float = 1.9
    c_diff: float = 0.6
    vdd: float = 1.8
    length: float = 0.18
    min_width: float = 0.4
    max_width: float = 200.0
    stack_derate: float = 0.9
    slope_gain: float = 1.8
    slope_sensitivity: float = 0.25
    skew_speedup: float = 0.6
    pass_parallel: float = 0.65
    frequency: float = 1.0
    activity: float = 0.15

    def __post_init__(self) -> None:
        positives = {
            "r_nmos": self.r_nmos,
            "r_pmos": self.r_pmos,
            "c_gate": self.c_gate,
            "c_diff": self.c_diff,
            "vdd": self.vdd,
            "length": self.length,
            "min_width": self.min_width,
            "max_width": self.max_width,
            "frequency": self.frequency,
        }
        for key, value in positives.items():
            if value <= 0:
                raise ValueError(f"technology {self.name}: {key} must be positive")
        if self.min_width > self.max_width:
            raise ValueError(f"technology {self.name}: min_width > max_width")
        if not 0 < self.activity <= 1:
            raise ValueError(f"technology {self.name}: activity must be in (0, 1]")

    # -- derived quantities --------------------------------------------------

    @property
    def tau(self) -> float:
        """Characteristic time constant: unit-width NMOS driving a unit-width
        inverter's gate, ps."""
        return self.r_nmos * self.c_gate

    @property
    def beta(self) -> float:
        """PMOS/NMOS resistance ratio (optimal static P/N width skew)."""
        return self.r_pmos / self.r_nmos

    def inverter_input_cap(self, w_p: float, w_n: float) -> float:
        """Gate capacitance of an inverter with the given device widths, fF."""
        return self.c_gate * (w_p + w_n)

    def switching_energy(self, capacitance: float) -> float:
        """Energy of one full swing of ``capacitance`` fF, in fJ."""
        return capacitance * self.vdd ** 2

    def dynamic_power(self, capacitance: float, activity: float = None) -> float:
        """Average dynamic power of a node, µW (= fJ x GHz)."""
        if activity is None:
            activity = self.activity
        return activity * self.switching_energy(capacitance) * self.frequency

    def scaled(self, **overrides) -> "Technology":
        """A copy with some constants overridden (used by calibration and by
        what-if experiments)."""
        return replace(self, **overrides)


#: Default technology used across examples, tests and benchmarks.
GENERIC_180 = Technology()

#: A faster, lower-voltage node for scaling experiments.
GENERIC_130 = Technology(
    name="generic130",
    r_nmos=6.0,
    r_pmos=14.4,
    c_gate=1.5,
    c_diff=0.8,
    vdd=1.5,
    length=0.13,
    min_width=0.3,
    max_width=150.0,
    frequency=1.6,
)
