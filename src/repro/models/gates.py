"""Posynomial delay/slope/capacitance templates per stage kind.

This is the "library of models" box of Figure 4.  Section 5.1 fixes the
template shape:

    t_rise      = f(t_int, t_in_slope, C_ext, W)      (1)
    t_out_slope = g(t_in_slope, C_ext, W)             (2)

with ``f`` and ``g`` posynomial.  Our instantiation is an Elmore/logical-effort
form::

    delay  = ln2 . R(W) . (C_par(W) + C_load)  +  k_s . t_in_slope
    slope  = slope_gain . R(W) . (C_par(W) + C_load)

where ``R`` is the switching resistance of the pull network engaged by the
transition (a monomial ``1/W`` term) and ``C_par`` the stage's own output
diffusion (a posynomial in the stage's labels).  ``t_in_slope`` enters the GP
as a *frozen constant* — the Figure-4 outer loop re-measures real slopes with
the timing analyzer and re-freezes them, which is exactly why the paper's
models "need not be exact".

All functions return :class:`~repro.posy.Posynomial` objects over size-label
variables, resolved through the circuit's size table so pinned/ratio-tied
labels collapse correctly.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Optional

from ..netlist.nets import Pin, PinClass
from ..netlist.sizing_vars import SizeTable
from ..netlist.stages import Stage, StageKind
from ..posy import Posynomial, as_posynomial
from .technology import Technology

LN2 = math.log(2.0)


class Transition(enum.Enum):
    """Direction of the *output* transition an arc causes."""

    RISE = "rise"
    FALL = "fall"

    @property
    def opposite(self) -> "Transition":
        return Transition.FALL if self is Transition.RISE else Transition.RISE


class ModelError(Exception):
    """Raised for arcs a stage kind does not have (e.g. domino data->rise)."""


class StageModel:
    """Base template: static CMOS complementary gate.

    Subclasses override the resistance/capacitance pieces; the delay/slope
    assembly in :meth:`delay` and :meth:`output_slope` is shared so equations
    (1)/(2) keep one shape across families.
    """

    def __init__(self, tech: Technology):
        self.tech = tech

    # -- capacitance ---------------------------------------------------------

    def input_cap(self, stage: Stage, pin: Pin, table: SizeTable) -> Posynomial:
        """Capacitance presented by ``pin``, fF (posynomial in labels)."""
        w_up = table.monomial(stage.label("pull_up"))
        w_dn = table.monomial(stage.label("pull_down"))
        per_pin = 2.0 if stage.kind is StageKind.XOR else 1.0
        return as_posynomial(per_pin * self.tech.c_gate * w_up) + (
            per_pin * self.tech.c_gate * w_dn
        )

    def output_parasitic(self, stage: Stage, table: SizeTable) -> Posynomial:
        """Diffusion capacitance the stage hangs on its own output, fF."""
        w_up = table.monomial(stage.label("pull_up"))
        w_dn = table.monomial(stage.label("pull_down"))
        n = len(stage.inputs)
        if stage.kind is StageKind.NAND:
            up_count, dn_count = n, 1
        elif stage.kind is StageKind.NOR:
            up_count, dn_count = 1, n
        elif stage.kind is StageKind.XOR:
            up_count, dn_count = 2, 2
        else:
            up_count, dn_count = 1, 1
        return as_posynomial(self.tech.c_diff * up_count * w_up) + (
            self.tech.c_diff * dn_count * w_dn
        )

    # -- resistance ----------------------------------------------------------

    def _stack_r(self, per_width: float, stack: int) -> float:
        """Series-stack resistance coefficient, with velocity-sat derate."""
        if stack <= 1:
            return per_width
        return per_width * stack * self.tech.stack_derate

    def resistance(
        self, stage: Stage, pin: Pin, transition: Transition, table: SizeTable
    ) -> Posynomial:
        """Switching resistance of the engaged network, kΩ (posynomial)."""
        if transition is Transition.RISE:
            r = self._stack_r(self.tech.r_pmos, stage.series_p)
            if stage.params.get("skew") == "high":
                r *= self.tech.skew_speedup
            return as_posynomial(r / table.monomial(stage.label("pull_up")))
        r = self._stack_r(self.tech.r_nmos, stage.series_n)
        if stage.params.get("skew") == "low":
            r *= self.tech.skew_speedup
        return as_posynomial(r / table.monomial(stage.label("pull_down")))

    # -- assembled equations (1) and (2) --------------------------------------

    def delay(
        self,
        stage: Stage,
        pin: Pin,
        transition: Transition,
        load: Posynomial,
        table: SizeTable,
        input_slope: float = 0.0,
    ) -> Posynomial:
        """Pin-to-output delay, ps (posynomial in size labels).

        ``load`` must be the *total* node capacitance (fanout gate caps, wire,
        external, and every driver's own diffusion — the timing analyzer's
        ``net_load``/``load_posynomial`` compute exactly that), so shared
        pass-gate/tri-state merge nodes charge all their parasitics.
        """
        r = self.resistance(stage, pin, transition, table)
        c = as_posynomial(load)
        expr = LN2 * (r * c)
        if input_slope > 0.0:
            expr = expr + self.tech.slope_sensitivity * input_slope
        return expr

    def output_slope(
        self,
        stage: Stage,
        pin: Pin,
        transition: Transition,
        load: Posynomial,
        table: SizeTable,
        input_slope: float = 0.0,
    ) -> Posynomial:
        """Output transition time, ps (posynomial).  ``load`` is the total
        node capacitance, as in :meth:`delay`."""
        r = self.resistance(stage, pin, transition, table)
        c = as_posynomial(load)
        expr = self.tech.slope_gain * (r * c)
        if input_slope > 0.0:
            # A fraction of a slow input edge leaks into the output edge.
            expr = expr + 0.1 * input_slope
        return expr

    def arcs(self, stage: Stage, pin: Pin):
        """Transitions reachable from ``pin`` (both, for static gates)."""
        return (Transition.RISE, Transition.FALL)


class PassGateModel(StageModel):
    """Complementary pass gate with local select inverter (Figure 2a/2b/2c).

    The data pin presents *diffusion* (not gate) load; select-to-output adds
    the local inverter's delay.  Section 5.3: a pass gate produces paths
    through the data port (2 constraints) and through the control port (2
    paths x 2 constraints).
    """

    def input_cap(self, stage: Stage, pin: Pin, table: SizeTable) -> Posynomial:
        w_pass = table.monomial(stage.label("pass"))
        if pin.pin_class is PinClass.DATA:
            return as_posynomial(2.0 * self.tech.c_diff * w_pass)
        w_inv = table.monomial(stage.label("sel_inv"))
        return as_posynomial(self.tech.c_gate * w_pass) + (
            2.0 * self.tech.c_gate * w_inv
        )

    def output_parasitic(self, stage: Stage, table: SizeTable) -> Posynomial:
        w_pass = table.monomial(stage.label("pass"))
        return as_posynomial(2.0 * self.tech.c_diff * w_pass)

    def resistance(
        self, stage: Stage, pin: Pin, transition: Transition, table: SizeTable
    ) -> Posynomial:
        w_pass = table.monomial(stage.label("pass"))
        r_pass = self.tech.pass_parallel * self.tech.r_nmos
        return as_posynomial(r_pass / w_pass)

    def delay(
        self,
        stage: Stage,
        pin: Pin,
        transition: Transition,
        load: Posynomial,
        table: SizeTable,
        input_slope: float = 0.0,
    ) -> Posynomial:
        base = super().delay(stage, pin, transition, load, table, input_slope)
        if pin.pin_class is PinClass.SELECT:
            # Select path first traverses the local complement inverter
            # (it must switch before the PMOS half conducts).
            w_inv = table.monomial(stage.label("sel_inv"))
            w_pass = table.monomial(stage.label("pass"))
            r_inv = (self.tech.r_pmos + self.tech.r_nmos) / 2.0
            inv_delay = LN2 * ((r_inv / w_inv) * (self.tech.c_gate * w_pass))
            base = base + inv_delay
        return base


class TriStateModel(StageModel):
    """Tri-state driver (Figure 2d): 2-stacks, internal enable inverter."""

    def input_cap(self, stage: Stage, pin: Pin, table: SizeTable) -> Posynomial:
        w_up = table.monomial(stage.label("pull_up"))
        w_dn = table.monomial(stage.label("pull_down"))
        if pin.pin_class is PinClass.DATA:
            return as_posynomial(self.tech.c_gate * w_up) + (self.tech.c_gate * w_dn)
        # Enable gates the NMOS directly plus the 0.25x enable inverter.
        return as_posynomial(self.tech.c_gate * w_dn) + (
            0.25 * self.tech.c_gate * (w_up + w_dn)
        )

    def delay(
        self,
        stage: Stage,
        pin: Pin,
        transition: Transition,
        load: Posynomial,
        table: SizeTable,
        input_slope: float = 0.0,
    ) -> Posynomial:
        base = super().delay(stage, pin, transition, load, table, input_slope)
        if pin.pin_class is PinClass.SELECT:
            # Enable inverter is a fixed 0.25x relation of the drive devices
            # and loads only their enable gates, so its delay is a size-
            # independent constant: ln2 * (r_inv / 0.25W) * (c_gate * W).
            r_inv = (self.tech.r_pmos + self.tech.r_nmos) / 2.0
            inv_delay = LN2 * (r_inv / 0.25) * self.tech.c_gate
            base = base + inv_delay
        return base


class DominoModel(StageModel):
    """Dynamic (domino) node: precharge PMOS, NMOS legs, optional D1 foot.

    Arcs (Section 5.3: "dynamic circuits need separate constraints for
    precharge and evaluate paths"):

    * data/select pin -> FALL of the dynamic node (evaluate),
    * clock pin -> RISE (precharge) and, for D1, -> FALL (evaluate via foot).
    """

    def input_cap(self, stage: Stage, pin: Pin, table: SizeTable) -> Posynomial:
        if pin.pin_class is PinClass.CLOCK:
            cap = self.tech.c_gate * table.monomial(stage.label("precharge"))
            if stage.clocked:
                cap = as_posynomial(cap) + self.tech.c_gate * table.monomial(
                    stage.label("evaluate")
                )
            return as_posynomial(cap)
        return as_posynomial(self.tech.c_gate * table.monomial(stage.label("data")))

    def output_parasitic(self, stage: Stage, table: SizeTable) -> Posynomial:
        legs = len(stage.leg_sizes) or 1
        w_pre = table.monomial(stage.label("precharge"))
        w_data = table.monomial(stage.label("data"))
        keeper = float(stage.params.get("keeper", 0.0))
        # Keeper drain + its feedback-inverter input ride on the node.
        pre_factor = 1.0 + keeper + (
            0.5 * keeper * self.tech.c_gate / self.tech.c_diff if keeper else 0.0
        )
        return as_posynomial(self.tech.c_diff * pre_factor * w_pre) + (
            self.tech.c_diff * legs * w_data
        )

    def resistance(
        self, stage: Stage, pin: Pin, transition: Transition, table: SizeTable
    ) -> Posynomial:
        if transition is Transition.RISE:
            if pin.pin_class is not PinClass.CLOCK:
                raise ModelError(
                    f"{stage.name}: domino node can only rise on precharge (clock)"
                )
            return as_posynomial(
                self.tech.r_pmos / table.monomial(stage.label("precharge"))
            )
        leg_series = max(stage.leg_sizes) if stage.leg_sizes else 1
        w_data = table.monomial(stage.label("data"))
        r = as_posynomial(self._stack_r(self.tech.r_nmos, leg_series) / w_data)
        if stage.clocked:
            r = r + self.tech.r_nmos / table.monomial(stage.label("evaluate"))
        keeper = float(stage.params.get("keeper", 0.0))
        if keeper > 0.0:
            # First-order keeper contention: the half-latch fights the pull
            # down with current ~ (k W_pre / r_p) vs (W_data / r_n·stack).
            w_pre = table.monomial(stage.label("precharge"))
            contention = (
                keeper
                * (self._stack_r(self.tech.r_nmos, leg_series) / self.tech.r_pmos)
            ) * (w_pre / w_data)
            r = r + r * contention
        return r

    def arcs(self, stage: Stage, pin: Pin):
        if pin.pin_class is PinClass.CLOCK:
            if stage.clocked:
                return (Transition.RISE, Transition.FALL)
            return (Transition.RISE,)
        return (Transition.FALL,)

    def internal_charge_cap(self, stage: Stage, table: SizeTable) -> Posynomial:
        """Diffusion capacitance of the legs' *internal* series nodes, fF.

        When a leg's upper devices conduct but a lower input stays off, the
        leg's pre-discharged internal nodes share charge with the dynamic
        node and droop it — the classic domino noise hazard.  The worst
        single event exposes the *deepest* leg's internal chain (the foot is
        actively clamped during evaluate and does not count).
        """
        w_data = table.monomial(stage.label("data"))
        worst_leg_nodes = max(
            (size - 1 for size in stage.leg_sizes), default=0
        )
        if worst_leg_nodes <= 0:
            return Posynomial.zero()
        return as_posynomial(
            2.0 * self.tech.c_diff * worst_leg_nodes * w_data
        )


class ModelLibrary:
    """Stage kind -> model.  Extensible: register a custom model to support a
    new logic family (Section 5: the sizer is "extendable to different logic
    families" by swapping modeling while keeping the optimizer)."""

    def __init__(self, tech: Optional[Technology] = None):
        self.tech = tech or Technology()
        self._models: Dict[StageKind, StageModel] = {}
        static = StageModel(self.tech)
        for kind in (
            StageKind.INV,
            StageKind.NAND,
            StageKind.NOR,
            StageKind.AOI,
            StageKind.XOR,
        ):
            self._models[kind] = static
        self._models[StageKind.PASSGATE] = PassGateModel(self.tech)
        self._models[StageKind.TRISTATE] = TriStateModel(self.tech)
        self._models[StageKind.DOMINO] = DominoModel(self.tech)

    def register(self, kind: StageKind, model: StageModel) -> None:
        self._models[kind] = model

    def registered_models(self) -> Dict[StageKind, StageModel]:
        """Stage-kind -> model mapping (read-only view for fingerprinting)."""
        return dict(self._models)

    def model(self, stage: Stage) -> StageModel:
        try:
            return self._models[stage.kind]
        except KeyError:
            raise ModelError(f"no model registered for stage kind {stage.kind}")

    # Convenience pass-throughs -------------------------------------------------

    def input_cap(self, stage: Stage, pin: Pin, table: SizeTable) -> Posynomial:
        return self.model(stage).input_cap(stage, pin, table)

    def output_parasitic(self, stage: Stage, table: SizeTable) -> Posynomial:
        return self.model(stage).output_parasitic(stage, table)

    def delay(
        self,
        stage: Stage,
        pin: Pin,
        transition: Transition,
        load: Posynomial,
        table: SizeTable,
        input_slope: float = 0.0,
    ) -> Posynomial:
        return self.model(stage).delay(stage, pin, transition, load, table, input_slope)

    def output_slope(
        self,
        stage: Stage,
        pin: Pin,
        transition: Transition,
        load: Posynomial,
        table: SizeTable,
        input_slope: float = 0.0,
    ) -> Posynomial:
        return self.model(stage).output_slope(
            stage, pin, transition, load, table, input_slope
        )

    def arcs(self, stage: Stage, pin: Pin):
        return self.model(stage).arcs(stage, pin)
