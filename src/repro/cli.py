"""``smart-advisor`` command line interface.

Subcommands:

* ``advise``  — run the Figure-1 flow for one macro spec and print the
  comparison table;
* ``size``    — size one named topology and print the label widths;
* ``list``    — list the registered topologies;
* ``export``  — generate a macro, size it, and print the SPICE deck;
* ``savings`` — run the Section-6.1 original-vs-SMART protocol on a topology;
* ``curve``   — print a Figure-6 style area-delay sweep for a topology;
* ``inspect`` — replay a ``--trace`` JSONL file into a timing/convergence
  report;
* ``perf``    — the performance observatory: ``perf report`` (self-time
  attribution / ledger summary), ``perf diff`` (noise-aware regression
  comparison of two ledgers or bench trajectories), ``perf export``
  (Chrome ``trace_event`` / speedscope flame graphs), ``perf watch``
  (tail a live ``--stream`` file).

Observability flags (accepted by every run subcommand, or globally before
the subcommand):

* ``--trace FILE``  — record a hierarchical span trace of the whole run as
  JSONL (replay with ``smart-advisor inspect FILE``);
* ``--stream FILE`` — stream the same JSONL *live*, one line per completed
  span/event (tail with ``smart-advisor perf watch FILE --follow``);
* ``--ledger FILE`` — append one run record per advisor/sizer/sweep/lint
  invocation to an append-only JSONL run ledger;
* ``--profile``     — print a per-span wall-time summary and the metrics
  registry after the command;
* ``-v/--verbose``  — route ``repro.*`` diagnostics to stderr (repeat for
  DEBUG).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.advisor import SmartAdvisor
from .core.constraints import DesignConstraints
from .macros.base import MacroSpec
from .netlist.spice import export_circuit
from .obs import metrics as obs_metrics
from .obs import perf as obs_perf
from .obs import trace as obs_trace
from .obs.inspect import inspect_file
from .obs.log import configure_logging, emit, get_logger

log = get_logger(__name__)


def _spec_from_args(args: argparse.Namespace) -> MacroSpec:
    params = ()
    group = getattr(args, "label_group", None)
    if group is not None:
        params = (("label_group", group),)
    return MacroSpec(
        args.macro, args.width, output_load=args.load, params=params
    )


def _constraints_from_args(args: argparse.Namespace) -> DesignConstraints:
    return DesignConstraints(
        delay=args.delay,
        cost=args.cost,
        input_slope=args.input_slope,
    )


def _add_obs_flags(parser: argparse.ArgumentParser, suppress: bool) -> None:
    """Observability flags.

    Added once to the root parser (with real defaults) and once to every
    subparser via a parent (with SUPPRESS defaults), so they are accepted
    both before and after the subcommand without the subparser's defaults
    clobbering a value parsed at the root.
    """
    default = argparse.SUPPRESS if suppress else None
    parser.add_argument(
        "--trace", metavar="FILE", default=default,
        help="write a JSONL span trace of the run to FILE",
    )
    parser.add_argument(
        "--stream", metavar="FILE", default=default,
        help="stream the span trace to FILE live, line by line "
             "(tail with: perf watch FILE --follow)",
    )
    parser.add_argument(
        "--ledger", metavar="FILE", default=default,
        help="append machine-readable run records to this JSONL run ledger",
    )
    parser.add_argument(
        "--profile", action="store_true",
        default=argparse.SUPPRESS if suppress else False,
        help="print a wall-time profile summary after the command",
    )
    parser.add_argument(
        "-v", "--verbose", action="count",
        default=argparse.SUPPRESS if suppress else 0,
        help="diagnostics on stderr (-v info, -vv debug)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("macro", help="macro type (mux, decoder, adder, ...)")
    parser.add_argument("width", type=int, help="bit width / input count")
    parser.add_argument("--delay", type=float, default=150.0, help="delay budget, ps")
    parser.add_argument("--load", type=float, default=20.0, help="output load, fF")
    parser.add_argument(
        "--cost", default="area", choices=["area", "power", "clock", "area+clock"]
    )
    parser.add_argument("--input-slope", type=float, default=30.0)
    parser.add_argument(
        "--label-group", type=int, default=None, metavar="N",
        help=(
            "size-label granularity for macros that honor it (bits per "
            "label group; 1 = per-bit labels, generator default "
            "otherwise)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="smart-advisor",
        description="SMART macro design advisor (DAC 2000 reproduction)",
    )
    _add_obs_flags(parser, suppress=False)
    obs_parent = argparse.ArgumentParser(add_help=False)
    _add_obs_flags(obs_parent, suppress=True)

    sub = parser.add_subparsers(dest="command", required=True)

    advise = sub.add_parser(
        "advise", help="explore all topologies for a spec", parents=[obs_parent]
    )
    _add_common(advise)
    advise.add_argument(
        "--workers", type=int, default=1,
        help="size candidate topologies across this many processes",
    )
    advise.add_argument(
        "--cache", metavar="FILE",
        help="persistent JSONL sizing cache (created if missing)",
    )
    advise.add_argument(
        "--certify", action="store_true",
        help="post-solve gate: audit every sized candidate with the "
             "OPT70x solution-certificate machinery and reject candidates "
             "whose solved point provably fails a constraint",
    )

    sweep = sub.add_parser(
        "sweep",
        help="advise a spec grid (macro x width x delay) in parallel",
        parents=[obs_parent],
        epilog=(
            "exit codes: 0 = every point found a feasible best, "
            "1 = some point infeasible or errored"
        ),
    )
    sweep.add_argument(
        "--macro", action="append", required=True,
        help="macro type to sweep (repeatable)",
    )
    sweep.add_argument(
        "--widths", default="4,8",
        help="comma-separated bit widths",
    )
    sweep.add_argument(
        "--delays", default="250,400",
        help="comma-separated delay budgets, ps",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="advise grid points across this many processes",
    )
    sweep.add_argument(
        "--cache", metavar="FILE",
        help="persistent JSONL sizing cache shared across the sweep",
    )
    sweep.add_argument(
        "--out", metavar="FILE",
        help="write the smart-sweep/1 JSON artifact",
    )
    sweep.add_argument("--load", type=float, default=20.0,
                       help="output load, fF")
    sweep.add_argument(
        "--cost", default="area", choices=["area", "power", "clock", "area+clock"]
    )
    sweep.add_argument("--input-slope", type=float, default=30.0)
    sweep.add_argument("--tolerance", type=float, default=2.0,
                       help="sizing convergence tolerance, ps")

    size = sub.add_parser(
        "size", help="size one topology", parents=[obs_parent]
    )
    _add_common(size)
    size.add_argument("--topology", required=True)
    size.add_argument(
        "--cache", metavar="FILE",
        help="persistent JSONL sizing cache (created if missing)",
    )
    size.add_argument(
        "--report", action="store_true",
        help="print the full timing/slope report for the solution",
    )
    size.add_argument(
        "--save", metavar="PATH",
        help="write the sized design as a JSON artifact",
    )

    sub.add_parser(
        "list", help="list registered topologies", parents=[obs_parent]
    )

    export = sub.add_parser(
        "export", help="size a topology and print SPICE", parents=[obs_parent]
    )
    _add_common(export)
    export.add_argument("--topology", required=True)

    savings = sub.add_parser(
        "savings", help="Section-6.1 protocol: over-design baseline vs SMART",
        parents=[obs_parent],
    )
    _add_common(savings)
    savings.add_argument("--topology", required=True)
    savings.add_argument(
        "--margin", type=float, default=1.5,
        help="over-design margin of the baseline designer",
    )

    curve = sub.add_parser(
        "curve", help="area-delay sweep for a topology", parents=[obs_parent]
    )
    _add_common(curve)
    curve.add_argument("--topology", required=True)
    curve.add_argument(
        "--scales", default="0.9,1.0,1.15,1.3",
        help="comma-separated delay multipliers",
    )

    pareto = sub.add_parser(
        "pareto", help="area-vs-clock frontier across topologies",
        parents=[obs_parent],
    )
    _add_common(pareto)
    pareto.add_argument(
        "--weights", default="0,1,4",
        help="comma-separated clock-load weights for the objective sweep",
    )

    inspect = sub.add_parser(
        "inspect", help="replay a --trace JSONL file as a readable report",
        parents=[obs_parent],
    )
    inspect.add_argument("trace_file", help="JSONL trace written by --trace")

    perf_p = sub.add_parser(
        "perf",
        help="performance observatory: attribution, diff, exports, watch",
        parents=[obs_parent],
    )
    perf_sub = perf_p.add_subparsers(dest="perf_command", required=True)

    perf_report = perf_sub.add_parser(
        "report",
        help="self-time attribution for a trace, or a run-ledger summary",
    )
    perf_report.add_argument(
        "target", help="a --trace JSONL file or a --ledger JSONL file"
    )

    perf_diff = perf_sub.add_parser(
        "diff",
        help="noise-aware comparison of two ledgers / bench trajectories",
        epilog="exit codes: 0 = no regression, 1 = regression "
               "(unless --warn-only), 2 = unreadable input",
    )
    perf_diff.add_argument("base", help="baseline ledger or BENCH_*.json")
    perf_diff.add_argument("new", help="candidate ledger or BENCH_*.json")
    perf_diff.add_argument(
        "--rel-threshold", type=float, default=0.25,
        help="relative slowdown needed to flag (default 0.25 = +25%%)",
    )
    perf_diff.add_argument(
        "--min-effect-ms", type=float, default=50.0,
        help="absolute minimum-effect floor in ms (default 50)",
    )
    perf_diff.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    perf_diff.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (CI soft gate)",
    )

    perf_export = perf_sub.add_parser(
        "export",
        help="convert a --trace JSONL file to flame-graph formats",
    )
    perf_export.add_argument("trace_file", help="JSONL trace to convert")
    perf_export.add_argument(
        "--chrome", metavar="OUT",
        help="write Chrome trace_event JSON (chrome://tracing, Perfetto)",
    )
    perf_export.add_argument(
        "--speedscope", metavar="OUT",
        help="write a speedscope evented profile (https://speedscope.app)",
    )

    perf_watch = perf_sub.add_parser(
        "watch", help="tail a --stream trace file, rendered one span per line"
    )
    perf_watch.add_argument("stream_file", help="JSONL stream to tail")
    perf_watch.add_argument(
        "--follow", action="store_true",
        help="keep polling for new records (like tail -f)",
    )
    perf_watch.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="stop following after S seconds",
    )

    lint = sub.add_parser(
        "lint",
        help="static analysis: ERC, dataflow, coverage, GP pre-solve rules",
        parents=[obs_parent],
        epilog=(
            "exit codes: 0 = clean (no unwaived findings at or above "
            "--fail-on), 1 = findings, 2 = usage error (bad "
            "macro/width/topology, or --solution failed to size)"
        ),
    )
    lint.add_argument("macro", nargs="?", help="macro type (mux, adder, ...)")
    lint.add_argument(
        "width", nargs="?", type=int, help="bit width / input count"
    )
    lint.add_argument(
        "--topology", help="lint one topology (default: all applicable)"
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list every registered rule and exit",
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    lint.add_argument(
        "--waivers", metavar="FILE", help="waiver/suppression file"
    )
    lint.add_argument(
        "--gp", action="store_true",
        help="also build each circuit's constraints and run the GP2xx rules",
    )
    lint.add_argument(
        "--coverage", action="store_true",
        help="also emit and verify the Section-5.2 pruning certificate",
    )
    lint.add_argument(
        "--dataflow", action="store_true",
        help="also run the interval-STA screen (DFA303) against --delay "
             "and report its provably-infeasible/feasible/unknown verdict",
    )
    lint.add_argument(
        "--symbolic", action="store_true",
        help="also run the switch-level SVC4xx group: functional "
             "equivalence vs the golden spec, drive fights, floating "
             "nets, sneak paths, slice isomorphism",
    )
    lint.add_argument(
        "--exact-budget", type=int, default=None, metavar="N",
        help="--symbolic: enumerate exhaustively up to N inputs "
             "(default 10), sample above",
    )
    lint.add_argument(
        "--samples", type=int, default=None, metavar="N",
        help="--symbolic: random assignments above the exact budget "
             "(default 64)",
    )
    lint.add_argument(
        "--electrical", action="store_true",
        help="also run the post-sizing NSA6xx electrical-safety group: "
             "charge-sharing certificates, keeper ratioed-fight/restore "
             "proofs, pass-chain Elmore budgets, coupling screens",
    )
    lint.add_argument(
        "--solution", action="store_true",
        help="also run the post-solve OPT7xx group: size each circuit "
             "with the slice-collapsed sizer against --delay, then audit "
             "the solved point (primal feasibility, KKT optimality-gap "
             "bound, replication soundness, certificate freshness)",
    )
    lint.add_argument(
        "--fail-on", choices=["warning", "error"], default="error",
        help="severity threshold for exit code 1 (default: error; "
             "'warning' also fails on unwaived warnings) — applied "
             "uniformly across every rule family, including --hier",
    )
    lint.add_argument(
        "--sarif", action="store_true",
        help="emit SARIF 2.1.0 instead of text (for CI code-scanning upload)",
    )
    lint.add_argument(
        "--hier", action="store_true",
        help="hierarchical mode: compose per-macro interface contracts "
             "over the stock multi-macro demo block (CTR5xx rules) "
             "instead of flattening; MACRO/WIDTH are ignored",
    )
    lint.add_argument(
        "--contracts", metavar="FILE", default=None,
        help="--hier: persistent contract store (JSONL); built cold, "
             "reused by --changed-only",
    )
    lint.add_argument(
        "--changed-only", action="store_true",
        help="incremental mode: replay cached results for anything whose "
             "content fingerprints are unchanged (--hier: reuse current "
             "contracts; flat: replay from --rule-cache)",
    )
    lint.add_argument(
        "--rule-cache", metavar="FILE", default=None,
        help="per-rule incremental result cache (JSONL); always "
             "refreshed, replayed from under --changed-only",
    )
    lint.add_argument(
        "--verify-contracts", type=int, default=0, metavar="K",
        help="--hier: re-prove K sampled instances against flat analysis "
             "(CTR505 soundness audit)",
    )
    lint.add_argument("--delay", type=float, default=150.0,
                      help="delay budget for --gp/--dataflow, ps")
    lint.add_argument("--load", type=float, default=20.0,
                      help="output load, fF")
    lint.add_argument("--input-slope", type=float, default=30.0)
    lint.add_argument(
        "--label-group", type=int, default=None, metavar="N",
        help=(
            "size-label granularity for macros that honor it (bits per "
            "label group; 1 = per-bit labels — the granularity "
            "--solution's slice collapse thrives on)"
        ),
    )
    lint.add_argument(
        "--max-paths", type=int, default=200_000,
        help="skip --coverage for circuits with more extracted paths",
    )

    return parser


def _sniff_perf_target(path: str) -> str:
    """Classify a perf-report target: ``"trace"`` or ``"ledger"``."""
    import json as _json

    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = _json.loads(line)
            except _json.JSONDecodeError:
                break
            if isinstance(obj, dict):
                if obj.get("type") == "trace":
                    return "trace"
                if obj.get("format") == obs_perf.LEDGER_FORMAT:
                    return "ledger"
            break
    raise ValueError(
        f"{path}: neither a --trace JSONL file nor a "
        f"{obs_perf.LEDGER_FORMAT} run ledger"
    )


def _run_perf(args: argparse.Namespace) -> int:
    import json as _json

    if args.perf_command == "report":
        try:
            kind = _sniff_perf_target(args.target)
            if kind == "trace":
                dump = obs_trace.load_jsonl(args.target)
                emit(obs_perf.render_attribution_report(dump.spans))
            else:
                ledger = obs_perf.RunLedger.load(args.target)
                emit(obs_perf.render_ledger_summary(ledger.records))
        except (OSError, ValueError) as exc:
            emit(f"error: {exc}")
            return 2
        return 0

    if args.perf_command == "diff":
        try:
            base = obs_perf.try_load_perf_source(args.base)
            if base is None:
                # A fresh branch has no committed baseline yet; that is a
                # pass, not a usage error — there is nothing to regress.
                emit(
                    f"perf diff: no baseline samples in {args.base}; "
                    f"nothing to compare (ok)"
                )
                return 0
            diff = obs_perf.diff_paths(
                args.base,
                args.new,
                rel_threshold=args.rel_threshold,
                min_effect_s=args.min_effect_ms / 1e3,
            )
        except (OSError, ValueError) as exc:
            emit(f"error: {exc}")
            return 2
        if args.json:
            emit(_json.dumps(diff.to_json(), indent=2, sort_keys=True))
        else:
            emit(diff.render())
        if diff.ok or args.warn_only:
            return 0
        return 1

    if args.perf_command == "export":
        if not args.chrome and not args.speedscope:
            emit("error: perf export needs --chrome and/or --speedscope")
            return 2
        try:
            dump = obs_trace.load_jsonl(args.trace_file)
        except (OSError, ValueError) as exc:
            emit(f"error: cannot read trace: {exc}")
            return 2
        try:
            if args.chrome:
                payload = obs_perf.to_chrome_trace(
                    dump.spans, dump.events, unix_time=dump.unix_time
                )
                with open(args.chrome, "w") as fh:
                    _json.dump(payload, fh, indent=1)
                    fh.write("\n")
                emit(f"wrote Chrome trace: {args.chrome}")
            if args.speedscope:
                payload = obs_perf.to_speedscope(
                    dump.spans, name=args.trace_file
                )
                with open(args.speedscope, "w") as fh:
                    _json.dump(payload, fh, indent=1)
                    fh.write("\n")
                emit(f"wrote speedscope profile: {args.speedscope}")
        except OSError as exc:
            emit(f"error: cannot write export: {exc}")
            return 2
        return 0

    # watch
    from .obs.stream import watch as stream_watch

    try:
        shown = stream_watch(
            args.stream_file,
            emit,
            follow=args.follow,
            timeout_s=args.timeout,
        )
    except OSError as exc:
        emit(f"error: cannot read stream: {exc}")
        return 2
    except KeyboardInterrupt:
        return 0
    return 0 if shown else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(getattr(args, "verbose", 0) or 0)

    if args.command == "inspect":
        try:
            emit(inspect_file(args.trace_file))
        except (OSError, ValueError) as exc:
            emit(f"error: cannot read trace: {exc}")
            return 1
        return 0

    if args.command == "perf":
        return _run_perf(args)

    trace_path = getattr(args, "trace", None)
    stream_path = getattr(args, "stream", None)
    ledger_path = getattr(args, "ledger", None)
    profile = getattr(args, "profile", False)
    tracer = None
    stream_writer = None
    if trace_path or stream_path or profile:
        tracer = obs_trace.Tracer()
        obs_trace.install(tracer)
        if stream_path:
            from .obs.stream import JsonlStreamWriter

            try:
                stream_writer = JsonlStreamWriter(stream_path).attach(tracer)
            except OSError as exc:
                emit(f"error: cannot open stream file: {exc}")
                obs_trace.install(None)
                return 2
    if ledger_path:
        obs_perf.install_ledger(obs_perf.RunLedger(ledger_path))
    try:
        with obs_trace.span(f"cli:{args.command}"):
            return _run_command(args)
    finally:
        if ledger_path:
            obs_perf.install_ledger(None)
        if stream_writer is not None:
            stream_writer.close()
            log.info("streamed trace: %s", stream_path)
        if tracer is not None:
            obs_trace.install(None)
            if trace_path:
                try:
                    tracer.write_jsonl(trace_path)
                    log.info("wrote trace: %s", trace_path)
                except OSError as exc:
                    emit(f"error: cannot write trace: {exc}")
            if profile:
                emit()
                emit(tracer.profile_summary())
                emit()
                emit(obs_metrics.registry().render())


def _lint_exit(reports, fail_on: str) -> int:
    """Uniform severity-threshold exit code for every lint mode.

    0 = clean at the threshold, 1 = findings: unwaived errors always
    fail; ``fail_on == "warning"`` additionally fails on unwaived
    warnings.
    """
    if not all(r.ok for r in reports):
        return 1
    if fail_on == "warning" and any(r.warnings for r in reports):
        return 1
    return 0


def _run_lint(args: argparse.Namespace, advisor: SmartAdvisor) -> int:
    import json as _json

    from .lint import (
        CIRCUIT_GROUPS,
        all_rules,
        lint_circuit,
        load_waivers,
        render_text,
    )
    from .lint.reporters import report_dict

    if args.list_rules:
        families = (
            ("ERC", "electrical rule checks (netlist + circuit-family)"),
            ("CST", "constraint-coverage / pruning certificates"),
            ("GP", "geometric-program pre-solve checks"),
            ("DFA", "whole-circuit dataflow analyses"),
            ("SVC", "switch-level symbolic verification"),
            ("CTR", "hierarchical interface contracts"),
            ("NSA", "quantitative electrical noise safety"),
            ("OPT", "post-solve solution-certificate audits"),
        )
        by_family: dict = {}
        for rule_obj in all_rules():
            prefix = rule_obj.id.rstrip("0123456789")
            by_family.setdefault(prefix, []).append(rule_obj)
        known = [p for p, _ in families]
        order = list(families) + [
            (p, "") for p in sorted(by_family) if p not in known
        ]
        emit(f"{'id':<8} {'severity':<8} {'group':<10} title")
        for prefix, blurb in order:
            members = by_family.get(prefix)
            if not members:
                continue
            emit(f"-- {prefix}: {blurb} ({len(members)} rules)")
            for rule_obj in members:
                emit(
                    f"{rule_obj.id:<8} {str(rule_obj.severity):<8} "
                    f"{rule_obj.group:<10} {rule_obj.title}"
                )
                doc_line = rule_obj.doc.splitlines()[0] if rule_obj.doc else ""
                if doc_line:
                    emit(f"{'':28s}{doc_line}")
        return 0
    waivers = load_waivers(args.waivers) if args.waivers else ()
    if args.hier:
        return _run_lint_hier(args, advisor, waivers)
    if args.macro is None or args.width is None:
        emit("error: lint needs MACRO and WIDTH (or --list-rules/--hier)")
        return 2
    if args.changed_only and not args.rule_cache:
        emit("error: --changed-only without --hier needs --rule-cache FILE")
        return 2

    spec = _spec_from_args(args)
    if args.topology:
        generators = [advisor.database.generator(args.topology)]
    else:
        generators = advisor.database.applicable(spec)
        if not generators:
            emit(f"error: no topology implements {args.macro}[{args.width}]")
            return 2

    rule_cache = None
    if args.rule_cache:
        from .lint import RuleResultCache

        rule_cache = RuleResultCache(args.rule_cache)
    reports = []
    verdicts = []
    for generator in generators:
        if not generator.applicable(spec):
            emit(
                f"error: {generator.name} cannot implement "
                f"{args.macro}[{args.width}]"
            )
            return 2
        # build(), not generate(): lint must reach circuits that would fail
        # the generator's own validation gate.  The golden spec is attached
        # manually for the same reason.
        circuit = generator.build(spec, advisor.tech)
        circuit.functional_spec = generator.functional_spec(spec)
        groups = list(CIRCUIT_GROUPS)
        options = {}
        if args.symbolic:
            groups.append("symbolic")
            if args.exact_budget is not None:
                options["symbolic_exact_budget"] = args.exact_budget
            if args.samples is not None:
                options["symbolic_samples"] = args.samples
        if args.electrical:
            groups.append("electrical")
        if args.solution:
            from .core.constraints import DesignConstraints
            from .lint.solution.rules import build_solution_options
            from .sizing import RegularityCollapsedSizer, SizingError

            delay_spec = DesignConstraints(
                delay=args.delay, input_slope=args.input_slope
            ).to_delay_spec()
            try:
                collapsed = RegularityCollapsedSizer(
                    circuit, advisor.library
                ).size(delay_spec)
            except SizingError as exc:
                emit(
                    f"error: --solution could not size {circuit.name} at "
                    f"{args.delay:.0f} ps: {exc}"
                )
                return 2
            groups.append("solution")
            options["solution"] = build_solution_options(
                collapsed.result.widths,
                delay_spec,
                classes=(
                    collapsed.classes if not collapsed.fallback else None
                ),
                certificate=(
                    collapsed.certificate.to_payload()
                    if collapsed.certificate is not None else None
                ),
            )
            mode = (
                f"fallback ({collapsed.fallback_reason})"
                if collapsed.fallback
                else f"collapsed {collapsed.full_free}->"
                     f"{collapsed.collapsed_free} labels"
            )
            # Status line, not a finding: keep stdout machine-readable
            # under --json/--sarif by routing it through the logger.
            if args.json or args.sarif:
                log.info(
                    "%s: --solution sized at %.0f ps (%s)",
                    circuit.name, args.delay, mode,
                )
            else:
                emit(
                    f"{circuit.name}: --solution sized at "
                    f"{args.delay:.0f} ps ({mode})"
                )
        # The cache is always refreshed; --changed-only additionally
        # replays hits, so cold runs record and warm runs skip.
        reports.append(
            lint_circuit(
                circuit, groups=groups, waivers=waivers, options=options,
                cache=rule_cache, replay=args.changed_only,
            )
        )
        if args.dataflow:
            from .core.constraints import DesignConstraints
            from .lint import screen_feasibility
            from .lint.waivers import apply_waivers as _apply

            screen = screen_feasibility(
                circuit,
                advisor.library,
                DesignConstraints(
                    delay=args.delay, input_slope=args.input_slope
                ).to_delay_spec(),
            )
            screen.report.diagnostics[:] = _apply(
                screen.report.diagnostics, waivers
            )
            verdicts.append(screen)
            reports.append(screen.report)
        if args.gp or args.coverage:
            from .core.constraints import DesignConstraints
            from .lint.waivers import apply_waivers
            from .sizing.engine import SmartSizer

            def waived(report):
                report.diagnostics[:] = apply_waivers(
                    report.diagnostics, waivers
                )
                return report

            sizer = SmartSizer(circuit, advisor.library)
            delay_spec = DesignConstraints(
                delay=args.delay, input_slope=args.input_slope
            ).to_delay_spec()
            if args.gp:
                reports.append(waived(sizer.pre_solve_lint(delay_spec)))
            if args.coverage:
                from .lint.coverage import verify_pruning
                from .sizing.paths import PathExtractor
                from .sizing.pruning import prune_paths

                extractor = PathExtractor(circuit)
                n_paths = extractor.count()
                if n_paths > args.max_paths:
                    emit(
                        f"{circuit.name}: coverage skipped "
                        f"({n_paths:,} paths > --max-paths {args.max_paths:,})"
                    )
                else:
                    raw = extractor.extract()
                    result = prune_paths(circuit, raw, certify=True)
                    reports.append(
                        waived(
                            verify_pruning(circuit, raw, result.certificate)
                        )
                    )

    if args.sarif:
        from .lint import render_sarif

        emit(render_sarif(reports))
    elif args.json:
        payload = [report_dict(r) for r in reports]
        if verdicts:
            payload.append({
                "interval_sta": [
                    {
                        "circuit": s.circuit_name,
                        "verdict": s.verdict,
                        "sinks": s.sinks,
                        "runtime_s": round(s.runtime_s, 6),
                    }
                    for s in verdicts
                ],
            })
        emit(_json.dumps(payload, indent=2))
    else:
        for report in reports:
            emit(render_text(report))
        for screen in verdicts:
            emit(
                f"{screen.circuit_name}: interval STA at {args.delay:.0f} ps "
                f"-> {screen.verdict}"
            )
        if rule_cache is not None:
            stats = rule_cache.stats
            emit(
                f"rule cache: {stats.replayed}/{stats.invocations} replayed "
                f"({stats.hit_rate:.0%}), {stats.wall_saved_s:.3f}s saved"
            )
    if rule_cache is not None:
        rule_cache.flush()
    return _lint_exit(reports, args.fail_on)


def _run_lint_hier(args: argparse.Namespace, advisor: SmartAdvisor, waivers) -> int:
    import json as _json

    from .blocks import demo_block
    from .cache.contracts import ContractStore
    from .lint import RuleResultCache, hier_from_block, lint_hier, render_text
    from .lint.contracts import default_contract_options
    from .lint.reporters import report_dict

    design = demo_block(advisor.library)
    block = hier_from_block(design)
    store = ContractStore(args.contracts)
    rule_cache = (
        RuleResultCache(args.rule_cache) if args.rule_cache else None
    )
    # Same options digest as `python -m repro.lint.contracts`, so a
    # registry-built store is reused here instead of tripping CTR504.
    result = lint_hier(
        block,
        advisor.library,
        store,
        changed_only=args.changed_only,
        verify=args.verify_contracts,
        waivers=waivers,
        rule_cache=rule_cache,
        options=default_contract_options(),
    )
    store.flush()
    if rule_cache is not None:
        rule_cache.flush()

    if args.sarif:
        from .lint import render_sarif

        emit(render_sarif(result.reports))
    elif args.json:
        payload = [report_dict(r) for r in result.reports]
        payload.append({"hier": result.stats.as_dict()})
        emit(_json.dumps(payload, indent=2))
    else:
        for report in result.reports:
            emit(render_text(report))
        stats = result.stats
        emit(
            f"{block.name}: {len(block.instances)} instance(s), "
            f"{len(block.connections)} connection(s); contracts "
            f"{stats.contracts_reused} reused / {stats.contracts_derived} "
            f"derived; rules {stats.rules_replayed}/{stats.invocations} "
            f"replayed ({stats.hit_rate:.0%})"
        )
    if not result.ok:
        return 1
    return _lint_exit(result.reports, args.fail_on)


def _run_sweep(args: argparse.Namespace, advisor: SmartAdvisor) -> int:
    import json as _json

    from .obs import json_sanitize
    from .parallel import build_grid, run_sweep

    try:
        widths = [int(w) for w in args.widths.split(",") if w.strip()]
        delays = [float(d) for d in args.delays.split(",") if d.strip()]
    except ValueError as exc:
        emit(f"error: bad grid axis: {exc}")
        return 2
    if not widths or not delays:
        emit("error: --widths and --delays must each name at least one value")
        return 2

    grid = build_grid(args.macro, widths, delays)
    result = run_sweep(
        grid,
        workers=args.workers,
        cache=advisor.cache,
        database=advisor.database,
        tech=advisor.tech,
        output_load=args.load,
        input_slope=args.input_slope,
        cost=args.cost,
        tolerance=args.tolerance,
    )
    emit(result.render())
    if args.out:
        payload = _json.dumps(
            json_sanitize(result.to_json()), indent=2, sort_keys=True
        )
        try:
            with open(args.out, "w") as fh:
                fh.write(payload + "\n")
        except OSError as exc:
            emit(f"error: cannot write artifact: {exc}")
            return 1
        log.info("wrote sweep artifact: %s", args.out)
    return 0 if result.complete else 1


def _run_command(args: argparse.Namespace) -> int:
    cache = None
    if getattr(args, "cache", None):
        from .cache import SizingCache
        from .lint.solution import SolutionCertificateStore

        certificates = SolutionCertificateStore(f"{args.cache}.certs")
        cache = SizingCache(args.cache, certificates=certificates)
        if len(cache):
            log.info("loaded %d cached sizings from %s", len(cache), args.cache)
    advisor = SmartAdvisor(
        cache=cache, certify=bool(getattr(args, "certify", False))
    )

    if args.command == "lint":
        return _run_lint(args, advisor)

    if args.command == "list":
        for generator in advisor.database.topologies():
            emit(f"{generator.name:<34} {generator.description}")
        return 0

    if args.command == "sweep":
        return _run_sweep(args, advisor)

    spec = _spec_from_args(args)
    constraints = _constraints_from_args(args)

    if args.command == "advise":
        report = advisor.advise(spec, constraints, workers=args.workers)
        emit(report.render())
        if advisor.cache is not None and advisor.cache.stats.lookups:
            emit(
                "cache: "
                + ", ".join(
                    f"{k}={v}"
                    for k, v in sorted(advisor.cache.stats.as_dict().items())
                )
            )
        return 0 if report.best is not None else 1

    if args.command == "savings":
        from .core.savings import macro_savings

        result = macro_savings(
            advisor.database, args.topology, spec, advisor.library,
            margin=args.margin,
        )
        emit(f"topology        : {args.topology}")
        emit(f"baseline area   : {result.baseline.area:.1f} um "
             f"(margin {args.margin})")
        emit(f"SMART area      : {result.smart.area:.1f} um")
        emit(f"width saving    : {result.width_saving:.1%}")
        if result.baseline.clock_load > 0:
            emit(f"clock saving    : {result.clock_saving:.1%}")
        emit(f"timing met      : {'yes' if result.timing_met else 'NO'}")
        return 0 if result.timing_met else 1

    if args.command == "pareto":
        from .core.explore import pareto_frontier

        weights = tuple(float(w) for w in args.weights.split(","))
        frontier = pareto_frontier(
            advisor, spec, constraints, clock_weights=weights
        )
        if not frontier:
            emit("no feasible points")
            return 1
        emit(f"{'topology':<34} {'w_clk':>6} {'area um':>9} {'clock um':>9}")
        for point in frontier:
            emit(
                f"{point.topology:<34} {point.clock_weight:>6.1f} "
                f"{point.area:>9.1f} {point.clock_load:>9.1f}"
            )
        return 0

    if args.command == "curve":
        from .core.explore import area_delay_curve

        scales = tuple(float(s) for s in args.scales.split(","))
        curve = area_delay_curve(
            advisor, args.topology, spec, constraints, scales=scales
        )
        emit(f"{'scale':>7} {'budget ps':>10} {'area um':>10} {'clock um':>9} ok")
        for point in sorted(curve.points, key=lambda p: -p.spec_delay):
            emit(
                f"{point.delay_scale:>7.2f} {point.spec_delay:>10.1f} "
                f"{point.area:>10.1f} {point.clock_load:>9.1f} "
                f"{'yes' if point.converged else 'NO'}"
            )
        return 0 if any(p.converged for p in curve.points) else 1

    circuit, result = advisor.size_topology(args.topology, spec, constraints)
    if args.command == "size":
        emit(f"{circuit.name}: converged={result.converged} "
             f"iterations={result.iterations} "
             f"runtime={result.runtime_s:.3f}s")
        emit(f"area (total width): {result.area:.1f} um")
        if result.clock_load:
            emit(f"clock load: {result.clock_load:.1f} um")
        for label in sorted(result.resolved):
            emit(f"  {label:<16} {result.resolved[label]:8.2f} um")
        if args.report:
            from .sim import format_timing_report

            emit()
            emit(
                format_timing_report(
                    circuit, advisor.library, result.resolved,
                    spec=constraints.to_delay_spec(),
                )
            )
        if args.save:
            from .core.artifacts import save_sizing

            save_sizing(
                args.save, circuit, result, constraints.to_delay_spec()
            )
            emit(f"\nsaved sizing artifact: {args.save}")
        return 0 if result.converged else 1

    # export
    emit(export_circuit(circuit, result.resolved))
    return 0


if __name__ == "__main__":
    sys.exit(main())
