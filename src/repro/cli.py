"""``smart-advisor`` command line interface.

Subcommands:

* ``advise``  — run the Figure-1 flow for one macro spec and print the
  comparison table;
* ``size``    — size one named topology and print the label widths;
* ``list``    — list the registered topologies;
* ``export``  — generate a macro, size it, and print the SPICE deck;
* ``savings`` — run the Section-6.1 original-vs-SMART protocol on a topology;
* ``curve``   — print a Figure-6 style area-delay sweep for a topology.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.advisor import SmartAdvisor
from .core.constraints import DesignConstraints
from .macros.base import MacroSpec
from .netlist.spice import export_circuit


def _spec_from_args(args: argparse.Namespace) -> MacroSpec:
    return MacroSpec(args.macro, args.width, output_load=args.load)


def _constraints_from_args(args: argparse.Namespace) -> DesignConstraints:
    return DesignConstraints(
        delay=args.delay,
        cost=args.cost,
        input_slope=args.input_slope,
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("macro", help="macro type (mux, decoder, adder, ...)")
    parser.add_argument("width", type=int, help="bit width / input count")
    parser.add_argument("--delay", type=float, default=150.0, help="delay budget, ps")
    parser.add_argument("--load", type=float, default=20.0, help="output load, fF")
    parser.add_argument(
        "--cost", default="area", choices=["area", "power", "clock", "area+clock"]
    )
    parser.add_argument("--input-slope", type=float, default=30.0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="smart-advisor",
        description="SMART macro design advisor (DAC 2000 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    advise = sub.add_parser("advise", help="explore all topologies for a spec")
    _add_common(advise)

    size = sub.add_parser("size", help="size one topology")
    _add_common(size)
    size.add_argument("--topology", required=True)
    size.add_argument(
        "--report", action="store_true",
        help="print the full timing/slope report for the solution",
    )
    size.add_argument(
        "--save", metavar="PATH",
        help="write the sized design as a JSON artifact",
    )

    sub.add_parser("list", help="list registered topologies")

    export = sub.add_parser("export", help="size a topology and print SPICE")
    _add_common(export)
    export.add_argument("--topology", required=True)

    savings = sub.add_parser(
        "savings", help="Section-6.1 protocol: over-design baseline vs SMART"
    )
    _add_common(savings)
    savings.add_argument("--topology", required=True)
    savings.add_argument(
        "--margin", type=float, default=1.5,
        help="over-design margin of the baseline designer",
    )

    curve = sub.add_parser("curve", help="area-delay sweep for a topology")
    _add_common(curve)
    curve.add_argument("--topology", required=True)
    curve.add_argument(
        "--scales", default="0.9,1.0,1.15,1.3",
        help="comma-separated delay multipliers",
    )

    pareto = sub.add_parser(
        "pareto", help="area-vs-clock frontier across topologies"
    )
    _add_common(pareto)
    pareto.add_argument(
        "--weights", default="0,1,4",
        help="comma-separated clock-load weights for the objective sweep",
    )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    advisor = SmartAdvisor()

    if args.command == "list":
        for generator in advisor.database.topologies():
            print(f"{generator.name:<34} {generator.description}")
        return 0

    spec = _spec_from_args(args)
    constraints = _constraints_from_args(args)

    if args.command == "advise":
        report = advisor.advise(spec, constraints)
        print(report.render())
        return 0 if report.best is not None else 1

    if args.command == "savings":
        from .core.savings import macro_savings

        result = macro_savings(
            advisor.database, args.topology, spec, advisor.library,
            margin=args.margin,
        )
        print(f"topology        : {args.topology}")
        print(f"baseline area   : {result.baseline.area:.1f} um "
              f"(margin {args.margin})")
        print(f"SMART area      : {result.smart.area:.1f} um")
        print(f"width saving    : {result.width_saving:.1%}")
        if result.baseline.clock_load > 0:
            print(f"clock saving    : {result.clock_saving:.1%}")
        print(f"timing met      : {'yes' if result.timing_met else 'NO'}")
        return 0 if result.timing_met else 1

    if args.command == "pareto":
        from .core.explore import pareto_frontier

        weights = tuple(float(w) for w in args.weights.split(","))
        frontier = pareto_frontier(
            advisor, spec, constraints, clock_weights=weights
        )
        if not frontier:
            print("no feasible points")
            return 1
        print(f"{'topology':<34} {'w_clk':>6} {'area um':>9} {'clock um':>9}")
        for point in frontier:
            print(
                f"{point.topology:<34} {point.clock_weight:>6.1f} "
                f"{point.area:>9.1f} {point.clock_load:>9.1f}"
            )
        return 0

    if args.command == "curve":
        from .core.explore import area_delay_curve

        scales = tuple(float(s) for s in args.scales.split(","))
        curve = area_delay_curve(
            advisor, args.topology, spec, constraints, scales=scales
        )
        print(f"{'scale':>7} {'budget ps':>10} {'area um':>10} {'clock um':>9} ok")
        for point in sorted(curve.points, key=lambda p: -p.spec_delay):
            print(
                f"{point.delay_scale:>7.2f} {point.spec_delay:>10.1f} "
                f"{point.area:>10.1f} {point.clock_load:>9.1f} "
                f"{'yes' if point.converged else 'NO'}"
            )
        return 0 if any(p.converged for p in curve.points) else 1

    circuit, result = advisor.size_topology(args.topology, spec, constraints)
    if args.command == "size":
        print(f"{circuit.name}: converged={result.converged} "
              f"iterations={result.iterations}")
        print(f"area (total width): {result.area:.1f} um")
        if result.clock_load:
            print(f"clock load: {result.clock_load:.1f} um")
        for label in sorted(result.resolved):
            print(f"  {label:<16} {result.resolved[label]:8.2f} um")
        if args.report:
            from .sim import format_timing_report

            print()
            print(
                format_timing_report(
                    circuit, advisor.library, result.resolved,
                    spec=constraints.to_delay_spec(),
                )
            )
        if args.save:
            from .core.artifacts import save_sizing

            save_sizing(
                args.save, circuit, result, constraints.to_delay_spec()
            )
            print(f"\nsaved sizing artifact: {args.save}")
        return 0 if result.converged else 1

    # export
    print(export_circuit(circuit, result.resolved))
    return 0


if __name__ == "__main__":
    sys.exit(main())
