"""Structural ERC rules (``ERC001``–``ERC009``).

These subsume the historical ad-hoc checks of
:mod:`repro.netlist.validate`: netlist hygiene that any circuit — whatever
its logic family — must satisfy.  Message wording is kept compatible with
the legacy ``ValidationReport`` strings.
"""

from __future__ import annotations

from ..netlist.circuit import CircuitError
from ..netlist.nets import NetKind
from ..netlist.stages import StageKind
from .diagnostics import Severity
from .registry import rule


def _signal_nets(circuit):
    for net in circuit.nets.values():
        if net.kind not in (NetKind.SUPPLY, NetKind.GROUND):
            yield net


@rule("ERC001", "multiply-driven net", "structural", Severity.ERROR,
      facets=("topology",))
def check_multiple_drivers(ctx) -> None:
    """A net with several drivers is only legal when all drivers are
    tristates or all are pass gates (shared-bus structures); any other
    combination shorts two outputs."""
    for net in _signal_nets(ctx.circuit):
        drivers = ctx.circuit.drivers_of(net.name)
        if len(drivers) > 1:
            kinds = {s.kind for s in drivers}
            shareable = (
                kinds <= {StageKind.TRISTATE} or kinds <= {StageKind.PASSGATE}
            )
            if not shareable:
                ctx.emit(
                    "multiple non-shareable drivers "
                    f"({', '.join(s.name for s in drivers)})",
                    net=net.name,
                )


@rule("ERC002", "undriven loaded net", "structural", Severity.ERROR,
      facets=("topology", "sizing"))
def check_undriven(ctx) -> None:
    """A net with fanout but no driver and no primary-input declaration
    floats: downstream logic reads garbage."""
    for net in _signal_nets(ctx.circuit):
        is_input = (
            net.name in ctx.circuit.primary_inputs
            or net.kind is NetKind.CLOCK
        )
        if is_input or ctx.circuit.drivers_of(net.name):
            continue
        if ctx.circuit.fanout_of(net.name):
            ctx.emit("loaded but undriven", net=net.name)


@rule("ERC003", "driven primary input", "structural", Severity.ERROR,
      facets=("topology",))
def check_driven_input(ctx) -> None:
    """Primary inputs and clocks are driven from outside the macro; an
    internal stage driving one fights the external driver."""
    for net in _signal_nets(ctx.circuit):
        is_input = (
            net.name in ctx.circuit.primary_inputs
            or net.kind is NetKind.CLOCK
        )
        drivers = ctx.circuit.drivers_of(net.name)
        if is_input and drivers:
            ctx.emit(
                f"primary input/clock is also driven by {drivers[0].name}",
                net=net.name,
            )


@rule("ERC004", "dangling net", "structural", Severity.WARNING,
      facets=("topology", "sizing"))
def check_dangling(ctx) -> None:
    """A driven net that nothing loads is dead weight — usually a stale
    edit.  Warning, not error: the circuit still functions."""
    for net in _signal_nets(ctx.circuit):
        if net.kind is NetKind.CLOCK:
            continue
        loaded = (
            bool(ctx.circuit.fanout_of(net.name))
            or net.name in ctx.circuit.primary_outputs
        )
        driven = (
            bool(ctx.circuit.drivers_of(net.name))
            or net.name in ctx.circuit.primary_inputs
        )
        if driven and not loaded:
            ctx.emit("driven but unloaded (dangling)", net=net.name)


@rule("ERC005", "domino clock hookup", "structural", Severity.ERROR,
      facets=("topology",))
def check_domino_clock(ctx) -> None:
    """Every domino stage needs a clock pin, and clock pins must land on
    clock-kind nets — precharge timing is meaningless otherwise."""
    for stage in ctx.circuit.stages:
        if stage.kind is not StageKind.DOMINO:
            continue
        clock_pins = stage.clock_pins()
        if not clock_pins:
            ctx.emit("domino without clock pin", stage=stage.name)
        for pin in clock_pins:
            if pin.net.kind is not NetKind.CLOCK:
                ctx.emit(
                    f"clock pin on non-clock net {pin.net.name}",
                    stage=stage.name,
                )


@rule("ERC006", "unknown size label", "structural", Severity.ERROR,
      facets=("topology", "sizing"))
def check_unknown_labels(ctx) -> None:
    """Every size label a stage references must be declared in the size
    table, or the sizer has no variable to optimize."""
    for stage in ctx.circuit.stages:
        for label in stage.size_vars.values():
            if label not in ctx.circuit.size_table:
                ctx.emit(
                    f"size label {label} not in size table", stage=stage.name
                )


@rule("ERC007", "unused size label", "structural", Severity.WARNING,
      facets=("topology", "sizing"))
def check_unused_labels(ctx) -> None:
    """A declared label no stage references adds a free GP variable with no
    effect on the design — usually a renamed-but-not-removed edit."""
    used = {
        label
        for stage in ctx.circuit.stages
        for label in stage.size_vars.values()
    }
    for size_var in ctx.circuit.size_table:
        if size_var.name not in used and size_var.ratio_of is None:
            ctx.emit(f"size label {size_var.name}: declared but unused")


@rule("ERC008", "strong-mutex select discipline", "structural",
      Severity.ERROR, facets=("topology",))
def check_strong_mutex(ctx) -> None:
    """Strongly-mutexed pass-gate muxes (Figure 2a) assume one-hot selects;
    the structural proxy is that each gate has a select pin and the select
    nets are pairwise distinct."""
    by_output = {}
    for stage in ctx.circuit.stages:
        if (
            stage.kind is StageKind.PASSGATE
            and stage.params.get("mutex") == "strong"
        ):
            by_output.setdefault(stage.output.name, []).append(stage)
    for out, gates in by_output.items():
        selects = []
        for gate in gates:
            select_pins = gate.select_pins()
            if not select_pins:
                ctx.emit(
                    "strongly-mutexed pass gate has no select pin",
                    stage=gate.name,
                )
                continue
            selects.append(select_pins[0].net.name)
        if len(set(selects)) != len(selects):
            ctx.emit(
                "strongly-mutexed pass gates share a select net", net=out
            )


@rule("ERC009", "combinational cycle", "structural", Severity.ERROR,
      facets=("topology",))
def check_acyclic(ctx) -> None:
    """The stage graph must be a DAG; a combinational loop makes both path
    extraction and static timing meaningless."""
    try:
        ctx.circuit.topological_stages()
    except CircuitError as exc:
        ctx.emit(str(exc))
