"""Diagnostic primitives: severities, locations, findings, reports."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severity.  Ordered so ``max()`` picks the worst."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error" / "warning" in reports
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where in a design a finding lives.

    Any subset of the fields may be set; ``str()`` renders the most specific
    description available (``stage m0 pin s``, ``net carry7``, ``constraint
    path12:data`` ...).  An all-``None`` location renders as the empty
    string, for circuit-global findings.
    """

    stage: Optional[str] = None
    net: Optional[str] = None
    pin: Optional[str] = None
    constraint: Optional[str] = None

    def __str__(self) -> str:
        parts = []
        if self.stage is not None:
            parts.append(f"stage {self.stage}")
        if self.net is not None:
            parts.append(f"net {self.net}")
        if self.pin is not None:
            parts.append(f"pin {self.pin}")
        if self.constraint is not None:
            parts.append(f"constraint {self.constraint}")
        return " ".join(parts)

    @property
    def empty(self) -> bool:
        return str(self) == ""


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule ID, a severity, a location, and a message."""

    rule_id: str
    severity: Severity
    message: str
    location: Location = Location()
    waived: bool = False

    @property
    def text(self) -> str:
        """Location-prefixed message — the legacy ``ValidationReport``
        string shape (``net x: loaded but undriven``)."""
        loc = str(self.location)
        return f"{loc}: {self.message}" if loc else self.message

    def format(self) -> str:
        """One flake8-style report line."""
        tag = " (waived)" if self.waived else ""
        return f"{self.rule_id} {self.severity}{tag}: {self.text}"

    def with_waived(self) -> "Diagnostic":
        return Diagnostic(
            self.rule_id, self.severity, self.message, self.location, True
        )


class LintError(ValueError):
    """Raised by :meth:`LintReport.raise_if_failed`.

    Subclasses :class:`ValueError` so callers of the legacy
    ``validate_circuit(...).raise_if_failed()`` keep working.
    """

    def __init__(self, message: str, report: "LintReport"):
        super().__init__(message)
        self.report = report


@dataclass
class LintReport:
    """All diagnostics from one lint run over one subject."""

    subject: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Per-rule execution log: ``(rule_id, wall_s, status)`` where status is
    #: ``"executed"`` (checker ran) or ``"replayed"`` (served from the
    #: incremental cache or a contract).  The raw material of the hit-rate
    #: accounting in CI's cold/warm hier-lint passes.
    executed: List[Tuple[str, float, str]] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.executed.extend(other.executed)

    # -- views ---------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics
            if d.severity is Severity.ERROR and not d.waived
        ]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics
            if d.severity is Severity.WARNING and not d.waived
        ]

    @property
    def waived(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.waived]

    @property
    def ok(self) -> bool:
        """No unwaived errors (warnings do not fail a run)."""
        return not self.errors

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def raise_if_failed(self) -> None:
        if not self.ok:
            lines = [d.format() for d in self.errors]
            raise LintError(
                f"{self.subject or 'design'} failed lint "
                f"({len(lines)} error(s)):\n" + "\n".join(lines),
                self,
            )
