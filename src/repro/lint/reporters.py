"""Report renderers: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from .diagnostics import LintReport


def render_text(report: LintReport, show_waived: bool = False) -> str:
    """Flake8-style listing plus a summary line."""
    lines = []
    header = report.subject or "design"
    for diag in report.diagnostics:
        if diag.waived and not show_waived:
            continue
        lines.append(f"{header}: {diag.format()}")
    n_err, n_warn, n_waived = (
        len(report.errors), len(report.warnings), len(report.waived)
    )
    summary = f"{header}: {n_err} error(s), {n_warn} warning(s)"
    if n_waived:
        summary += f", {n_waived} waived"
    lines.append(summary)
    return "\n".join(lines)


def report_dict(report: LintReport) -> dict:
    """The JSON-serializable payload behind :func:`render_json`."""
    return {
        "subject": report.subject,
        "ok": report.ok,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "waived": len(report.waived),
        "diagnostics": [
            {
                "rule": d.rule_id,
                "severity": str(d.severity),
                "location": str(d.location),
                "message": d.message,
                "waived": d.waived,
            }
            for d in report.diagnostics
        ],
    }


def render_json(report: LintReport) -> str:
    """JSON document with every diagnostic (waived included, flagged)."""
    return json.dumps(report_dict(report), indent=2)
