"""Report renderers: human-readable text, JSON, and SARIF 2.1.0.

Every renderer presents findings in a deterministic order — sorted by
``(rule ID, location, message)`` regardless of emission order — so two
runs over the same design produce byte-identical output.  That is what
makes "warm incremental findings are identical to the cold run" checkable
with a plain string compare in CI.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Union

from .._version import __version__
from .diagnostics import Diagnostic, LintReport

#: Version of the JSON payload shape produced by :func:`report_dict`.
#: Bumped on breaking changes to the schema, independent of tool releases.
SCHEMA_VERSION = 1


def ordered_diagnostics(report: LintReport) -> List[Diagnostic]:
    """The report's findings in canonical presentation order."""
    return sorted(
        report.diagnostics,
        key=lambda d: (d.rule_id, str(d.location), d.message),
    )


def render_text(report: LintReport, show_waived: bool = False) -> str:
    """Flake8-style listing plus a summary line."""
    lines = []
    header = report.subject or "design"
    for diag in ordered_diagnostics(report):
        if diag.waived and not show_waived:
            continue
        lines.append(f"{header}: {diag.format()}")
    n_err, n_warn, n_waived = (
        len(report.errors), len(report.warnings), len(report.waived)
    )
    summary = f"{header}: {n_err} error(s), {n_warn} warning(s)"
    if n_waived:
        summary += f", {n_waived} waived"
    lines.append(summary)
    return "\n".join(lines)


def report_dict(report: LintReport) -> dict:
    """The JSON-serializable payload behind :func:`render_json`."""
    return {
        "schema_version": SCHEMA_VERSION,
        "tool_version": __version__,
        "subject": report.subject,
        "ok": report.ok,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "waived": len(report.waived),
        "diagnostics": [
            {
                "rule": d.rule_id,
                "severity": str(d.severity),
                "location": str(d.location),
                "message": d.message,
                "waived": d.waived,
            }
            for d in ordered_diagnostics(report)
        ],
    }


def render_json(report: LintReport) -> str:
    """JSON document with every diagnostic (waived included, flagged)."""
    return json.dumps(report_dict(report), indent=2)


#: SARIF has no "circuit" artifact notion; findings carry logical locations
#: (``stage m0 pin a``) and the subject circuit as the location's module.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def sarif_dict(reports: Union[LintReport, Iterable[LintReport]]) -> dict:
    """SARIF 2.1.0 log for one or more lint reports (one run, one result
    per diagnostic).  Waived findings are carried as suppressed results so
    SARIF viewers show them greyed out rather than dropping them."""
    from . import registry

    if isinstance(reports, LintReport):
        reports = [reports]
    reports = list(reports)

    used_rules = sorted(
        {d.rule_id for r in reports for d in r.diagnostics}
    )
    rule_index = {rule_id: i for i, rule_id in enumerate(used_rules)}
    driver_rules = []
    for rule_id in used_rules:
        try:
            rule_obj = registry.get_rule(rule_id)
            driver_rules.append({
                "id": rule_id,
                "name": rule_obj.title,
                "shortDescription": {"text": rule_obj.title},
                "fullDescription": {"text": rule_obj.doc or rule_obj.title},
                "defaultConfiguration": {
                    "level": "error"
                    if rule_obj.severity.name == "ERROR"
                    else "warning",
                },
            })
        except KeyError:  # ad-hoc rule id — still a valid SARIF rule entry
            driver_rules.append({"id": rule_id})

    results = []
    for report in reports:
        for diag in ordered_diagnostics(report):
            loc = str(diag.location)
            fqn = f"{report.subject}: {loc}" if loc else report.subject
            result = {
                "ruleId": diag.rule_id,
                "ruleIndex": rule_index[diag.rule_id],
                "level": "error" if diag.severity.name == "ERROR" else "warning",
                "message": {"text": diag.message},
                "locations": [{
                    "logicalLocations": [{
                        "fullyQualifiedName": fqn or "design",
                        "kind": "member",
                    }],
                }],
            }
            if diag.waived:
                result["suppressions"] = [{
                    "kind": "external",
                    "justification": "waived via lint waiver file",
                }]
            results.append(result)

    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "version": __version__,
                    "informationUri": "https://example.invalid/repro",
                    "rules": driver_rules,
                },
            },
            "results": results,
        }],
    }


def render_sarif(reports: Union[LintReport, Iterable[LintReport]]) -> str:
    """SARIF 2.1.0 JSON (the CI/code-scanning interchange format)."""
    return json.dumps(sarif_dict(reports), indent=2)
