"""``repro.lint`` — rule-based static analysis for circuits, constraints,
and GP models.

A flake8-style rule engine over the reproduction's three correctness
surfaces:

* **structural/family ERC** (``ERC0xx``/``ERC1xx``) — electrical rule checks
  on :class:`~repro.netlist.circuit.Circuit` objects, from basic netlist
  hygiene up to the Section-4 circuit-family semantics (domino monotonicity,
  D1/D2 ordering, charge sharing, pass-gate chains, mutex discipline);
* **constraint coverage** (``CST1xx``) — independent re-verification of the
  Section-5.2 pruning certificate, proving every extracted path is still
  covered by a surviving constrained path;
* **dataflow** (``DFA3xx``) — whole-circuit abstract interpretation
  (:mod:`repro.lint.dataflow`): clock-phase and monotonicity propagation
  closing the ERC10x rules' local-cone blind spots, plus the interval-STA
  pre-GP feasibility prover (:func:`screen_feasibility`);
* **symbolic verification** (``SVC4xx``) — switch-level symbolic analysis
  (:mod:`repro.lint.symbolic`): functional equivalence against golden
  macro specs, drive-fight/sneak-path proofs, floating-node detection and
  bit-slice isomorphism certification.  Opt-in (``repro lint --symbolic``
  or ``groups=("symbolic",)``) because it enumerates the input space;
* **GP pre-solve** (``GP2xx``) — well-formedness and feasibility screening
  of a :class:`~repro.sizing.gp.GeometricProgram` before the solver runs;
* **interface contracts** (``CTR5xx``) — hierarchical block analysis
  (:mod:`repro.lint.hier`): per-macro contracts
  (:mod:`repro.lint.contracts`) composed at block level instead of
  flattening, with content-addressed incremental re-verification
  (:mod:`repro.lint.incremental`) and a sampled contract-vs-flat
  soundness audit;
* **electrical safety** (``NSA6xx``) — quantitative post-sizing noise
  analysis (:mod:`repro.lint.electrical`): charge-sharing certificates
  over the SVC channel graph, keeper ratioed-fight/restore proofs,
  pass-chain Elmore budgets, and coupling-interval screens, each
  evaluated at a point sizing or soundly over the whole sizing box.
  Opt-in (``repro lint --electrical`` or ``groups=("electrical",)``)
  because it consumes the sizing output.

Every diagnostic carries a stable rule ID, a severity, and a per-net /
per-stage location; waiver files suppress known-acceptable findings.  The
package is wired in three places: :func:`repro.netlist.validate.validate_circuit`
(the structural group), the advisor's pre-sizing gate, and the engine's GP
gate — plus the ``repro lint`` CLI subcommand.

Import note: this package intentionally imports only ``repro.netlist.*``
submodules and ``repro.posy``.  :mod:`repro.lint.coverage` additionally
imports :mod:`repro.sizing.pruning` and therefore must be imported lazily
by anything reachable from ``repro.sizing.__init__``.
"""

from .contracts import build_registry_contracts, derive_contract, macro_identity
from .dataflow import ForwardAnalysis, SolveResult, solve_forward
from .dataflow.interval import IntervalScreenResult, screen_feasibility
from .diagnostics import Diagnostic, LintError, LintReport, Location, Severity
from .electrical import (
    ChargeShareCert,
    CouplingCert,
    ElectricalScreen,
    KeeperCert,
    PassChainCert,
    charge_share_certificates,
    coupling_certificates,
    keeper_certificates,
    noise_mutants,
    pass_chain_certificates,
    port_noise_margin,
    screen_electrical,
    worst_noise_margin,
)
from .hier import (
    HierBlock,
    HierConnection,
    HierInstance,
    HierLintResult,
    flatten,
    hier_from_block,
    lint_hier,
)
from .incremental import RuleCacheStats, RuleResultCache
from .registry import Rule, all_rules, get_rule, rules_in_groups
from .reporters import render_json, render_sarif, render_text, sarif_dict
from .runner import ALL_CIRCUIT_GROUPS, CIRCUIT_GROUPS, lint_circuit
from .rules_gp import lint_gp
from .waivers import Waiver, load_waivers, parse_waivers

__all__ = [
    "ALL_CIRCUIT_GROUPS",
    "CIRCUIT_GROUPS",
    "ChargeShareCert",
    "CouplingCert",
    "Diagnostic",
    "ElectricalScreen",
    "HierBlock",
    "HierConnection",
    "HierInstance",
    "HierLintResult",
    "KeeperCert",
    "PassChainCert",
    "RuleCacheStats",
    "RuleResultCache",
    "ForwardAnalysis",
    "IntervalScreenResult",
    "LintError",
    "LintReport",
    "Location",
    "Rule",
    "Severity",
    "SolveResult",
    "Waiver",
    "all_rules",
    "build_registry_contracts",
    "charge_share_certificates",
    "coupling_certificates",
    "derive_contract",
    "flatten",
    "get_rule",
    "hier_from_block",
    "keeper_certificates",
    "lint_circuit",
    "lint_gp",
    "lint_hier",
    "load_waivers",
    "macro_identity",
    "noise_mutants",
    "parse_waivers",
    "pass_chain_certificates",
    "port_noise_margin",
    "render_json",
    "render_sarif",
    "render_text",
    "rules_in_groups",
    "sarif_dict",
    "screen_electrical",
    "screen_feasibility",
    "solve_forward",
    "worst_noise_margin",
]
