"""Incremental lint: per-(rule, facets) result cache with replay.

The runner (:func:`repro.lint.runner.lint_circuit`) consults a
:class:`RuleResultCache` before executing each rule.  The cache key is the
content address of everything that rule is allowed to read:

* the rule's identity (ID) and the cache schema version;
* the fingerprints of the rule's **declared input facets**
  (:data:`repro.netlist.fingerprint.FACET_NAMES` — topology, sizing,
  phases, funcspec; see ``Rule.facets``);
* a digest of the per-run options mapping (enumeration budgets etc.).

Soundness rests on the facet declarations being *supersets* of what each
rule actually reads: a rule whose declared facets' fingerprints are all
unchanged cannot observe any difference in the circuit, so replaying its
recorded diagnostics is exact — byte-identical findings, no re-execution.
A rule with no (or unknown) facet declaration defaults to all four facets,
which degrades to whole-circuit invalidation, never to a stale replay.

Diagnostics round-trip losslessly through :func:`serialize_diagnostic` /
:func:`deserialize_diagnostic`; severity is stored by name so replayed
findings grade identically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..cache.store import JsonlArtifactStore
from ..netlist.fingerprint import FACET_NAMES
from .diagnostics import Diagnostic, Location, Severity
from .registry import Rule

RULE_CACHE_FORMAT = "smart-lint-rulecache/1"


def serialize_diagnostic(diag: Diagnostic) -> dict:
    """A :class:`Diagnostic` as a JSON-stable dict (waived flag excluded:
    waivers are presentation-time policy, applied after replay)."""
    return {
        "rule": diag.rule_id,
        "severity": diag.severity.name,
        "message": diag.message,
        "stage": diag.location.stage,
        "net": diag.location.net,
        "pin": diag.location.pin,
        "constraint": diag.location.constraint,
    }


def deserialize_diagnostic(payload: Mapping[str, object]) -> Diagnostic:
    return Diagnostic(
        rule_id=str(payload["rule"]),
        severity=Severity[str(payload["severity"])],
        message=str(payload["message"]),
        location=Location(
            stage=payload.get("stage"),  # type: ignore[arg-type]
            net=payload.get("net"),  # type: ignore[arg-type]
            pin=payload.get("pin"),  # type: ignore[arg-type]
            constraint=payload.get("constraint"),  # type: ignore[arg-type]
        ),
    )


def options_digest(options: Optional[Mapping[str, object]]) -> str:
    """Stable digest of the per-run options mapping.

    Included in every cache key: options are handed to all rules, so a
    changed budget must conservatively invalidate prior results.
    """
    if not options:
        return "none"
    blob = json.dumps(
        {str(k): options[k] for k in sorted(options, key=str)},
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class RuleCacheStats:
    """Rule-execution accounting for one incremental-lint session."""

    executed: int = 0
    replayed: int = 0
    stores: int = 0
    #: Wall time actually spent running rules vs. recorded wall time of the
    #: executions that replay avoided.
    wall_executed_s: float = 0.0
    wall_saved_s: float = 0.0

    @property
    def invocations(self) -> int:
        return self.executed + self.replayed

    @property
    def hit_rate(self) -> float:
        """Replayed fraction of all rule invocations (0.0 when none)."""
        return self.replayed / self.invocations if self.invocations else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "executed": self.executed,
            "replayed": self.replayed,
            "stores": self.stores,
            "wall_executed_s": round(self.wall_executed_s, 6),
            "wall_saved_s": round(self.wall_saved_s, 6),
            "hit_rate": round(self.hit_rate, 6),
        }

    def absorb(self, other: Mapping[str, float]) -> None:
        self.executed += int(other.get("executed", 0))
        self.replayed += int(other.get("replayed", 0))
        self.stores += int(other.get("stores", 0))
        self.wall_executed_s += float(other.get("wall_executed_s", 0.0))
        self.wall_saved_s += float(other.get("wall_saved_s", 0.0))


class RuleResultCache:
    """Per-(rule, facet fingerprints, options) diagnostic cache.

    ``path=None`` keeps it in-memory — how the advisor gate deduplicates
    lint work across candidate re-checks within one process.  With a path,
    the cache persists across invocations (CI warm passes, ``repro lint
    --changed-only``) through the same tolerant JSONL substrate as every
    other store in :mod:`repro.cache`.
    """

    def __init__(self, path: Optional[str] = None, autosync: bool = True):
        self._store = JsonlArtifactStore(
            path, fmt=RULE_CACHE_FORMAT, autosync=autosync
        )
        self.stats = RuleCacheStats()

    # -- keys --------------------------------------------------------------

    @staticmethod
    def key(
        rule_obj: Rule,
        facet_fps: Mapping[str, str],
        options: Optional[Mapping[str, object]] = None,
    ) -> str:
        """Content address of one rule execution over one circuit state."""
        facets = getattr(rule_obj, "facets", None) or FACET_NAMES
        unknown = set(facets) - set(FACET_NAMES)
        if unknown:
            raise ValueError(
                f"rule {rule_obj.id} declares unknown facets {sorted(unknown)}"
            )
        payload = [
            RULE_CACHE_FORMAT,
            rule_obj.id,
            [[name, facet_fps[name]] for name in sorted(facets)],
            options_digest(options),
        ]
        blob = json.dumps(payload, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- cache protocol ----------------------------------------------------

    def lookup(self, key: str) -> Optional[List[Diagnostic]]:
        """Replay: the diagnostics recorded under ``key``, or None on miss.

        A hit updates the replayed/wall-saved stats; the runner adds the
        returned findings to its report verbatim.
        """
        entry = self._store.get(key)
        if entry is None:
            return None
        try:
            diags = [deserialize_diagnostic(d) for d in entry["diags"]]
        except (KeyError, TypeError, ValueError):
            return None  # tolerate a malformed entry as a miss
        self.stats.replayed += 1
        self.stats.wall_saved_s += float(entry.get("wall_s", 0.0))
        return diags

    def record(
        self,
        key: str,
        rule_obj: Rule,
        diags: Iterable[Diagnostic],
        wall_s: float,
    ) -> None:
        """Store one rule execution's findings under its content address."""
        self._store.put(
            key,
            {
                "rule": rule_obj.id,
                "diags": [serialize_diagnostic(d) for d in diags],
                "wall_s": round(wall_s, 6),
            },
        )
        self.stats.stores += 1

    def note_executed(self, wall_s: float) -> None:
        self.stats.executed += 1
        self.stats.wall_executed_s += wall_s

    def flush(self) -> None:
        self._store.flush()

    # -- introspection -----------------------------------------------------

    @property
    def path(self) -> Optional[str]:
        return self._store.path

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def __repr__(self) -> str:
        backing = self.path or "<memory>"
        return f"RuleResultCache({backing!r}, entries={len(self)})"


def replay_findings(
    payloads: Sequence[Mapping[str, object]],
) -> List[Diagnostic]:
    """Deserialize a stored findings list (contract replay helper)."""
    return [deserialize_diagnostic(p) for p in payloads]
