"""CI corpus driver: OPT7xx solution certificates over clean + mutant corpora.

``python -m repro.lint.solution.corpus`` runs the solution rule group over
(a) a clean corpus of honestly collapsed-and-certified sizing runs (real
:class:`~repro.sizing.collapse.RegularityCollapsedSizer` output, with the
issued certificate and an honest cache entry riding in the payload so all
five OPT rules exercise their accept paths) and (b) the seeded
solution-mutant corpus from :mod:`repro.lint.solution.mutate`.  The gate
is asymmetric, mirroring the electrical driver:

* the clean corpus must produce **zero OPT errors** (quantitative OPT702
  optimality-gap warnings are reported but tolerated);
* every mutant must be flagged by **exactly its intended OPT rule** — the
  expected rule fires, and no other OPT rule cross-fires.

``--rule-cache FILE`` threads the incremental engine through the sweep —
the solved point rides in the options mapping, which is part of the rule
cache key, so a warm rerun over the same tree and the same points replays
every finding byte-identically.  ``--certs FILE`` persists the clean
corpus's issued certificates as a ``smart-solution-certificate/1`` JSONL
artifact for CI upload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Iterator, List, Optional, Sequence, Tuple

from ..diagnostics import LintReport, Severity
from ..incremental import serialize_diagnostic
from ..runner import lint_circuit
from ..waivers import load_waivers
from .certificate import SolutionCertificate
from .mutate import SolutionMutant, solution_mutants, solved_base
from .rules import build_solution_options

#: OPT rule IDs, for cross-fire checks.
_OPT_PREFIX = "OPT7"


def clean_cases(
    tech=None,
) -> Iterator[Tuple[str, object, dict, dict]]:
    """Honest collapsed-sizing runs: ``(label, circuit, options, cert)``.

    Each case is a real collapse-solve-replicate-certify pass whose full
    payload — widths, classes, issued certificate, and an honest cache
    entry bound to that certificate — exercises the accept path of every
    OPT rule at once.
    """
    from ...cache.fingerprint import make_entry
    from ...macros.base import MacroSpec
    from ...macros.incrementor import RippleIncrementor
    from ...models.gates import ModelLibrary
    from ...models.technology import Technology
    from ...sizing.collapse import RegularityCollapsedSizer
    from ...sizing.constraints import DelaySpec
    from ...sizing.engine import SmartSizer, nominal_delay

    tech = tech or Technology()

    # Case 1: the mutants' own base (memoized — one solve serves both).
    base = solved_base(tech)
    full = SmartSizer(base.circuit, base.library)
    entry = make_entry(
        full.cache_key(base.spec),
        circuit_name=base.circuit.name,
        objective="area",
        spec_data=base.spec.data,
        tolerance=2.0,
        env=base.widths,
        iterations=1,
        area=0.0,
        runtime_s=0.0,
        created_unix=0.0,  # pinned: the options digest must be stable
    )
    options = build_solution_options(
        base.widths, base.spec,
        classes=base.classes,
        certificate=base.certificate,
        cache_entries=[entry],
        certificates={base.cache_key: base.certificate},
    )
    yield base.circuit.name, base.circuit, {"solution": options}, \
        base.certificate

    # Case 2: a per-bit ripple incrementor, collapsed and certified here.
    library = ModelLibrary(tech)
    circuit = RippleIncrementor().build(
        MacroSpec("incrementor", 8, params=(("label_group", 1),)), tech
    )
    spec = DelaySpec(data=nominal_delay(circuit, library))
    collapsed = RegularityCollapsedSizer(circuit, library).size(spec)
    cert = (
        collapsed.certificate.to_payload()
        if isinstance(collapsed.certificate, SolutionCertificate)
        else None
    )
    options = build_solution_options(
        collapsed.result.widths, spec,
        classes=collapsed.classes if not collapsed.fallback else None,
        certificate=cert,
    )
    yield circuit.name, circuit, {"solution": options}, cert


def run_clean(
    tech=None, waivers=(), emit=print, rule_cache=None
) -> Tuple[List[LintReport], List[dict]]:
    """Solution lint over the clean corpus; returns (reports, certs)."""
    reports: List[LintReport] = []
    certs: List[dict] = []
    for label, circuit, options, cert in clean_cases(tech):
        start = time.perf_counter()
        report = lint_circuit(
            circuit, groups=("solution",), waivers=waivers,
            options=options, cache=rule_cache,
        )
        elapsed = time.perf_counter() - start
        reports.append(report)
        if cert is not None:
            certs.append(cert)
        status = "ok" if not report.errors else "FAIL"
        replayed = sum(1 for _, _, s in report.executed if s == "replayed")
        cached = f" cached={replayed}" if replayed else ""
        emit(
            f"{status:4s} clean  {label:42s} errors={len(report.errors)} "
            f"warnings={len(report.warnings)} ({elapsed:.2f}s){cached}"
        )
    return reports, certs


def run_mutants(
    tech=None, waivers=(), emit=print, rule_cache=None
) -> List[dict]:
    """Solution lint over the seeded solution mutants.

    Returns one verdict dict per mutant:
    ``{"label", "expected", "fired", "flagged", "cross_fired", "report"}``.
    """
    verdicts: List[dict] = []
    for mutant in solution_mutants(tech):
        assert isinstance(mutant, SolutionMutant)
        report = lint_circuit(
            mutant.circuit, groups=("solution",), waivers=waivers,
            options=mutant.options, cache=rule_cache,
        )
        fired = sorted({
            d.rule_id for d in report.diagnostics
            if d.rule_id.startswith(_OPT_PREFIX) and not d.waived
        })
        flagged = mutant.expected_rule in fired
        cross = [r for r in fired if r != mutant.expected_rule]
        status = "ok" if flagged and not cross else "FAIL"
        emit(
            f"{status:4s} mutant {mutant.label:42s} "
            f"expected={mutant.expected_rule} fired={','.join(fired) or '-'}"
        )
        for diag in report.diagnostics:
            if not diag.waived:
                emit(f"     {diag.format()}")
        verdicts.append({
            "label": mutant.label,
            "expected": mutant.expected_rule,
            "fired": fired,
            "flagged": flagged,
            "cross_fired": cross,
            "report": report,
        })
    return verdicts


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.solution.corpus",
        description=(
            "run the OPT7xx solution-certificate rules over honest "
            "collapsed-sizing runs and the seeded solution-mutant corpus"
        ),
        epilog=(
            "exit codes: 0 = clean corpus error-free and every mutant "
            "flagged by exactly its intended rule, 1 = gate failed"
        ),
    )
    parser.add_argument(
        "--sarif", metavar="FILE",
        help="write combined SARIF 2.1.0 log to FILE",
    )
    parser.add_argument(
        "--waivers", metavar="FILE", help="waiver/suppression file"
    )
    parser.add_argument(
        "--rule-cache", metavar="FILE", default=None,
        help=(
            "incremental rule-result cache (JSONL); unchanged circuits "
            "and solved points replay recorded findings byte-identically"
        ),
    )
    parser.add_argument(
        "--certs", metavar="FILE", default=None,
        help=(
            "persist the clean corpus's issued solution certificates as "
            "a smart-solution-certificate/1 JSONL artifact"
        ),
    )
    parser.add_argument(
        "--json-out", metavar="FILE", default=None,
        help=(
            "dump serialized findings + cache stats as JSON (CI uses this "
            "to assert cold/warm replay fidelity)"
        ),
    )
    args = parser.parse_args(argv)

    rule_cache = None
    if args.rule_cache:
        from ..incremental import RuleResultCache

        rule_cache = RuleResultCache(args.rule_cache)
    waivers = load_waivers(args.waivers) if args.waivers else ()

    clean_reports, clean_certs = run_clean(
        waivers=waivers, rule_cache=rule_cache
    )
    mutant_verdicts = run_mutants(waivers=waivers, rule_cache=rule_cache)

    if rule_cache is not None:
        rule_cache.flush()
        stats = rule_cache.stats
        print(
            f"rule cache: {stats.replayed}/{stats.invocations} replayed "
            f"({stats.hit_rate:.0%}), {stats.wall_saved_s:.2f}s saved"
        )

    if args.certs:
        from .certificate import SolutionCertificateStore

        store = SolutionCertificateStore(args.certs)
        for cert in clean_certs:
            store.put_payload(cert)
        store.flush()
        print(f"wrote {len(clean_certs)} certificate(s): {args.certs}")

    all_reports = clean_reports + [v.pop("report") for v in mutant_verdicts]
    if args.sarif:
        from ..reporters import render_sarif

        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(render_sarif(all_reports))
        print(f"wrote SARIF log: {args.sarif}")

    if args.json_out:
        payload = {
            "findings": [
                serialize_diagnostic(d)
                for r in all_reports for d in r.diagnostics
            ],
            "clean_errors": sum(len(r.errors) for r in clean_reports),
            "clean_warnings": sum(len(r.warnings) for r in clean_reports),
            "mutants": mutant_verdicts,
            "rule_cache": (
                rule_cache.stats.as_dict() if rule_cache is not None else None
            ),
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote JSON summary: {args.json_out}")

    clean_errors = [
        d for r in clean_reports for d in r.diagnostics
        if d.severity is Severity.ERROR and not d.waived
    ]
    bad_mutants = [
        v for v in mutant_verdicts if not v["flagged"] or v["cross_fired"]
    ]
    n_warn = sum(len(r.warnings) for r in clean_reports)
    print(
        f"corpus: {len(clean_reports)} clean runs "
        f"({len(clean_errors)} error(s), {n_warn} warning(s)), "
        f"{len(mutant_verdicts)} mutants "
        f"({len(mutant_verdicts) - len(bad_mutants)} correctly flagged)"
    )
    return 0 if not clean_errors and not bad_mutants else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
