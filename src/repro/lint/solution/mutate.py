"""Seeded solution mutants for the OPT7xx corpus.

Each builder perturbs one facet of an otherwise-honest solved point —
one replicated width, one dropped coupling claim, one forged cached
certificate — so the corpus driver (and the tests) can assert that every
mutant is flagged by exactly its intended OPT rule while no other rule
cross-fires.  The honest base is a real collapsed-sizing run
(:class:`repro.sizing.collapse.RegularityCollapsedSizer` on a per-bit
static ripple adder): mutants are perturbations of genuinely solved and
certified artifacts, not synthetic fixtures.

Rule-isolation conventions (the division of labor OPT701/OPT702/OPT703
are specified to keep):

* width perturbations targeting the *replication* claim (OPT703) are tiny
  (``x1.001``) so the perturbed point stays primal-feasible and OPT701
  stays quiet;
* payloads for mutants not targeting OPT702 pin ``kkt_gap_rel_max`` far
  out of reach — the optimality-gap annotation is mutant-author
  controlled precisely so each mutant exercises one boundary;
* certificate/cache mutants (OPT704/OPT705) carry *only* the artifact
  under audit, no ``widths`` key, so the point-audit rules are inert.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional

from ...macros.adder import StaticRippleAdder
from ...macros.base import MacroSpec
from ...models.gates import ModelLibrary
from ...models.technology import Technology
from ...netlist.circuit import Circuit
from .rules import build_solution_options

#: kkt_gap_rel_max used by mutants that must keep OPT702 quiet.
_KKT_QUIET = 1e9


class SolutionMutant(NamedTuple):
    label: str
    circuit: Circuit
    options: dict            # full lint options mapping ({"solution": ...})
    expected_rule: str


class _SolvedBase(NamedTuple):
    """One honest collapsed-sizing run shared by every mutant builder."""

    circuit: Circuit
    library: ModelLibrary
    spec: object             # DelaySpec
    widths: Dict[str, float]          # certified replicated point
    classes: List[List[str]]          # WL classes the collapse used
    certificate: dict                 # issued certificate payload
    cache_key: str                    # full problem's content address


_BASE_MEMO: Dict[object, _SolvedBase] = {}


def solved_base(tech: Optional[Technology] = None) -> _SolvedBase:
    """Solve (collapsed) and certify the base circuit once per technology.

    The base is an 8-bit per-bit-labeled static ripple adder at its
    nominal delay: small enough to solve in about a second, regular
    enough that the WL collapse finds multi-member classes to perturb.
    """
    memo_key = "default" if tech is None else id(tech)
    tech = tech or Technology()
    memo = _BASE_MEMO.get(memo_key)
    if memo is not None:
        return memo
    from ...sizing.collapse import RegularityCollapsedSizer
    from ...sizing.constraints import DelaySpec
    from ...sizing.engine import SmartSizer, nominal_delay

    circuit = StaticRippleAdder().build(
        MacroSpec("adder", 8, params=(("label_group", 1),)), tech
    )
    library = ModelLibrary(tech)
    # Tight data target + relaxed slope limits: the carry chain ends up
    # timing-bound with slope slack, so the replication mutant has class
    # members whose tiny nudge stays primal-feasible (an area-minimal
    # point under the default limits rides every slope constraint, and
    # then *any* perturbation is a genuine OPT701 violation).
    spec = DelaySpec(
        data=0.9 * nominal_delay(circuit, library),
        max_output_slope=300.0,
        max_internal_slope=700.0,
    )
    collapsed = RegularityCollapsedSizer(circuit, library).size(spec)
    if collapsed.fallback or collapsed.certificate is None:
        raise RuntimeError(
            "solution-mutant base failed to collapse: "
            f"{collapsed.fallback_reason or 'no certificate issued'}"
        )
    base = _SolvedBase(
        circuit=circuit,
        library=library,
        spec=spec,
        widths=dict(collapsed.result.widths),
        classes=[list(c) for c in collapsed.classes],
        certificate=collapsed.certificate.to_payload(),
        cache_key=SmartSizer(circuit, library).cache_key(spec).key,
    )
    _BASE_MEMO[memo_key] = base
    return base


def _largest_class(base: _SolvedBase) -> List[str]:
    multi = [c for c in base.classes if len(c) > 1]
    if not multi:
        raise RuntimeError("base collapse produced no multi-member class")
    return max(multi, key=len)


def perturbed_replica(tech: Optional[Technology] = None) -> SolutionMutant:
    """One non-representative class member nudged off its representative
    (x1.001) -> OPT703 flags the broken replication claim.

    The victim is chosen so the nudged point stays primal-feasible
    (timing has the engine's 2 ps tolerance; the scan skips members whose
    slope constraints are active) — the replication equality check must
    catch the drift no matter which member carries it, and picking a
    slack one keeps OPT701 quiet by construction.  The payload pins the
    OPT702 threshold out of reach."""
    from .audit import SolutionAudit

    base = solved_base(tech)
    audit = SolutionAudit(base.circuit, base.library, base.spec)
    victim = None
    widths = dict(base.widths)
    for members in sorted(
        [c for c in base.classes if len(c) > 1], key=len, reverse=True
    ):
        candidate = dict(base.widths)
        candidate[members[1]] *= 1.001
        if audit.feasibility(candidate)["ok"]:
            victim, widths = members[1], candidate
            break
    if victim is None:
        raise RuntimeError(
            "no class member tolerates a feasible x1.001 nudge"
        )
    options = build_solution_options(
        widths, base.spec, classes=base.classes,
    )
    options["kkt_gap_rel_max"] = _KKT_QUIET
    return SolutionMutant(
        "perturbed_replica", base.circuit, {"solution": options}, "OPT703"
    )


def dropped_coupling(tech: Optional[Technology] = None) -> SolutionMutant:
    """A representative slice sized as if one cross-slice coupling
    constraint had been dropped from the collapsed GP (its width halved),
    presented via ``representative_env`` -> OPT703 re-measures the full
    circuit at the replicated point and names the violated boundary as
    witness.  The adopted ``widths`` stay the honest certified point, so
    OPT701 (which audits the adopted point, not the claim) stays quiet.
    """
    base = solved_base(tech)
    rep = _largest_class(base)[0]
    options = build_solution_options(
        base.widths, base.spec, classes=base.classes,
        representative_env={rep: base.widths[rep] * 0.5},
    )
    options["kkt_gap_rel_max"] = _KKT_QUIET
    return SolutionMutant(
        "dropped_coupling", base.circuit, {"solution": options}, "OPT703"
    )


def infeasible_point(tech: Optional[Technology] = None) -> SolutionMutant:
    """The widest label of the honest point squeezed down to its lower
    bound -> OPT701 proves the squeezed point no longer implements its
    spec (timing or slope, interval-confirmed where the margin allows).
    No collapse claim rides along, so OPT703 has nothing to audit."""
    base = solved_base(tech)
    widths = dict(base.widths)
    victim = max(widths, key=widths.get)
    widths[victim] = base.circuit.size_table[victim].lower
    options = build_solution_options(widths, base.spec)
    options["kkt_gap_rel_max"] = _KKT_QUIET
    return SolutionMutant(
        "infeasible_point", base.circuit, {"solution": options}, "OPT701"
    )


def oversized_drift(tech: Optional[Technology] = None) -> SolutionMutant:
    """Every width uniformly inflated x1.5 (clamped to its box) — still
    feasible (uniform upsizing only speeds the fixed external loads) but
    far from stationary -> OPT702's certified optimality-gap bound blows
    past the default threshold while OPT701 stays quiet."""
    base = solved_base(tech)
    table = base.circuit.size_table
    widths = {
        name: min(value * 1.5, table[name].upper)
        for name, value in base.widths.items()
    }
    options = build_solution_options(widths, base.spec)
    return SolutionMutant(
        "oversized_drift", base.circuit, {"solution": options}, "OPT702"
    )


def stale_certificate(tech: Optional[Technology] = None) -> SolutionMutant:
    """An honestly-issued certificate presented against a circuit whose
    output loading has since changed -> OPT704 names the drifted facets.
    The payload carries only the certificate (no ``widths``, no cache),
    so every other OPT rule is inert."""
    base = solved_base(tech)
    drifted = StaticRippleAdder().build(
        MacroSpec(
            "adder", 8, output_load=35.0, params=(("label_group", 1),)
        ),
        tech or Technology(),
    )
    options = {"certificate": dict(base.certificate)}
    return SolutionMutant(
        "stale_certificate", drifted, {"solution": options}, "OPT704"
    )


def forged_certificate(tech: Optional[Technology] = None) -> SolutionMutant:
    """A cache entry whose env was tampered with *after* certification —
    the certificate's widths digest no longer matches the entry it would
    admit -> OPT705 rejects the pair as inadmissible.  Payload carries
    only the cache section, so every other OPT rule is inert."""
    base = solved_base(tech)
    env = dict(base.widths)
    env[sorted(env)[0]] *= 1.25
    entry = {
        "key": base.cache_key,
        "circuit_fp": "", "context_fp": "", "spec_fp": "",
        "circuit_name": base.circuit.name,
        "env": {k: round(v, 9) for k, v in env.items()},
        "tolerance": 2.0,
    }
    options = {
        "cache": {
            "entries": [entry],
            "certificates": {base.cache_key: dict(base.certificate)},
        }
    }
    return SolutionMutant(
        "forged_certificate", base.circuit, {"solution": options}, "OPT705"
    )


def solution_mutants(
    tech: Optional[Technology] = None,
) -> Iterator[SolutionMutant]:
    """The seeded solution-mutant corpus, labeled with the intended rule."""
    yield perturbed_replica(tech)
    yield dropped_coupling(tech)
    yield infeasible_point(tech)
    yield oversized_drift(tech)
    yield stale_certificate(tech)
    yield forged_certificate(tech)
