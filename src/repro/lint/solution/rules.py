"""OPT7xx — post-solve solution-certificate rules (DESIGN §13).

The rules run in the opt-in ``solution`` group and are inert unless the
per-run options carry a ``"solution"`` payload describing the solved point
under audit (see :func:`build_solution_options`).  Because the payload
rides in the options mapping — which is part of the incremental rule-cache
key — a warm rerun over the same circuit and the same solved point replays
every finding byte-identically, while any change to the point, the spec,
or a declared facet re-executes exactly the affected rules.

Division of labor (the mutants in :mod:`repro.lint.solution.mutate` pin
each boundary down):

* OPT701 audits the *adopted point* — the widths the payload claims.
* OPT702 grades the point's first-order optimality (quantitative bound).
* OPT703 audits the *replication claim* — classes plus representative
  widths — independently of whether the adopted point itself is feasible.
* OPT704 audits a *certificate's freshness* against the live circuit.
* OPT705 audits *cache entries'* certificates (the admission predicate
  the engine's fast path uses, run as lint).
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..diagnostics import Severity
from ..registry import rule
from .certificate import check_certificate

#: Severity threshold for the OPT702 relative optimality-gap bound; the
#: payload key ``kkt_gap_rel_max`` overrides it per run.
DEFAULT_KKT_GAP_REL_MAX = 1.0


def build_solution_options(
    widths: Mapping[str, float],
    spec,
    tolerance: float = 2.0,
    objective: str = "area",
    otb_borrow: float = 0.0,
    classes=None,
    representative_env: Optional[Mapping[str, float]] = None,
    certificate: Optional[Mapping[str, object]] = None,
    cache_entries=None,
    certificates: Optional[Mapping[str, Mapping[str, object]]] = None,
    technology: Optional[Mapping[str, float]] = None,
) -> dict:
    """The JSON-plain ``options["solution"]`` payload the OPT rules read.

    Everything is rounded/plain so that the options digest — and therefore
    the incremental rule-cache key — is stable across processes.
    """
    spec_fields = {}
    for name in (
        "data", "control", "evaluate", "precharge", "phase_budget",
        "input_slope", "max_output_slope", "max_internal_slope",
        "charge_sharing_ratio",
    ):
        value = getattr(spec, name, None)
        if value is not None:
            spec_fields[name] = round(float(value), 9)
    payload: dict = {
        "widths": {
            str(k): round(float(v), 9) for k, v in dict(widths).items()
        },
        "spec": spec_fields,
        "tolerance": round(float(tolerance), 9),
        "objective": str(objective),
        "otb_borrow": round(float(otb_borrow), 9),
    }
    if classes:
        payload["collapse"] = {
            "classes": [[str(m) for m in c] for c in classes],
        }
        if representative_env is not None:
            payload["collapse"]["representative_env"] = {
                str(k): round(float(v), 9)
                for k, v in dict(representative_env).items()
            }
    if certificate is not None:
        payload["certificate"] = dict(certificate)
    if cache_entries is not None or certificates is not None:
        payload["cache"] = {
            "entries": [dict(e) for e in (cache_entries or [])],
            "certificates": {
                str(k): dict(v) for k, v in (certificates or {}).items()
            },
        }
    if technology is not None:
        payload["technology"] = {
            str(k): float(v) for k, v in dict(technology).items()
        }
    return payload


def _payload(ctx) -> Optional[Mapping[str, object]]:
    payload = ctx.options.get("solution") if ctx.options else None
    return payload if isinstance(payload, Mapping) else None


def _audit(ctx, payload):
    """A :class:`SolutionAudit` for the payload's spec (lazy import: the
    audit pulls in the sizing engine)."""
    from ...models.gates import ModelLibrary
    from ...models.technology import Technology
    from ...sizing.constraints import DelaySpec
    from .audit import SolutionAudit

    tech_fields = payload.get("technology")
    try:
        tech = (
            Technology(**dict(tech_fields))
            if isinstance(tech_fields, Mapping) else Technology()
        )
    except TypeError:
        tech = Technology()
    spec_fields = {
        str(k): float(v)
        for k, v in dict(payload.get("spec", {})).items()
    }
    if "data" not in spec_fields:
        return None
    return SolutionAudit(
        ctx.circuit,
        ModelLibrary(tech),
        DelaySpec(**spec_fields),
        tolerance=float(payload.get("tolerance", 2.0)),
        otb_borrow=float(payload.get("otb_borrow", 0.0)),
        objective=str(payload.get("objective", "area")),
    )


def _emit_violations(ctx, violations, severity=None) -> None:
    for violation in violations:
        ctx.emit(
            str(violation.get("message", "")),
            stage=violation.get("stage"),
            net=violation.get("net"),
            severity=severity,
        )


@rule(
    "OPT701",
    "solved-point primal feasibility",
    "solution",
    Severity.ERROR,
    facets=("topology", "sizing", "phases"),
)
def opt701_primal_feasibility(ctx) -> None:
    """Re-derive primal feasibility of every GP constraint at the solved
    point, independent of the solver's residual claims: timing constraints
    are re-measured with a fresh full STA (true slope propagation) and
    cross-checked with outward-rounded interval evaluation of the
    slope-refreshed delay posynomials; slope/noise constraints and device
    bounds are interval-checked directly.  A finding is a width assignment
    that provably does not implement its claimed spec."""
    payload = _payload(ctx)
    if payload is None or "widths" not in payload:
        return
    audit = _audit(ctx, payload)
    if audit is None:
        return
    verdict = audit.feasibility(payload["widths"])
    _emit_violations(ctx, verdict["violations"])


@rule(
    "OPT702",
    "KKT stationarity / optimality-gap bound",
    "solution",
    Severity.WARNING,
    facets=("topology", "sizing", "phases"),
)
def opt702_kkt_gap(ctx) -> None:
    """Fit nonnegative multipliers over the active constraints of the
    log-space convex transform at the solved point and bound the optimality
    gap (see ``SolutionAudit.kkt`` for the convexity argument).  Warns when
    the certified relative gap exceeds ``kkt_gap_rel_max`` (default 100%) —
    the point is feasible but far from provably optimal, e.g. a stale warm
    start that a later solve should refresh."""
    payload = _payload(ctx)
    if payload is None or "widths" not in payload:
        return
    audit = _audit(ctx, payload)
    if audit is None:
        return
    verdict = audit.kkt(payload["widths"])
    _emit_violations(ctx, verdict["violations"])
    gap_rel = verdict.get("gap_rel")
    limit = float(payload.get("kkt_gap_rel_max", DEFAULT_KKT_GAP_REL_MAX))
    if gap_rel is None and verdict.get("ok"):
        ctx.emit(
            "optimality-gap bound overflowed (point is numerically far "
            "from stationary)"
        )
    elif gap_rel is not None and gap_rel > limit:
        ctx.emit(
            f"certified optimality gap bound {gap_rel:.1%} exceeds "
            f"{limit:.0%} (stationarity residual "
            f"{verdict.get('stationarity_residual')}, "
            f"{verdict.get('active_constraints')} active constraints)"
        )


@rule(
    "OPT703",
    "replication soundness",
    "solution",
    Severity.ERROR,
    facets=("topology", "sizing", "phases"),
)
def opt703_replication(ctx) -> None:
    """Prove that copying each class representative's widths across its
    slice-equivalence class satisfies all cross-slice boundary coupling
    constraints: the full original circuit is re-measured at the
    replicated point (interval-STA style), and the first violated
    constraint is named as the witness boundary.  Also flags a claimed
    assignment that is not actually replicated (a class member deviating
    from its representative)."""
    payload = _payload(ctx)
    if payload is None or "widths" not in payload:
        return
    collapse = payload.get("collapse")
    if not isinstance(collapse, Mapping):
        return
    classes = collapse.get("classes") or []
    if not classes:
        return
    audit = _audit(ctx, payload)
    if audit is None:
        return
    verdict = audit.replication(
        payload["widths"],
        classes,
        representative_env=collapse.get("representative_env"),
    )
    _emit_violations(ctx, verdict["violations"])


@rule(
    "OPT704",
    "certificate staleness",
    "solution",
    Severity.WARNING,
)
def opt704_staleness(ctx) -> None:
    """Compare a certificate's recorded facet fingerprints against the live
    circuit's.  A stale certificate is not necessarily wrong — the facet
    that moved may be irrelevant to its bindings — but it must not be
    honored without re-verification, so the finding names exactly the
    facets that drifted."""
    payload = _payload(ctx)
    if payload is None:
        return
    certificate = payload.get("certificate")
    if not isinstance(certificate, Mapping):
        return
    from ...netlist.fingerprint import facet_fingerprints

    live = facet_fingerprints(ctx.circuit)
    recorded = certificate.get("facets")
    if not isinstance(recorded, Mapping):
        ctx.emit("certificate carries no facet fingerprints")
        return
    stale = sorted(
        name for name in live if recorded.get(name) != live[name]
    )
    if stale:
        ctx.emit(
            f"certificate for {certificate.get('circuit', '?')} is stale: "
            f"facet(s) {', '.join(stale)} changed since issue — "
            f"re-verify before honoring it"
        )


@rule(
    "OPT705",
    "cache-entry certificate audit",
    "solution",
    Severity.ERROR,
    facets=("topology", "sizing"),
)
def opt705_cache_audit(ctx) -> None:
    """Run the engine's certificate-admission predicate over cache entries
    as lint: every entry that carries a certificate must pass all of its
    bindings (problem key, widths digest, verdict flag, residual vs the
    entry's tolerance).  A failing pair is a forged or tampered
    certificate — admitting it would skip the STA re-verification on a
    point nobody ever verified.  Entries *without* a certificate are fine
    (they fall back to the full STA re-check)."""
    payload = _payload(ctx)
    if payload is None:
        return
    cache = payload.get("cache")
    if not isinstance(cache, Mapping):
        return
    certificates = cache.get("certificates") or {}
    for entry in cache.get("entries") or []:
        if not isinstance(entry, Mapping):
            continue
        key = str(entry.get("key", ""))
        certificate = certificates.get(key)
        if certificate is None:
            continue
        ok, reason = check_certificate(
            certificate,
            key=key,
            env=entry.get("env"),
            tolerance=float(entry.get("tolerance", 2.0)),
        )
        if not ok:
            ctx.emit(
                f"cache entry {key[:12]}… for "
                f"{entry.get('circuit_name', '?')} carries an inadmissible "
                f"certificate: {reason}"
            )
