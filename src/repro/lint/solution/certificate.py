"""The ``smart-solution-certificate/1`` record.

A solution certificate is the durable, checkable outcome of one
:class:`~repro.lint.solution.audit.SolutionAudit` run: it binds a sizing
*problem* (the content address from :mod:`repro.cache.fingerprint`), a
*point* (a digest of the free-width assignment), and the *verdicts* of the
independent OPT70x re-derivations (primal feasibility, KKT gap bound,
replication soundness) together with the circuit-facet fingerprints at
issue time.

Consumers never trust a certificate blindly — :func:`check_certificate`
is the admission predicate: the engine's certificate-backed cache fast
path (satellite: skip the full STA re-verify on an exact hit) and the
OPT705 cache audit both re-check every binding before honoring one.
Anything that fails the predicate degrades to the old behavior (full STA
re-verification), never to silent reuse.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ...cache.store import JsonlArtifactStore

CERTIFICATE_FORMAT = "smart-solution-certificate/1"

#: Fields an entry must carry to be considered at all.
_REQUIRED = (
    "format", "key", "circuit", "widths_digest", "facets", "ok",
    "worst_residual_ps", "tolerance",
)


def widths_digest(env: Mapping[str, object]) -> str:
    """Content address of a free-width assignment.

    Widths are rounded to 1e-9 µm before hashing so that a JSON round-trip
    (cache entry -> certificate -> admission check) can never un-bind a
    certificate from the env it certifies.
    """
    canon = {}
    for name in sorted(env, key=str):
        try:
            canon[str(name)] = round(float(env[name]), 9)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            canon[str(name)] = repr(env[name])
    blob = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class SolutionCertificate:
    """One issued certificate (see module docstring for the bindings)."""

    circuit: str
    key: str                          # sizing-problem content address
    widths_digest: str
    facets: Dict[str, str]            # facet fingerprints at issue time
    ok: bool
    worst_residual_ps: float
    tolerance: float
    spec_data: float = 0.0
    kkt_gap_rel: Optional[float] = None
    checks: Dict[str, dict] = field(default_factory=dict)
    classes: List[List[str]] = field(default_factory=list)
    realized: Dict[str, float] = field(default_factory=dict)
    specs: Dict[str, float] = field(default_factory=dict)

    def to_payload(self) -> dict:
        """JSON-plain dict (the shape stored and checked everywhere)."""
        return {
            "format": CERTIFICATE_FORMAT,
            "circuit": self.circuit,
            "key": self.key,
            "widths_digest": self.widths_digest,
            "facets": dict(self.facets),
            "ok": bool(self.ok),
            "worst_residual_ps": round(float(self.worst_residual_ps), 6),
            "tolerance": float(self.tolerance),
            "spec_data": round(float(self.spec_data), 6),
            "kkt_gap_rel": (
                round(float(self.kkt_gap_rel), 9)
                if self.kkt_gap_rel is not None else None
            ),
            "checks": {k: dict(v) for k, v in sorted(self.checks.items())},
            "classes": [list(c) for c in self.classes],
            "realized": {
                k: round(float(v), 6)
                for k, v in sorted(self.realized.items())
            },
            "specs": {
                k: round(float(v), 6) for k, v in sorted(self.specs.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "SolutionCertificate":
        return cls(
            circuit=str(payload["circuit"]),
            key=str(payload["key"]),
            widths_digest=str(payload["widths_digest"]),
            facets=dict(payload.get("facets", {})),  # type: ignore[arg-type]
            ok=bool(payload["ok"]),
            worst_residual_ps=float(payload["worst_residual_ps"]),  # type: ignore[arg-type]
            tolerance=float(payload.get("tolerance", 2.0)),  # type: ignore[arg-type]
            spec_data=float(payload.get("spec_data", 0.0)),  # type: ignore[arg-type]
            kkt_gap_rel=(
                None if payload.get("kkt_gap_rel") is None
                else float(payload["kkt_gap_rel"])  # type: ignore[arg-type]
            ),
            checks=dict(payload.get("checks", {})),  # type: ignore[arg-type]
            classes=[list(c) for c in payload.get("classes", [])],  # type: ignore[union-attr]
            realized=dict(payload.get("realized", {})),  # type: ignore[arg-type]
            specs=dict(payload.get("specs", {})),  # type: ignore[arg-type]
        )


class SolutionCertificateStore:
    """Certificates over the shared tolerant-JSONL substrate.

    Same concurrency/tolerance model as every other store in
    :mod:`repro.cache`: single writer, foreign/corrupt lines skipped,
    last-write-wins per key.  Attach one to a
    :class:`repro.cache.SizingCache` (its ``certificates`` attribute) to
    enable the engine's certificate-backed exact-hit fast path.
    """

    def __init__(self, path: Optional[str] = None, autosync: bool = True):
        self._store = JsonlArtifactStore(
            path, fmt=CERTIFICATE_FORMAT, autosync=autosync
        )

    def get(self, key: str) -> Optional[dict]:
        return self._store.get(key)

    def put(self, certificate: "SolutionCertificate") -> dict:
        payload = certificate.to_payload()
        return self._store.put(payload["key"], payload)

    def put_payload(self, payload: Mapping[str, object]) -> dict:
        return self._store.put(str(payload["key"]), dict(payload))

    def flush(self) -> None:
        self._store.flush()

    def entries(self) -> List[dict]:
        return self._store.entries()

    @property
    def path(self) -> Optional[str]:
        return self._store.path

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def __repr__(self) -> str:
        backing = self.path or "<memory>"
        return f"SolutionCertificateStore({backing!r}, entries={len(self)})"


def check_certificate(
    payload: Optional[Mapping[str, object]],
    *,
    key: str,
    env: Optional[Mapping[str, object]],
    tolerance: float,
    facets: Optional[Mapping[str, str]] = None,
) -> Tuple[bool, str]:
    """Admission predicate for one certificate against one cache entry.

    Checks, in order: record shape and format; problem-key binding; the
    point binding (``widths_digest`` of the entry's env); the verdict flag;
    the residual against the *caller's* tolerance (a certificate issued at
    a looser tolerance cannot admit a tighter run); and — when ``facets``
    is given — freshness against the current circuit's facet fingerprints.
    Returns ``(ok, reason)``; the reason names the first failed binding so
    rejections are diagnosable (and so OPT705 findings carry a witness).
    """
    if payload is None:
        return False, "no certificate"
    if any(f not in payload for f in _REQUIRED):
        missing = [f for f in _REQUIRED if f not in payload]
        return False, f"malformed certificate (missing {missing})"
    if payload["format"] != CERTIFICATE_FORMAT:
        return False, f"foreign format {payload['format']!r}"
    if payload["key"] != key:
        return False, "problem-key mismatch"
    if env is None:
        return False, "entry has no env to bind"
    if widths_digest(env) != payload["widths_digest"]:
        return False, "widths digest mismatch (env does not match certificate)"
    if not payload["ok"]:
        return False, "certificate records a failed audit"
    try:
        residual = float(payload["worst_residual_ps"])  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return False, "unreadable residual"
    if not residual <= tolerance + 1e-9:
        return False, (
            f"certified residual {residual:.3f} ps exceeds tolerance "
            f"{tolerance:.3f} ps"
        )
    if facets is not None:
        recorded = payload.get("facets")
        if not isinstance(recorded, Mapping):
            return False, "malformed facet fingerprints"
        stale = sorted(
            name for name in facets
            if recorded.get(name) != facets[name]
        )
        if stale:
            return False, f"stale facets: {', '.join(stale)}"
    return True, "verified"
