"""Independent post-solve audits behind the OPT70x rules.

:class:`SolutionAudit` re-derives everything about a claimed width
assignment from first principles — same engine-parity front end the sizer
uses (representative path extraction, constraint generation, true-slope
STA), but none of the solver's own residual bookkeeping:

* :meth:`feasibility` (OPT701) — primal feasibility of every GP constraint
  at the point.  Timing constraints are re-measured with the full STA (the
  engine's own convergence criterion, recomputed from scratch) *and*
  re-evaluated as slope-refreshed posynomials with outward-rounded
  interval arithmetic, so a violation verdict survives floating-point
  doubt; slope/noise constraints and device bounds are interval-checked
  directly.
* :meth:`kkt` (OPT702) — first-order stationarity of the log-space convex
  transform via a nonnegative least-squares fit of the active-constraint
  gradients, turned into a quantitative optimality-gap bound (see the
  method docstring for the convexity argument).
* :meth:`replication` (OPT703) — soundness of a slice-collapse claim:
  replicate the representative widths across each equivalence class and
  prove every cross-slice coupling constraint still holds at the
  replicated point, or name the violated constraint as a witness.

:meth:`certify` composes the three into one issued
``smart-solution-certificate/1`` record and logs a ``kind="certificate"``
run-ledger record with the audit wall time.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...models.gates import ModelLibrary
from ...netlist.circuit import Circuit
from ...netlist.fingerprint import facet_fingerprints
from ...obs import perf, trace
from ...obs.log import get_logger
from ...sizing.constraints import ConstraintGenerator, ConstraintSet, DelaySpec
from ...sizing.engine import SmartSizer
from ...sizing.gp import _LogSumExp
from .certificate import SolutionCertificate, widths_digest

log = get_logger(__name__)

#: One-ulp relative error per float operation, for outward rounding.
_EPS = 2.0 ** -52

#: Log-space margin under which an inequality counts as active for the
#: KKT fit (≈1% multiplicative slack).
_ACTIVE_TOL = 1e-2

#: Relative slack granted on hard GP constraints (slope, noise): the
#: solver only enforces them to its own constraint tolerance (SLSQP
#: ftol ~1e-6 in log space), so an honest optimum rides an active limit
#: with up to ~1e-8 relative excess.  Kept far below any physically
#: meaningful violation — the seeded mutants perturb by >=1e-3.
_SOLVER_REL_TOL = 1e-6


def posynomial_interval(
    posy, env: Mapping[str, float]
) -> Tuple[float, float]:
    """Outward-rounded enclosure of ``posy`` at ``env``.

    Every monomial is a product of a positive coefficient and positive
    powers-of-widths, so each float operation incurs at most one ulp of
    relative error; the enclosure widens each term by its operation count
    ulps and the running sums by the term count.  Conservative (never
    narrower than the true rounding envelope) and cheap — no directed
    rounding modes needed.
    """
    lo = hi = 0.0
    n_terms = 0
    for mono in posy.terms:
        value = mono.coefficient
        ops = 1
        for name, exp in mono.signature:
            value *= env[name] ** exp
            ops += 2  # one pow + one mul
        delta = abs(value) * ops * _EPS
        lo += value - delta
        hi += value + delta
        n_terms += 1
    pad = (abs(lo) + abs(hi)) * max(1, n_terms) * _EPS
    return lo - pad, hi + pad


class SolutionAudit:
    """Re-derive the OPT70x verdicts for one circuit + spec (see module
    docstring).  Path extraction and per-point measurements are memoized,
    so composing checks over the same point (as :meth:`certify` does) pays
    for one STA pass, not three."""

    def __init__(
        self,
        circuit: Circuit,
        library: ModelLibrary,
        spec: DelaySpec,
        tolerance: float = 2.0,
        otb_borrow: float = 0.0,
        objective: str = "area",
        analysis_library: Optional[ModelLibrary] = None,
        gp_method: str = "slsqp",
    ):
        self.circuit = circuit
        self.library = library
        self.spec = spec
        self.tolerance = tolerance
        # Engine-parity front end: same extraction mode, same constraint
        # generator, same analyzer the sizer itself would use.
        self._sizer = SmartSizer(
            circuit,
            library,
            objective=objective,
            otb_borrow=otb_borrow,
            analysis_library=analysis_library,
            gp_method=gp_method,
            pre_screen=False,
        )
        self._paths: Optional[list] = None
        self._frozen_constraints: Optional[ConstraintSet] = None
        self._measure_memo: Dict[str, tuple] = {}
        self._slope_memo: Dict[str, Dict[str, float]] = {}
        self._gen: Optional[ConstraintGenerator] = None

    # -- shared front end --------------------------------------------------

    def _extract_paths(self) -> list:
        if self._paths is None:
            self._paths = self._sizer._extract(prune=True).paths
        return self._paths

    def _generator(self) -> ConstraintGenerator:
        # One shared instance: the generator is stateless across generate()
        # calls except for its load-posynomial cache, which is worth keeping.
        if self._gen is None:
            self._gen = ConstraintGenerator(
                self.circuit, self.library, self.spec,
                otb_borrow=self._sizer.otb_borrow,
            )
        return self._gen

    def frozen_constraints(self) -> ConstraintSet:
        """The constraint set at frozen default slopes — exactly the GP the
        engine solves (its ``generate(paths, {})`` call)."""
        if self._frozen_constraints is None:
            self._frozen_constraints = self._generator().generate(
                self._extract_paths(), {}
            )
        return self._frozen_constraints

    def _refreshed_constraints(
        self, slope_map: Mapping[str, float]
    ) -> ConstraintSet:
        """Slope-refreshed constraint set without rebuilding the timing
        posynomials.  Timing structure (names, hops, specs) is slope-
        independent — measured slopes only shift the first-hop start
        constant — so the frozen set's timing entries are reused (realized
        delays come from the numeric STA anyway, and a violation's
        refreshed posynomial is rebuilt lazily for its interval proof).
        Slope constraints embed measured input slopes in their
        coefficients and are regenerated; noise constraints never depend
        on slopes."""
        frozen = self.frozen_constraints()
        refreshed = ConstraintSet()
        refreshed.timing = frozen.timing
        refreshed.noise = frozen.noise
        self._generator()._add_slope_constraints(refreshed, dict(slope_map))
        return refreshed

    def measured_slopes(
        self, env: Mapping[str, float]
    ) -> Dict[str, float]:
        """The STA slope map at ``env`` (memoized alongside measure)."""
        digest = widths_digest(env)
        if digest not in self._slope_memo:
            self.measure(env)
        return self._slope_memo[digest]

    def measure(
        self, env: Mapping[str, float]
    ) -> Tuple[ConstraintSet, Dict[str, float], float, str]:
        """STA measurement of every timing constraint at ``env``.

        Returns ``(slope-refreshed constraints, realized delays, worst
        residual, worst constraint name)`` — the engine's convergence
        criterion recomputed from scratch at the audited point.
        """
        digest = widths_digest(env)
        memo = self._measure_memo.get(digest)
        if memo is not None:
            return memo
        analyzer = self._sizer.analyzer
        report = analyzer.analyze(env, input_slope=self.spec.input_slope)
        slope_map = {key: ev.slope for key, ev in report.arrivals.items()}
        self._slope_memo[digest] = slope_map
        constraints = self._refreshed_constraints(slope_map)
        realized: Dict[str, float] = {}
        worst = -math.inf
        worst_name = ""
        for constraint in constraints.timing:
            measured = analyzer.path_delay(
                constraint.hops, env,
                input_slope=self.spec.input_slope, net_slopes=slope_map,
            )
            realized[constraint.name] = measured
            violation = measured - constraint.spec
            if violation > worst:
                worst, worst_name = violation, constraint.name
        memo = (constraints, realized, worst, worst_name)
        self._measure_memo[digest] = memo
        return memo

    def _normalize_env(
        self, widths: Mapping[str, object]
    ) -> Tuple[Optional[Dict[str, float]], List[dict]]:
        """Validate a claimed env: finite positive floats covering every
        free label.  Returns ``(env, violations)``; env is None when the
        point is unusable."""
        violations: List[dict] = []
        env: Dict[str, float] = {}
        for name, value in dict(widths).items():
            try:
                width = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                violations.append({
                    "name": str(name),
                    "message": f"width of {name} is not a number: {value!r}",
                })
                continue
            if not math.isfinite(width) or width <= 0.0:
                violations.append({
                    "name": str(name),
                    "message": f"width of {name} is not positive finite: {width!r}",
                })
                continue
            env[str(name)] = width
        free = set(self.circuit.size_table.free_names())
        missing = sorted(free - set(env))
        if missing:
            violations.append({
                "name": missing[0],
                "message": (
                    f"assignment misses {len(missing)} free label(s): "
                    f"{', '.join(missing[:5])}"
                ),
            })
            return None, violations
        if violations:
            return None, violations
        return {name: env[name] for name in sorted(free)}, violations

    # -- OPT701: primal feasibility ---------------------------------------

    def feasibility(self, widths: Mapping[str, object]) -> dict:
        """Solver-independent primal-feasibility verdict at ``widths``."""
        env, violations = self._normalize_env(widths)
        if env is None:
            return {
                "ok": False, "violations": violations,
                "worst_residual_ps": math.inf, "worst_constraint": "",
            }
        table = self.circuit.size_table
        for name in sorted(env):
            var = table[name]
            if not (var.lower - 1e-9 <= env[name] <= var.upper + 1e-9):
                violations.append({
                    "name": name,
                    "message": (
                        f"width {env[name]:.4f} um of {name} outside bounds "
                        f"[{var.lower}, {var.upper}]"
                    ),
                })
        constraints, realized, worst, worst_name = self.measure(env)
        slope_map = self.measured_slopes(env)
        for constraint in constraints.timing:
            measured = realized[constraint.name]
            residual = measured - constraint.spec
            if residual > self.tolerance:
                # Rebuild just this constraint's posynomial at the measured
                # slopes for the interval proof (the shared timing set keeps
                # frozen-slope posynomials; see _refreshed_constraints).
                delay = self._generator().path_delay_posynomial(
                    constraint.hops, slope_map
                )
                lo, _hi = posynomial_interval(delay, env)
                proof = (
                    "interval-confirmed"
                    if lo > constraint.spec + self.tolerance
                    else "STA-measured"
                )
                violations.append({
                    "name": constraint.name,
                    "message": (
                        f"{constraint.name}: realized {measured:.2f} ps "
                        f"exceeds spec {constraint.spec:.2f} ps by "
                        f"{residual:.2f} ps (> tolerance "
                        f"{self.tolerance:.2f} ps, {proof})"
                    ),
                })
        for slope in constraints.slopes:
            lo, _hi = posynomial_interval(slope.slope, env)
            if lo > slope.limit * (1.0 + _SOLVER_REL_TOL):
                violations.append({
                    "name": slope.name,
                    "net": slope.net,
                    "message": (
                        f"{slope.name}: slope >= {lo:.2f} ps exceeds limit "
                        f"{slope.limit:.2f} ps on net {slope.net}"
                    ),
                })
        for noise in constraints.noise:
            lo, _hi = posynomial_interval(noise.expr, env)
            if lo > 1.0 + _SOLVER_REL_TOL:
                violations.append({
                    "name": noise.name,
                    "stage": noise.stage,
                    "message": (
                        f"{noise.name}: charge-sharing expression >= "
                        f"{lo:.4f} > 1 at stage {noise.stage}"
                    ),
                })
        return {
            "ok": not violations,
            "violations": violations,
            "worst_residual_ps": round(worst, 6),
            "worst_constraint": worst_name,
            "timing_constraints": len(constraints.timing),
        }

    # -- OPT702: KKT / duality gap ----------------------------------------

    def kkt(self, widths: Mapping[str, object]) -> dict:
        """First-order optimality of the log-space transform at ``widths``.

        At ``y = log x``, a GP minimizes convex ``F0(y)`` over convex
        ``Fi(y) <= 0`` plus box bounds.  We fit nonnegative multipliers
        over the gradients of the constraints active at ``y`` (NNLS on
        ``F0' + sum(lam_i Fi') + sum(mu_k (+/- e_k)) ~ 0``).  With
        ``r = grad of the fitted Lagrangian`` and any feasible ``y*``,
        convexity of ``L`` gives ``F0(y*) >= L(y*) >= L(y) + r.(y* - y)``,
        hence

            F0(y) - F0(y*) <= ||r|| * diam + sum_i lam_i * |Fi(y)|

        with ``diam`` the log-box diameter — a certified bound on the
        optimality gap in log units (``expm1`` of it bounds the relative
        objective gap).  No solver internals are consulted.
        """
        env, violations = self._normalize_env(widths)
        if env is None:
            return {"ok": False, "violations": violations, "gap_rel": None}
        gp = self._sizer._build_gp(self.frozen_constraints(), {})
        names = sorted(env)
        index = {name: i for i, name in enumerate(names)}
        y = np.array([math.log(env[name]) for name in names])
        objective = _LogSumExp.from_posynomial(gp.objective, index)
        g0 = objective.grad(y)

        columns: List[np.ndarray] = []
        active_names: List[str] = []
        slacks: List[float] = []
        for constraint in gp.inequalities:
            if not set(constraint.expr.variables()) <= set(index):
                continue
            lse = _LogSumExp.from_posynomial(constraint.expr, index)
            value = lse.value(y)  # <= 0 when satisfied
            if value >= -_ACTIVE_TOL:
                columns.append(lse.grad(y))
                active_names.append(constraint.name)
                slacks.append(abs(value))
        diam_sq = 0.0
        for name in names:
            lower, upper = gp.bounds(name)
            span = math.log(upper) - math.log(lower)
            diam_sq += span * span
            unit = np.zeros(len(names))
            unit[index[name]] = 1.0
            if y[index[name]] - math.log(lower) <= _ACTIVE_TOL:
                columns.append(-unit)     # lower bound active: l - y <= 0
                active_names.append(f"lb:{name}")
                slacks.append(abs(y[index[name]] - math.log(lower)))
            if math.log(upper) - y[index[name]] <= _ACTIVE_TOL:
                columns.append(unit)      # upper bound active: y - u <= 0
                active_names.append(f"ub:{name}")
                slacks.append(abs(math.log(upper) - y[index[name]]))
        diameter = math.sqrt(diam_sq)

        if columns:
            from scipy.optimize import nnls

            matrix = np.column_stack(columns)
            lambdas, residual = nnls(matrix, -g0)
            slack_term = float(
                sum(l * s for l, s in zip(lambdas, slacks))
            )
        else:
            lambdas = np.zeros(0)
            residual = float(np.linalg.norm(g0))
            slack_term = 0.0
        gap_log = float(residual) * diameter + slack_term
        gap_rel = math.expm1(gap_log) if gap_log < 700 else math.inf
        return {
            "ok": True,
            "violations": [],
            "stationarity_residual": round(float(residual), 9),
            "active_constraints": len(active_names),
            "gap_log": round(gap_log, 9),
            "gap_rel": round(gap_rel, 9) if math.isfinite(gap_rel) else None,
            "lambda_max": (
                round(float(lambdas.max()), 6) if len(lambdas) else 0.0
            ),
        }

    # -- OPT703: replication soundness ------------------------------------

    def replication(
        self,
        widths: Mapping[str, object],
        classes: Sequence[Sequence[str]],
        representative_env: Optional[Mapping[str, object]] = None,
    ) -> dict:
        """Soundness of the claim "one slice's widths replicate across its
        equivalence class".

        Two obligations: (a) the claimed assignment is actually replicated
        — every member of a class carries its representative's width; and
        (b) the replicated point satisfies every cross-slice coupling
        constraint, proved by re-measuring the *full original* circuit at
        the replicated point (interval-STA style: true slope propagation
        plus outward-rounded posynomial enclosures for the reliability
        constraints).  The first violated constraint is named as the
        witness boundary.
        """
        env, violations = self._normalize_env(widths)
        if env is None:
            return {"ok": False, "violations": violations, "witness": ""}
        free = set(env)
        # (a) intra-class replication of the claimed assignment.
        for members in classes:
            members = [m for m in members if m in free]
            if len(members) < 2:
                continue
            rep = members[0]
            for member in members[1:]:
                if not math.isclose(
                    env[member], env[rep], rel_tol=1e-6, abs_tol=1e-9
                ):
                    violations.append({
                        "name": member,
                        "message": (
                            f"label {member} ({env[member]:.4f} um) is not "
                            f"replicated from its class representative "
                            f"{rep} ({env[rep]:.4f} um)"
                        ),
                    })
        # (b) the replicated point: representative widths copied across
        # each class (defaults to the claimed env's own representatives).
        replicated = dict(env)
        if representative_env is not None:
            for name, value in dict(representative_env).items():
                if name in free:
                    try:
                        replicated[name] = float(value)  # type: ignore[arg-type]
                    except (TypeError, ValueError):
                        pass
        for members in classes:
            members = [m for m in members if m in free]
            if len(members) < 2:
                continue
            for member in members[1:]:
                replicated[member] = replicated[members[0]]
        constraints, realized, worst, worst_name = self.measure(replicated)
        witness = ""
        if worst > self.tolerance:
            witness = worst_name
            violations.append({
                "name": worst_name,
                "message": (
                    f"replicated point violates coupling constraint "
                    f"{worst_name}: realized "
                    f"{realized[worst_name]:.2f} ps exceeds its spec by "
                    f"{worst:.2f} ps (> tolerance {self.tolerance:.2f} ps)"
                ),
            })
        for slope in constraints.slopes:
            lo, _hi = posynomial_interval(slope.slope, replicated)
            if lo > slope.limit * (1.0 + _SOLVER_REL_TOL):
                witness = witness or slope.name
                violations.append({
                    "name": slope.name,
                    "net": slope.net,
                    "message": (
                        f"replicated point violates slope constraint "
                        f"{slope.name} on net {slope.net}: "
                        f">= {lo:.2f} ps vs limit {slope.limit:.2f} ps"
                    ),
                })
        return {
            "ok": not violations,
            "violations": violations,
            "witness": witness,
            "worst_residual_ps": round(worst, 6),
            "classes": len(
                [c for c in classes if len([m for m in c if m in free]) > 1]
            ),
            "merged_labels": sum(
                max(0, len([m for m in c if m in free]) - 1) for c in classes
            ),
        }

    # -- certificate issue -------------------------------------------------

    def certify(
        self,
        widths: Mapping[str, object],
        cache_key: str,
        classes: Sequence[Sequence[str]] = (),
        representative_env: Optional[Mapping[str, object]] = None,
        with_kkt: bool = True,
    ) -> SolutionCertificate:
        """Run the full audit at ``widths`` and issue the certificate.

        ``ok`` requires primal feasibility and (when ``classes`` are
        claimed) replication soundness; the KKT gap is recorded as a
        quantitative annotation, never a veto — a feasible point with a
        poor gap bound is safe to use, just not provably optimal.
        """
        t_start = time.perf_counter()
        with trace.span(
            "solution_certify", circuit=self.circuit.name
        ) as span:
            feas = self.feasibility(widths)
            checks: Dict[str, dict] = {
                "OPT701": {
                    "ok": feas["ok"],
                    "worst_residual_ps": feas.get("worst_residual_ps"),
                    "violations": len(feas["violations"]),
                },
            }
            kkt_gap_rel = None
            if with_kkt:
                kkt = self.kkt(widths)
                kkt_gap_rel = kkt.get("gap_rel")
                checks["OPT702"] = {
                    "ok": kkt["ok"],
                    "gap_rel": kkt.get("gap_rel"),
                    "stationarity_residual": kkt.get(
                        "stationarity_residual"
                    ),
                }
            ok = feas["ok"]
            if classes:
                rep = self.replication(
                    widths, classes, representative_env=representative_env
                )
                checks["OPT703"] = {
                    "ok": rep["ok"],
                    "witness": rep.get("witness", ""),
                    "merged_labels": rep.get("merged_labels", 0),
                }
                ok = ok and rep["ok"]
            realized: Dict[str, float] = {}
            specs: Dict[str, float] = {}
            worst = feas.get("worst_residual_ps", math.inf)
            env, _ = self._normalize_env(widths)
            if env is not None:
                constraints, realized, worst, _name = self.measure(env)
                specs = {c.name: c.spec for c in constraints.timing}
            certificate = SolutionCertificate(
                circuit=self.circuit.name,
                key=cache_key,
                widths_digest=widths_digest(widths),
                facets=dict(facet_fingerprints(self.circuit)),
                ok=bool(ok),
                worst_residual_ps=(
                    worst if math.isfinite(worst) else 1e18
                ),
                tolerance=self.tolerance,
                spec_data=self.spec.data,
                kkt_gap_rel=kkt_gap_rel,
                checks=checks,
                classes=[list(c) for c in classes],
                realized=realized,
                specs=specs,
            )
            wall = time.perf_counter() - t_start
            span.set_attrs(ok=certificate.ok, wall_s=round(wall, 6))
        perf.record_run(
            "certificate",
            self.circuit.name,
            wall_s=wall,
            extra={
                "ok": certificate.ok,
                "worst_residual_ps": certificate.worst_residual_ps,
                "kkt_gap_rel": certificate.kkt_gap_rel,
                "classes": len(certificate.classes),
            },
        )
        log.info(
            "certified %s: ok=%s residual=%.2f ps (%.3f s)",
            self.circuit.name, certificate.ok,
            certificate.worst_residual_ps, wall,
        )
        return certificate
