"""Post-solve solution-certificate analysis (the OPT7xx rule family).

Every prior rule family audits the *input* netlist; this package audits the
*solver's output*: a sized netlist plus the width assignment a
:class:`~repro.sizing.engine.SizingResult` (or a cache entry, or a
replicated slice solve) claims for it.  The analyses are deliberately
independent of the solver's own residual bookkeeping — they re-derive
feasibility (OPT701), first-order optimality (OPT702) and replication
soundness (OPT703) from the circuit and the claimed point alone, and
package the outcome as a checkable ``smart-solution-certificate/1`` record
(OPT704 staleness, OPT705 cache-admission audits).

Import note: :mod:`repro.lint.solution.audit` imports the sizing engine,
so — like :mod:`repro.lint.coverage` — the rule module is loaded through
the forgiving branch of ``repro.lint.registry._load_builtin_rules`` and
this package is *not* re-exported from ``repro.lint``'s top level.
"""

from .certificate import (  # noqa: F401
    CERTIFICATE_FORMAT,
    SolutionCertificate,
    SolutionCertificateStore,
    check_certificate,
    widths_digest,
)
