"""Switch-level symbolic verification (the SVC4xx rule group).

Layers, bottom up:

* :mod:`~repro.lint.symbolic.switchlevel` — Bryant-style steady-state
  solver over the flat transistor netlist (conducting paths, charge
  retention, two-phase domino protocol);
* :mod:`~repro.lint.symbolic.extract` — input-space enumeration and
  boolean-behavior extraction (exact cofactors up to a budget, seeded
  sampling beyond, ``proved`` vs ``tested`` verdicts);
* :mod:`~repro.lint.symbolic.isomorphism` — name-blind canonical cone
  hashing and the per-macro :class:`SliceCertificate`;
* :mod:`~repro.lint.symbolic.rules` — SVC401-SVC405 on top of the above;
* :mod:`~repro.lint.symbolic.mutate` — wiring-mutation helpers used by the
  tests to prove the rules catch planted bugs;
* :mod:`~repro.lint.symbolic.corpus` — the CI sweep over the full macro
  database (``python -m repro.lint.symbolic.corpus``).
"""

from .extract import (
    DEFAULT_EXACT_BUDGET,
    DEFAULT_SAMPLES,
    DEFAULT_SEED,
    Extraction,
    extract,
    extract_cached,
)
from .isomorphism import (
    SliceCertificate,
    SliceGroup,
    canonical_cone_hash,
    slice_certificate,
)
from .switchlevel import ChannelGraph, Conflict, EvalResult, evaluate_assignment

__all__ = [
    "DEFAULT_EXACT_BUDGET",
    "DEFAULT_SAMPLES",
    "DEFAULT_SEED",
    "ChannelGraph",
    "Conflict",
    "EvalResult",
    "Extraction",
    "SliceCertificate",
    "SliceGroup",
    "canonical_cone_hash",
    "evaluate_assignment",
    "extract",
    "extract_cached",
    "slice_certificate",
]
