"""Bit-slice isomorphism certification (the SVC405 analysis).

Regularity merging (:mod:`repro.sizing.pruning`, pass 3) and the
content-addressed sizing cache both assume that bit slices of a datapath
macro are *structurally identical up to instance names*: two paths with the
same (kind, label-signature, pin-class) step sequence are collapsed to one
GP constraint.  That assumption has never been verified — a generator bug
that wires one slice differently while reusing the shared size labels would
silently produce constraints for the wrong circuit.

This module certifies the assumption: for every primary output it computes
a *canonical cone form* — a Weisfeiler-Leman style iterated refinement hash
of the output's input cone, blind to net/stage names but sensitive to stage
kinds, size-label signatures, structural params, pin classes and the
DAG shape.  Outputs whose cones use the *same multiset of size labels* are
expected to be isomorphic (they claim, through label sharing, to be copies
of one slice); a hash disagreement inside such a group is the SVC405
finding.  The full grouping is exported as a :class:`SliceCertificate` for
the regularity-merging tests to consume.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ...netlist.circuit import Circuit
from ...netlist.stages import Stage

#: WL refinement rounds — enough to separate any non-isomorphic cones this
#: corpus can produce (diameter of the deepest macro cone is < 64).
_WL_ROUNDS = 8


def _stage_color(circuit: Circuit, stage: Stage) -> str:
    """Name-blind initial color: kind + canonical label signature + the
    structural params that change the expansion."""
    labels = circuit.size_table.regularity_signature(stage.labels())
    params = []
    for key in ("series_n", "series_p", "legs", "leg_series", "leg_sizes",
                "clocked", "skew", "mutex", "keeper"):
        if key in stage.params:
            params.append(f"{key}={stage.params[key]!r}")
    return f"{stage.kind.value}|{','.join(labels)}|{';'.join(params)}"


def _cone_stages(circuit: Circuit, output: str) -> List[Stage]:
    """Every stage in the transitive fan-in cone of ``output``."""
    seen: Set[str] = set()
    order: List[Stage] = []
    frontier = deque(circuit.drivers_of(output))
    while frontier:
        stage = frontier.popleft()
        if stage.name in seen:
            continue
        seen.add(stage.name)
        order.append(stage)
        for pin in stage.inputs:
            frontier.extend(circuit.drivers_of(pin.net.name))
    return order


def cone_labels(circuit: Circuit, output: str) -> Tuple[str, ...]:
    """Sorted multiset of size labels used by the cone of ``output``."""
    labels: List[str] = []
    for stage in _cone_stages(circuit, output):
        labels.extend(stage.labels())
    return tuple(sorted(labels))


def canonical_cone_hash(circuit: Circuit, output: str) -> str:
    """Canonical form of one output's input cone.

    Iterated refinement: each stage's color absorbs, per round, the sorted
    multiset of (pin-class, pin-inverted, source-color) triples of its
    fan-in, where a source is either a driving stage (its current color) or
    a leaf tag (primary input / clock / undriven).  After ``_WL_ROUNDS``
    rounds the sorted color multiset — root color first — is hashed.
    Instance and net names never enter the computation, so isomorphic
    slices collide and renamed copies are invariant.
    """
    cone = _cone_stages(circuit, output)
    if not cone:
        return "leaf:" + (
            "input" if output in circuit.primary_inputs else "undriven"
        )
    colors: Dict[str, str] = {
        stage.name: _stage_color(circuit, stage) for stage in cone
    }
    cone_names = set(colors)
    clock_nets = set(circuit.clock_nets())
    inputs = set(circuit.primary_inputs)
    for _ in range(_WL_ROUNDS):
        new_colors: Dict[str, str] = {}
        for stage in cone:
            fanin: List[str] = []
            for pin in stage.inputs:
                net = pin.net.name
                drivers = [
                    colors[d.name]
                    for d in circuit.drivers_of(net)
                    if d.name in cone_names
                ]
                if drivers:
                    source = "+".join(sorted(drivers))
                elif net in clock_nets:
                    source = "leaf:clock"
                elif net in inputs:
                    source = "leaf:input"
                else:
                    source = "leaf:undriven"
                fanin.append(
                    f"{pin.pin_class.value}:{int(bool(pin.inverted))}:{source}"
                )
            blob = colors[stage.name] + "||" + "|".join(sorted(fanin))
            new_colors[stage.name] = hashlib.sha256(
                blob.encode("utf-8")
            ).hexdigest()[:16]
        colors = new_colors
    root_drivers = sorted(
        colors[d.name]
        for d in circuit.drivers_of(output)
        if d.name in cone_names
    )
    payload = ",".join(root_drivers) + "#" + ",".join(
        sorted(colors.values())
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SliceGroup:
    """Outputs claiming (via shared labels) to be copies of one slice."""

    labels: Tuple[str, ...]
    outputs: Tuple[str, ...]
    cone_hashes: Tuple[str, ...]

    @property
    def isomorphic(self) -> bool:
        return len(set(self.cone_hashes)) <= 1


@dataclass(frozen=True)
class SliceCertificate:
    """The per-macro isomorphism certificate SVC405 emits.

    ``classes`` maps each canonical cone hash to the outputs sharing it;
    outputs in one class are structurally interchangeable, which is exactly
    the license regularity merging needs to keep one representative path
    per signature across slices.
    """

    circuit: str
    cone_hash: Dict[str, str]            # output -> canonical hash
    classes: Dict[str, Tuple[str, ...]]  # canonical hash -> outputs
    groups: Tuple[SliceGroup, ...]       # label-sharing groups checked

    @property
    def violations(self) -> Tuple[SliceGroup, ...]:
        return tuple(g for g in self.groups if not g.isomorphic)

    def certifies(self, *outputs: str) -> bool:
        """True when all named outputs sit in one isomorphism class."""
        hashes = {self.cone_hash[o] for o in outputs}
        return len(hashes) <= 1


def _var_shape(circuit: Circuit, name: str) -> Tuple:
    """Bounds/pin/ratio shape of a size label — everything about the label
    that changes the GP except its identity."""
    v = circuit.size_table[name]
    return (
        round(v.lower, 9),
        round(v.upper, 9),
        v.pinned,
        v.ratio_of[1] if v.ratio_of else None,
    )


def label_equivalence_classes(
    circuit: Circuit, radius: int = 3
) -> List[List[str]]:
    """Equivalence classes of *free* size labels under bounded-radius
    structural symmetry — the license for regularity-collapsed sizing.

    Two labels land in one class when every stage using them is
    indistinguishable by a name- and *label*-blind bidirectional
    Weisfeiler-Leman refinement of radius ``radius``: the initial stage
    color is (kind, structural params, per-role label shapes), and each
    round absorbs the sorted fan-in multiset (pin class, inversion, driver
    color or leaf tag), the sorted fan-out multiset (pin class, inversion,
    sink color), and the output net's load tags (external load, wire
    parasitics).  Unlike :func:`canonical_cone_hash` this never looks at
    label *names*, so slices that share a topology but carry per-slice
    labels (the collapse candidates) still collide.

    The result is a heuristic proposal, not a proof: delay is a
    radius-unbounded function of the whole circuit, so a collapse built on
    these classes must be certified post-hoc (rule OPT703) at the
    replicated point.  Classes are sorted lists of member labels (first
    member = canonical representative); singleton classes are omitted.
    """
    table = circuit.size_table
    clock_nets = set(circuit.clock_nets())
    inputs = set(circuit.primary_inputs)
    outputs = set(circuit.primary_outputs)

    def _h(blob: str) -> str:
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    colors: Dict[str, str] = {}
    for st in circuit.stages:
        params = tuple(sorted((k, repr(st.params[k])) for k in st.params))
        roles = tuple(
            (role, _var_shape(circuit, st.size_vars[role]))
            for role in sorted(st.size_vars)
        )
        colors[st.name] = _h(f"{st.kind.value}|{params}|{roles}")

    for _ in range(max(0, radius)):
        new_colors: Dict[str, str] = {}
        for st in circuit.stages:
            fanin: List[str] = []
            for pin in st.inputs:
                net = pin.net.name
                drivers = sorted(
                    colors[d.name] for d in circuit.drivers_of(net)
                )
                if drivers:
                    source = "+".join(drivers)
                elif net in clock_nets:
                    source = "leaf:clock"
                elif net in inputs:
                    source = "leaf:input"
                else:
                    source = "leaf:undriven"
                fanin.append(
                    f"{pin.pin_class.value}:{int(bool(pin.inverted))}:{source}"
                )
            onet = st.output.name
            fanout = [
                f"{pin.pin_class.value}:{int(bool(pin.inverted))}:{colors[sink.name]}"
                for sink, pin in circuit.fanout_of(onet)
            ]
            net_obj = circuit.net(onet)
            tag = f"out:{net_obj.external_load}" if onet in outputs else ""
            tag += f"|wc:{net_obj.wire_cap}|wr:{net_obj.wire_res}"
            new_colors[st.name] = _h(
                colors[st.name]
                + "||" + "|".join(sorted(fanin))
                + "##" + "|".join(sorted(fanout))
                + "@@" + tag
            )
        colors = new_colors

    label_sig: Dict[str, List[Tuple[str, str]]] = {}
    for st in circuit.stages:
        for role in sorted(st.size_vars):
            label_sig.setdefault(st.size_vars[role], []).append(
                (colors[st.name], role)
            )
    classes: Dict[Tuple, List[str]] = {}
    for name in table.names():
        if not table[name].free:
            continue
        sig = (
            tuple(sorted(label_sig.get(name, []))),
            _var_shape(circuit, name),
        )
        classes.setdefault(sig, []).append(name)
    return [
        sorted(members)
        for _, members in sorted(classes.items())
        if len(members) > 1
    ]


def slice_certificate(circuit: Circuit) -> SliceCertificate:
    """Compute the isomorphism certificate for every primary output."""
    cone_hash = {
        out: canonical_cone_hash(circuit, out)
        for out in circuit.primary_outputs
    }
    classes: Dict[str, List[str]] = {}
    for out, digest in cone_hash.items():
        classes.setdefault(digest, []).append(out)
    by_labels: Dict[Tuple[str, ...], List[str]] = {}
    for out in circuit.primary_outputs:
        by_labels.setdefault(cone_labels(circuit, out), []).append(out)
    groups = tuple(
        SliceGroup(
            labels=labels,
            outputs=tuple(outs),
            cone_hashes=tuple(cone_hash[o] for o in outs),
        )
        for labels, outs in sorted(by_labels.items())
        if len(outs) > 1
    )
    return SliceCertificate(
        circuit=circuit.name,
        cone_hash=cone_hash,
        classes={h: tuple(outs) for h, outs in classes.items()},
        groups=groups,
    )
