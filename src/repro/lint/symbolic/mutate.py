"""Wiring-mutation helpers for verifying the verifier.

The SVC4xx rules are only credible if they catch real generator bugs, so the
test suite plants one: for every macro family it takes the shipped circuit,
swaps a single select/data connection, and asserts the mutant is flagged by
SVC401 (wrong function) or SVC402 (drive fight).  These helpers perform such
surgical rewires on an already-built :class:`~repro.netlist.circuit.Circuit`
while keeping its fanout index consistent.

They are *test instrumentation*, not a design API — nothing in the product
path mutates built circuits.
"""

from __future__ import annotations

from ...netlist.circuit import Circuit
from .extract import invalidate_cache


def rebind_pin(circuit: Circuit, stage_name: str, pin_name: str, net_name: str) -> None:
    """Reconnect one input pin of ``stage_name`` to ``net_name``."""
    stage = circuit.stage(stage_name)
    for pin in stage.inputs:
        if pin.name == pin_name:
            old = pin.net.name
            pin.net = circuit.net(net_name)
            _refresh_fanout(circuit, old, net_name)
            invalidate_cache(circuit)
            return
    raise KeyError(f"stage {stage_name} has no pin {pin_name}")


def swap_pins(circuit: Circuit, stage_name: str, pin_a: str, pin_b: str) -> None:
    """Swap the nets of two input pins of one stage (one crossed wire)."""
    stage = circuit.stage(stage_name)
    pins = {pin.name: pin for pin in stage.inputs}
    if pin_a not in pins or pin_b not in pins:
        raise KeyError(f"stage {stage_name} lacks pins {pin_a}/{pin_b}")
    a, b = pins[pin_a], pins[pin_b]
    a.net, b.net = b.net, a.net
    _refresh_fanout(circuit, a.net.name, b.net.name)
    invalidate_cache(circuit)


def _refresh_fanout(circuit: Circuit, *net_names: str) -> None:
    """Rebuild the fanout index entries touched by a rewire."""
    for name in set(net_names):
        circuit._fanout[name] = [
            (stage, pin)
            for stage in circuit.stages
            for pin in stage.inputs
            if pin.net.name == name
        ]
