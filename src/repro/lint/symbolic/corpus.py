"""CI corpus driver: run the SVC4xx group over the full macro database.

``python -m repro.lint.symbolic.corpus`` sweeps every registered topology
over a representative width grid (mux widths 2-8, adders up to 16 bits,
the 32-bit comparator corpus, ...), runs the symbolic rule group on each
generated circuit, and exits non-zero if any non-waived error survives.
``--sarif FILE`` writes the combined SARIF 2.1.0 log for code-scanning
upload; the text summary always goes to stdout.

This is the formal backstop behind the ``symbolic-verify`` CI job: every
shipped generator must *prove* (or, above the exact budget, sample-test)
equal to its golden functional spec, with zero drive fights, sneak paths,
or unexplained floating nets.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable, List, Optional, Sequence, Tuple

from ..diagnostics import LintReport
from ..runner import lint_circuit
from ..waivers import load_waivers

#: Width sweep per macro type.  Entries are ``(width, params)``; the driver
#: skips (generator, spec) pairs the generator declares inapplicable, so the
#: grid can be generous.
WIDTH_GRID: Sequence[Tuple[str, int, Tuple[Tuple[str, object], ...]]] = tuple(
    [("mux", w, ()) for w in range(2, 9)]
    + [("adder", w, ()) for w in (2, 4, 8, 16)]
    + [("comparator", 32, ())]
    + [("incrementor", w, ()) for w in (4, 6, 8)]
    + [("decrementor", w, ()) for w in (4, 6, 8)]
    + [("zero_detect", w, ()) for w in (4, 8, 16)]
    + [("decoder", w, ()) for w in (2, 3, 4, 5)]
    + [("encoder", w, ()) for w in (2, 3, 4)]
    + [("shifter", w, ()) for w in (4, 8)]
    + [
        ("register_file", w, (("registers", r),))
        for w, r in ((1, 4), (2, 4), (2, 8))
    ]
)


def corpus_circuits(grid=WIDTH_GRID) -> Iterable[Tuple[str, object]]:
    """Yield ``(label, circuit)`` for every applicable (topology, spec) pair
    in the grid, with golden specs attached via ``generate()``."""
    from ...macros.base import MacroSpec
    from ...macros.registry import default_database
    from ...models.technology import Technology

    tech = Technology()
    database = default_database()
    for macro_type, width, params in grid:
        spec = MacroSpec(macro_type, width, params=params)
        for generator in database.applicable(spec):
            label = f"{generator.name}[{width}]"
            if params:
                label += "".join(f" {k}={v}" for k, v in params)
            yield label, generator.generate(spec, tech)


def run_corpus(
    grid=WIDTH_GRID,
    waivers=(),
    exact_budget: Optional[int] = None,
    samples: Optional[int] = None,
    seed: Optional[int] = None,
    emit=print,
    rule_cache=None,
) -> List[LintReport]:
    """Lint every corpus circuit with the symbolic group; return reports.

    ``rule_cache`` (a :class:`~repro.lint.incremental.RuleResultCache`)
    makes the sweep incremental: circuits whose relevant facets match a
    previous run replay their recorded verdicts instead of re-enumerating
    the input space.
    """
    options = {}
    if exact_budget is not None:
        options["symbolic_exact_budget"] = exact_budget
    if samples is not None:
        options["symbolic_samples"] = samples
    if seed is not None:
        options["symbolic_seed"] = seed

    reports: List[LintReport] = []
    for label, circuit in corpus_circuits(grid):
        start = time.perf_counter()
        report = lint_circuit(
            circuit, groups=("symbolic",), waivers=waivers, options=options,
            cache=rule_cache,
        )
        elapsed = time.perf_counter() - start
        reports.append(report)
        status = "ok" if report.ok else "FAIL"
        replayed = sum(1 for _, _, s in report.executed if s == "replayed")
        cached = f" cached={replayed}" if replayed else ""
        emit(
            f"{status:4s} {label:42s} errors={len(report.errors)} "
            f"warnings={len(report.warnings)} waived={len(report.waived)} "
            f"({elapsed:.2f}s){cached}"
        )
        for diag in report.diagnostics:
            if not diag.waived:
                emit(f"     {diag.format()}")
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.symbolic.corpus",
        description=(
            "run SVC401-SVC405 switch-level verification over the full "
            "default macro database"
        ),
        epilog="exit codes: 0 = corpus verified, 1 = non-waived errors",
    )
    parser.add_argument(
        "--sarif", metavar="FILE",
        help="write combined SARIF 2.1.0 log to FILE",
    )
    parser.add_argument(
        "--waivers", metavar="FILE", help="waiver/suppression file"
    )
    parser.add_argument(
        "--exact-budget", type=int, default=None,
        help="max inputs for exhaustive enumeration (default 10)",
    )
    parser.add_argument(
        "--samples", type=int, default=None,
        help="random assignments above the exact budget (default 64)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="sampling seed"
    )
    parser.add_argument(
        "--rule-cache", metavar="FILE", default=None,
        help=(
            "incremental rule-result cache (JSONL); unchanged circuits "
            "replay recorded verdicts instead of re-enumerating"
        ),
    )
    args = parser.parse_args(argv)

    rule_cache = None
    if args.rule_cache:
        from ..incremental import RuleResultCache

        rule_cache = RuleResultCache(args.rule_cache)
    waivers = load_waivers(args.waivers) if args.waivers else ()
    reports = run_corpus(
        waivers=waivers,
        exact_budget=args.exact_budget,
        samples=args.samples,
        seed=args.seed,
        rule_cache=rule_cache,
    )
    if rule_cache is not None:
        rule_cache.flush()
        stats = rule_cache.stats
        print(
            f"rule cache: {stats.replayed}/{stats.invocations} replayed "
            f"({stats.hit_rate:.0%}), {stats.wall_saved_s:.2f}s saved"
        )

    if args.sarif:
        from ..reporters import render_sarif

        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(render_sarif(reports))
        print(f"wrote SARIF log: {args.sarif}")

    n_err = sum(len(r.errors) for r in reports)
    n_warn = sum(len(r.warnings) for r in reports)
    print(
        f"corpus: {len(reports)} circuits, {n_err} error(s), "
        f"{n_warn} warning(s)"
    )
    return 0 if n_err == 0 else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
