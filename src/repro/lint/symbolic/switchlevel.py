"""Bryant-style switch-level steady-state solver.

The verifier needs transistor-level truth, not stage-level truth: a mux with
swapped select wiring has a perfectly healthy stage graph, and only the
conducting-path structure of its pull-up / pull-down / pass networks reveals
the wrong function (or the drive fight).  This module computes, for one
boolean assignment of the primary inputs, the steady-state value of every
net of a flat transistor netlist — the core of Bryant's MOSSIM switch-level
model, specialized to the two strengths this corpus needs (driven > stored
charge) and a two-phase clock protocol for domino circuits.

Model
-----

* A transistor is a switch between ``drain`` and ``source``: an NMOS
  conducts when its gate is 1, a PMOS when its gate is 0; an unknown gate
  value makes the switch state unknown (it is then neither traversed for
  value propagation nor trusted to block).
* ``vdd``/``vss`` and the primary inputs (plus the clock) are *fixed*
  sources: they hold their value regardless of what conducts into them, and
  conducting paths are not traced *through* them (an ideal voltage source
  clamps its node).
* A net with a definitely-conducting path to a 1-source and none to a
  0-source is 1 (symmetrically 0).  Paths to both polarities make the net a
  **conflict** (X) — the raw material for the drive-fight (SVC402) and
  sneak-path (SVC404) rules.
* A net with no conducting path to any source keeps its *stored charge*
  (the value it held at the end of the previous phase) — this is how a
  domino dynamic node stays high through evaluate when no leg conducts.
  With no stored charge either, the net **floats** (Z) — SVC403's domain.
* Keeper devices (the half-latch PMOS and its feedback inverter emitted by
  the domino expander) are *weak*: they sustain a floating node but never
  win a fight against the strong network, so ratioed keeper contention is
  not misreported as a drive fight.

Evaluation is a fixpoint: gate values feed switch states feed net values
feed gate values.  Values only become *more* defined per iteration except
through feedback loops, which the iteration cap resolves to X.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ...netlist.circuit import Circuit
from ...netlist.devices import Transistor
from ...netlist.stages import VDD, VSS, StageKind

#: Device-name suffixes of the weak keeper devices in the domino expander.
_KEEPER_SUFFIXES = (".mkeep",)


@dataclass(frozen=True)
class Switch:
    """One transistor viewed as a gated switch between two channel nets."""

    name: str
    a: str          # drain
    b: str          # source
    gate: str
    on_value: bool  # gate value that makes it conduct (NMOS: 1, PMOS: 0)
    stage: str
    weak: bool = False

    def state(self, gate_value: Optional[bool]) -> Optional[bool]:
        """True = conducting, False = blocked, None = unknown."""
        if gate_value is None:
            return None
        return gate_value == self.on_value


class ChannelGraph:
    """The channel-connected switch network of one circuit.

    Built once per circuit from the flat expansion at unit widths (the
    boolean behavior is width-independent), then solved once per input
    assignment.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        widths = {label: 1.0 for label in circuit.size_table.names()}
        devices = circuit.expand_transistors(widths)
        self.switches: List[Switch] = [self._switch(d) for d in devices]
        #: net -> indices of switches with a channel terminal on it
        self.channels: Dict[str, List[int]] = {}
        for idx, sw in enumerate(self.switches):
            self.channels.setdefault(sw.a, []).append(idx)
            self.channels.setdefault(sw.b, []).append(idx)
        #: Stage kind per stage name (for conflict classification).
        self.stage_kinds: Dict[str, StageKind] = {
            s.name: s.kind for s in circuit.stages
        }
        self.clock_nets: FrozenSet[str] = frozenset(circuit.clock_nets())
        self.input_nets: Tuple[str, ...] = tuple(circuit.primary_inputs)
        #: Every net name appearing in the flat view (includes expander
        #: internals like stack midpoints that have no Net object).
        names: Set[str] = {VDD, VSS}
        names.update(circuit.nets)
        for sw in self.switches:
            names.update((sw.a, sw.b, sw.gate))
        self.net_names: FrozenSet[str] = frozenset(names)

    @staticmethod
    def _switch(device: Transistor) -> Switch:
        weak = any(device.name.endswith(sfx) for sfx in _KEEPER_SUFFIXES)
        return Switch(
            name=device.name,
            a=device.drain,
            b=device.source,
            gate=device.gate,
            on_value=device.is_nmos,
            stage=device.stage,
            weak=weak,
        )

    # -- solving ------------------------------------------------------------

    def fixed_values(
        self, env: Mapping[str, bool], clock: Optional[bool]
    ) -> Dict[str, bool]:
        """The clamped source nets for one phase: rails, inputs, clock."""
        fixed: Dict[str, bool] = {VDD: True, VSS: False}
        for name in self.input_nets:
            fixed[name] = bool(env[name])
        if clock is not None:
            for name in self.clock_nets:
                fixed[name] = clock
        return fixed

    def solve_phase(
        self,
        env: Mapping[str, bool],
        clock: Optional[bool],
        charge: Optional[Mapping[str, bool]] = None,
        max_rounds: int = 60,
    ) -> "PhaseSolution":
        """Steady state of one clock phase under one input assignment."""
        fixed = self.fixed_values(env, clock)
        charge = charge or {}
        # None = unknown; nets start from their stored charge (weakly).
        values: Dict[str, Optional[bool]] = {
            name: fixed.get(name, charge.get(name))
            for name in self.net_names
        }
        conflicts: Dict[str, "Conflict"] = {}
        floating: Set[str] = set()
        for _ in range(max_rounds):
            new_values, conflicts, floating = self._one_round(
                values, fixed, charge
            )
            if new_values == values:
                break
            values = new_values
        else:
            # Non-convergent feedback: demote every net still moving to X.
            final, conflicts, floating = self._one_round(values, fixed, charge)
            for name, val in final.items():
                if val != values[name]:
                    values[name] = None
        return PhaseSolution(
            values=values, conflicts=conflicts, floating=frozenset(floating)
        )

    def _one_round(
        self,
        values: Dict[str, Optional[bool]],
        fixed: Mapping[str, bool],
        charge: Mapping[str, bool],
    ) -> Tuple[Dict[str, Optional[bool]], Dict[str, "Conflict"], Set[str]]:
        states = [sw.state(values.get(sw.gate)) for sw in self.switches]
        reach1 = self._reach(True, states, fixed, weak=False)
        reach0 = self._reach(False, states, fixed, weak=False)
        conflicts: Dict[str, Conflict] = {}
        new_values: Dict[str, Optional[bool]] = {}
        undriven: List[str] = []
        for name in self.net_names:
            if name in fixed:
                new_values[name] = fixed[name]
                continue
            in1, in0 = name in reach1, name in reach0
            if in1 and in0:
                new_values[name] = None
                conflicts[name] = self._conflict(name, states, fixed)
            elif in1:
                new_values[name] = True
            elif in0:
                new_values[name] = False
            else:
                undriven.append(name)
        # Weak (keeper) drive only matters where the strong network is silent.
        weak1 = self._reach(True, states, fixed, weak=True)
        weak0 = self._reach(False, states, fixed, weak=True)
        floating: Set[str] = set()
        for name in undriven:
            w1, w0 = name in weak1, name in weak0
            if w1 and not w0:
                new_values[name] = True
            elif w0 and not w1:
                new_values[name] = False
            elif name in charge:
                new_values[name] = charge[name]
            else:
                new_values[name] = None
                floating.add(name)
        return new_values, conflicts, floating

    def _reach(
        self,
        polarity: bool,
        states: Sequence[Optional[bool]],
        fixed: Mapping[str, bool],
        weak: bool,
    ) -> Set[str]:
        """Nets with a definitely-conducting path to a ``polarity`` source.

        ``weak=False`` traverses only strong switches; ``weak=True`` allows
        keeper switches too (used as a fallback where nothing strong
        drives).  Traversal never continues *through* a fixed net: sources
        clamp.
        """
        frontier = [name for name, val in fixed.items() if val == polarity]
        seen: Set[str] = set(frontier)
        while frontier:
            net = frontier.pop()
            for idx in self.channels.get(net, ()):
                if states[idx] is not True:
                    continue
                sw = self.switches[idx]
                if sw.weak and not weak:
                    continue
                other = sw.b if sw.a == net else sw.a
                if other in seen:
                    continue
                seen.add(other)
                if other not in fixed:
                    frontier.append(other)
        return seen

    def _conflict(
        self,
        net: str,
        states: Sequence[Optional[bool]],
        fixed: Mapping[str, bool],
    ) -> "Conflict":
        """Witness paths for a net driven from both polarities."""
        path1 = self._path_to_source(net, True, states, fixed)
        path0 = self._path_to_source(net, False, states, fixed)
        stages: List[str] = []
        pass_stages: Set[str] = set()
        for sw in path1 + path0:
            if sw.stage not in stages:
                stages.append(sw.stage)
            if self.stage_kinds.get(sw.stage) is StageKind.PASSGATE:
                pass_stages.add(sw.stage)
        return Conflict(
            net=net,
            pull_up_path=tuple(sw.name for sw in path1),
            pull_down_path=tuple(sw.name for sw in path0),
            stages=tuple(stages),
            pass_stages=frozenset(pass_stages),
        )

    def _path_to_source(
        self,
        net: str,
        polarity: bool,
        states: Sequence[Optional[bool]],
        fixed: Mapping[str, bool],
    ) -> List[Switch]:
        """One conducting switch path from ``net`` back to a source of
        ``polarity`` (BFS parent reconstruction; empty when none)."""
        parent: Dict[str, Tuple[str, Switch]] = {}
        frontier = [net]
        seen = {net}
        while frontier:
            here = frontier.pop(0)
            for idx in self.channels.get(here, ()):
                if states[idx] is not True or self.switches[idx].weak:
                    continue
                sw = self.switches[idx]
                other = sw.b if sw.a == here else sw.a
                if other in seen:
                    continue
                seen.add(other)
                parent[other] = (here, sw)
                if fixed.get(other) == polarity:
                    path = [sw]
                    node = here
                    while node != net:
                        node, via = parent[node]
                        path.append(via)
                    return path
                if other not in fixed:
                    frontier.append(other)
        return []


@dataclass(frozen=True)
class Conflict:
    """A net conducting to both rails: the drive-fight/sneak-path witness."""

    net: str
    pull_up_path: Tuple[str, ...]
    pull_down_path: Tuple[str, ...]
    stages: Tuple[str, ...]
    pass_stages: FrozenSet[str]

    @property
    def is_sneak_path(self) -> bool:
        """Both-rail conduction routed through two or more distinct
        pass-gate stages — a sneak path through the bidirectional pass
        network rather than a plain PU/PD overlap."""
        return len(self.pass_stages) >= 2


@dataclass
class PhaseSolution:
    """Steady state of one phase: net values + anomalies."""

    values: Dict[str, Optional[bool]]
    conflicts: Dict[str, Conflict] = field(default_factory=dict)
    floating: FrozenSet[str] = frozenset()

    def value(self, net: str) -> Optional[bool]:
        return self.values.get(net)


@dataclass
class EvalResult:
    """Result of evaluating one input assignment end to end."""

    env: Dict[str, bool]
    evaluate: PhaseSolution
    precharge: Optional[PhaseSolution] = None

    def output(self, net: str) -> Optional[bool]:
        return self.evaluate.value(net)


def _precharge_env(circuit: Circuit, env: Mapping[str, bool]) -> Dict[str, bool]:
    """Input values during the precharge phase.

    ``mono_rise`` inputs are low before evaluate, ``mono_fall`` high;
    everything else (steady / async / undeclared) is modeled at its
    evaluate value — the solver's single-assignment steady-state view.
    """
    pre: Dict[str, bool] = {}
    for name in circuit.primary_inputs:
        declared = circuit.input_phase(name)
        if declared == "mono_rise":
            pre[name] = False
        elif declared == "mono_fall":
            pre[name] = True
        else:
            pre[name] = bool(env[name])
    return pre


def evaluate_assignment(
    graph: ChannelGraph, env: Mapping[str, bool]
) -> EvalResult:
    """Solve one input assignment.

    Clocked circuits run the two-phase protocol: settle at clk=0 (the
    precharge phase charges the dynamic nodes), then solve clk=1 with the
    precharge steady state as stored charge.  Static circuits solve a
    single phase with no charge memory.
    """
    env = {name: bool(env[name]) for name in graph.input_nets}
    if not graph.clock_nets:
        return EvalResult(env=env, evaluate=graph.solve_phase(env, clock=None))
    pre_env = _precharge_env(graph.circuit, env)
    pre = graph.solve_phase(pre_env, clock=False)
    stored = {
        name: val for name, val in pre.values.items() if val is not None
    }
    evaluate = graph.solve_phase(env, clock=True, charge=stored)
    return EvalResult(env=env, evaluate=evaluate, precharge=pre)
