"""Boolean-behavior extraction over the switch-level solver.

Enumerates input assignments, solves each through
:mod:`repro.lint.symbolic.switchlevel`, and collects the per-output truth
table plus every electrical anomaly (conflicts, floating nets) seen along
the way.  Exact cofactor enumeration is used up to a configurable input
budget; beyond it a seeded random sample is drawn and the verdict is
downgraded from ``"proved"`` to ``"tested"`` — the SVC4xx rules surface
that distinction in their messages so a sampled pass is never mistaken for
a proof.

One extraction is shared by all SVC401-404 rules for a circuit (the lint
runner executes rules back to back over the same object), memoized weakly
so repeated lint runs on a long-lived circuit stay cheap.
"""

from __future__ import annotations

import itertools
import random
import weakref
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ...netlist.circuit import Circuit
from ...netlist.funcspec import FunctionalSpec
from .switchlevel import ChannelGraph, Conflict, evaluate_assignment

#: Exact enumeration up to this many primary inputs (2^budget assignments).
DEFAULT_EXACT_BUDGET = 10
#: Random assignments drawn when the input count exceeds the budget.
DEFAULT_SAMPLES = 64
#: Seed for the sampling path — fixed so findings are reproducible.
DEFAULT_SEED = 20260806
#: Rejection-sampling attempts per sample when the spec has a ``valid``
#: predicate but no constrained sampler.
_REJECTION_TRIES = 32


@dataclass(frozen=True)
class Mismatch:
    """One output disagreeing with the golden spec, with its witness."""

    output: str
    expected: bool
    actual: bool
    env: Tuple[Tuple[str, bool], ...]

    def witness(self) -> str:
        assigns = " ".join(f"{k}={int(v)}" for k, v in self.env)
        return f"[{assigns}]"


@dataclass(frozen=True)
class FloatingNet:
    """A net left floating (no drive, no stored charge) during evaluate."""

    net: str
    env: Tuple[Tuple[str, bool], ...]

    def witness(self) -> str:
        assigns = " ".join(f"{k}={int(v)}" for k, v in self.env)
        return f"[{assigns}]"


@dataclass
class Extraction:
    """Everything the SVC rules need from one circuit's enumeration."""

    circuit_name: str
    n_inputs: int
    n_assignments: int
    verdict: str                       # "proved" | "tested"
    mismatches: List[Mismatch] = field(default_factory=list)
    undefined: List[Mismatch] = field(default_factory=list)
    conflicts: Dict[str, Tuple[Conflict, Tuple[Tuple[str, bool], ...]]] = (
        field(default_factory=dict)
    )
    floating: Dict[str, FloatingNet] = field(default_factory=dict)
    spec_checked: bool = False

    @property
    def proved(self) -> bool:
        return self.verdict == "proved"


def observable_nets(circuit: Circuit) -> FrozenSet[str]:
    """Nets whose value matters downstream: primary outputs plus every net
    that gates a transistor of some stage.  Floating *channel* internals
    (a tri-state's stack midpoint behind an off device) are harmless and
    excluded."""
    observable = set(circuit.primary_outputs)
    for stage in circuit.stages:
        for pin in stage.inputs:
            observable.add(pin.net.name)
    return frozenset(observable)


def _enumerate_envs(
    inputs: Tuple[str, ...],
    spec: Optional[FunctionalSpec],
    exact_budget: int,
    samples: int,
    seed: int,
) -> Tuple[List[Dict[str, bool]], str]:
    """The assignments to check + the resulting verdict strength."""
    if len(inputs) <= exact_budget:
        envs = [
            dict(zip(inputs, bits))
            for bits in itertools.product((False, True), repeat=len(inputs))
        ]
        if spec is not None:
            envs = [env for env in envs if spec.is_valid(env)]
        return envs, "proved"
    rng = random.Random(seed)
    envs: List[Dict[str, bool]] = []
    seen = set()
    for _ in range(samples):
        env = _one_sample(inputs, spec, rng)
        if env is None:
            continue
        key = tuple(env[name] for name in inputs)
        if key in seen:
            continue
        seen.add(key)
        envs.append(env)
    return envs, "tested"


def _one_sample(
    inputs: Tuple[str, ...],
    spec: Optional[FunctionalSpec],
    rng: random.Random,
) -> Optional[Dict[str, bool]]:
    if spec is not None and spec.sampler is not None:
        env = dict(spec.sampler(rng))
        # The sampler fixes the constrained nets; fill the rest randomly.
        for name in inputs:
            if name not in env:
                env[name] = bool(rng.getrandbits(1))
        if spec.is_valid(env):
            return env
        return None
    for _ in range(_REJECTION_TRIES):
        env = {name: bool(rng.getrandbits(1)) for name in inputs}
        if spec is None or spec.is_valid(env):
            return env
    return None


def extract(
    circuit: Circuit,
    spec: Optional[FunctionalSpec] = None,
    exact_budget: int = DEFAULT_EXACT_BUDGET,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> Extraction:
    """Enumerate/sample the input space and collect behavior + anomalies.

    ``spec`` (usually ``circuit.functional_spec``) restricts enumeration to
    the macro's valid input space and enables the SVC401 comparison; with
    no spec the full space is swept and only electrical anomalies are
    recorded.
    """
    graph = ChannelGraph(circuit)
    inputs = tuple(circuit.primary_inputs)
    envs, verdict = _enumerate_envs(inputs, spec, exact_budget, samples, seed)
    observable = observable_nets(circuit)
    result = Extraction(
        circuit_name=circuit.name,
        n_inputs=len(inputs),
        n_assignments=len(envs),
        verdict=verdict,
        spec_checked=spec is not None,
    )
    for env in envs:
        outcome = evaluate_assignment(graph, env)
        env_key = tuple(sorted(env.items()))
        for net, conflict in outcome.evaluate.conflicts.items():
            if net in observable and net not in result.conflicts:
                result.conflicts[net] = (conflict, env_key)
        for net in outcome.evaluate.floating:
            if net in observable and net not in result.floating:
                result.floating[net] = FloatingNet(net=net, env=env_key)
        if spec is None:
            continue
        for out_name in circuit.primary_outputs:
            if out_name not in spec.outputs:
                continue
            actual = outcome.output(out_name)
            expected = spec.expected(out_name, env)
            if actual is None:
                # X/Z at the output: the conflict / floating finding above
                # owns the diagnosis; record for completeness.
                result.undefined.append(
                    Mismatch(out_name, expected, False, env_key)
                )
            elif actual != expected:
                result.mismatches.append(
                    Mismatch(out_name, expected, actual, env_key)
                )
    return result


# -- memoization -------------------------------------------------------------

_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def invalidate_cache(circuit: Circuit) -> None:
    """Forget memoized extractions for ``circuit``.

    The memo assumes circuits are immutable after construction; anything
    that rewires pins in place (:mod:`repro.lint.symbolic.mutate` is the
    only sanctioned path) must call this before re-extracting.
    """
    _CACHE.pop(circuit, None)


def extract_cached(
    circuit: Circuit,
    spec: Optional[FunctionalSpec],
    exact_budget: int,
    samples: int,
    seed: int = DEFAULT_SEED,
) -> Extraction:
    """Per-circuit memoized :func:`extract` (shared by the SVC rules)."""
    key = (id(spec), exact_budget, samples, seed)
    per_circuit = _CACHE.get(circuit)
    if per_circuit is None:
        per_circuit = {}
        _CACHE[circuit] = per_circuit
    if key not in per_circuit:
        per_circuit[key] = extract(
            circuit, spec, exact_budget=exact_budget, samples=samples, seed=seed
        )
    return per_circuit[key]
