"""The SVC4xx rule group: switch-level symbolic verification.

All five rules share one :func:`~repro.lint.symbolic.extract.extract_cached`
run per circuit (the enumeration is the expensive part; the rules are just
different views of its result):

* **SVC401** — functional equivalence: the extracted transistor-level
  behavior must match the golden :class:`~repro.netlist.funcspec.FunctionalSpec`
  attached to the circuit on every valid input assignment.  The message
  carries the verdict strength (``proved`` for exact cofactor enumeration,
  ``tested`` for seeded sampling past the input budget).
* **SVC402** — drive fight: some observable net conducts to both rails
  under a valid assignment (keeper devices are weak and never count).
* **SVC403** — floating output: an observable net is neither driven nor
  holding precharge-phase charge during evaluate.  Nets the DFA301 phase
  analysis proves precharge-clamped are exempt (their evaluate value is
  charge by design; a solver charge-tracking gap must not misfire here).
* **SVC404** — sneak path: a both-rail conflict whose witness paths thread
  two or more distinct pass-gate stages, i.e. a backward path through the
  bidirectional pass network rather than a plain pull-up/pull-down overlap.
* **SVC405** — slice isomorphism: outputs that share one size-label
  multiset (and therefore one merged GP constraint set under regularity
  pruning) must have isomorphic input cones.

Tuning knobs read from :attr:`LintContext.options`:

``symbolic_exact_budget``
    Max primary inputs for exact enumeration (default 10).
``symbolic_samples``
    Seeded sample count past the budget (default 64).
``symbolic_seed``
    RNG seed for the sampling path (default 20260806).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...netlist.funcspec import FunctionalSpec
from ..dataflow.phase import Phase, solve_phases
from ..diagnostics import Severity
from ..registry import rule
from .extract import (
    DEFAULT_EXACT_BUDGET,
    DEFAULT_SAMPLES,
    DEFAULT_SEED,
    Extraction,
    extract_cached,
)
from .isomorphism import slice_certificate

#: Witnesses reported per rule per circuit before summarizing.
_MAX_WITNESSES = 4

#: Phases under which a net is precharge-clamped: its evaluate value rides
#: on stored charge by design, so SVC403 must not call it floating.
_PRECHARGED = (Phase.LOW_PRE, Phase.HIGH_PRE)


def _extraction(ctx) -> Extraction:
    opts = ctx.options
    spec = getattr(ctx.circuit, "functional_spec", None)
    if spec is not None and not isinstance(spec, FunctionalSpec):
        spec = None
    return extract_cached(
        ctx.circuit,
        spec,
        exact_budget=int(opts.get("symbolic_exact_budget", DEFAULT_EXACT_BUDGET)),
        samples=int(opts.get("symbolic_samples", DEFAULT_SAMPLES)),
        seed=int(opts.get("symbolic_seed", DEFAULT_SEED)),
    )


def _env_str(env: Tuple[Tuple[str, bool], ...]) -> str:
    return " ".join(f"{name}={int(value)}" for name, value in env)


@rule(
    "SVC401",
    "circuit behavior must match its golden functional spec",
    group="symbolic",
    severity=Severity.ERROR,
    facets=("topology", "phases", "funcspec"),
)
def check_functional_equivalence(ctx) -> None:
    """Switch-level extraction vs. the golden spec.

    Enumerates the valid input space (exact up to the input budget, seeded
    samples beyond), solves every assignment through the Bryant-style
    switch-level model, and compares each primary output against the
    :class:`FunctionalSpec` the generator attached.  A circuit with no
    attached spec is skipped — attach-coverage is enforced separately by
    the macro-database tests, not per circuit here.
    """
    spec = getattr(ctx.circuit, "functional_spec", None)
    if not isinstance(spec, FunctionalSpec):
        return
    ex = _extraction(ctx)
    for miss in ex.mismatches[:_MAX_WITNESSES]:
        ctx.emit(
            f"output {miss.output} = {int(miss.actual)}, golden spec"
            f"{f' ({spec.golden})' if spec.golden else ''} requires"
            f" {int(miss.expected)} under {miss.witness()}"
            f" [{ex.verdict}, {ex.n_assignments} assignments]",
            net=miss.output,
        )
    hidden = len(ex.mismatches) - _MAX_WITNESSES
    if hidden > 0:
        ctx.emit(
            f"{hidden} further spec mismatches suppressed"
            f" ({len(ex.mismatches)} total over {ex.n_assignments}"
            " assignments)"
        )
    for miss in ex.undefined[:_MAX_WITNESSES]:
        ctx.emit(
            f"output {miss.output} is undefined (X/Z) under {miss.witness()}"
            f" where the golden spec requires {int(miss.expected)}",
            net=miss.output,
        )


@rule(
    "SVC402",
    "no net may conduct to both rails (drive fight)",
    group="symbolic",
    severity=Severity.ERROR,
    facets=("topology", "phases", "funcspec"),
)
def check_drive_fight(ctx) -> None:
    """Both-rail conduction on an observable net under a valid assignment.

    The witness names one conducting pull-up path and one pull-down path.
    Keeper devices are modeled weak, so ratioed keeper contention on domino
    nodes never fires this rule.  Conflicts routed through two or more
    pass-gate stages are classified as sneak paths and reported by SVC404
    instead.
    """
    ex = _extraction(ctx)
    for net, (conflict, env) in sorted(ex.conflicts.items()):
        if conflict.is_sneak_path:
            continue
        ctx.emit(
            f"net {net} conducts to both rails under [{_env_str(env)}]:"
            f" up via {'/'.join(conflict.pull_up_path) or '?'},"
            f" down via {'/'.join(conflict.pull_down_path) or '?'}"
            f" [{ex.verdict}]",
            net=net,
            stage=conflict.stages[0] if conflict.stages else None,
        )


@rule(
    "SVC403",
    "observable nets must not float during evaluate",
    group="symbolic",
    severity=Severity.ERROR,
    facets=("topology", "phases", "funcspec"),
)
def check_floating(ctx) -> None:
    """High-Z on an output or gate net during the evaluate phase.

    A net counts as floating only when it has no conducting path to any
    source *and* no stored charge from the precharge phase.  Nets the phase
    analysis (DFA301's lattice) proves precharge-clamped are exempt: their
    evaluate-phase value legitimately rides on stored charge.
    """
    ex = _extraction(ctx)
    if not ex.floating:
        return
    phases = solve_phases(ctx.circuit).values if ctx.circuit.clock_nets() else {}
    for net, info in sorted(ex.floating.items()):
        value = phases.get(net)
        if value is not None and value.phase in _PRECHARGED:
            continue
        ctx.emit(
            f"net {net} floats (no drive, no stored charge) under"
            f" {info.witness()} [{ex.verdict}]",
            net=net,
        )


@rule(
    "SVC404",
    "no sneak paths through bidirectional pass networks",
    group="symbolic",
    severity=Severity.ERROR,
    facets=("topology", "phases", "funcspec"),
)
def check_sneak_path(ctx) -> None:
    """Both-rail conduction threading >= 2 distinct pass-gate stages.

    Pass transistors conduct both ways; a mux whose selects are not mutex
    (or are miswired) lets one leg's driver discharge backward through
    another leg.  Such conflicts are structurally different from a plain
    pull-up/pull-down overlap — the fix is in the select discipline, not in
    the fighting drivers — so they get their own rule.
    """
    ex = _extraction(ctx)
    for net, (conflict, env) in sorted(ex.conflicts.items()):
        if not conflict.is_sneak_path:
            continue
        ctx.emit(
            f"sneak path onto net {net} through pass stages"
            f" {'/'.join(sorted(conflict.pass_stages))} under"
            f" [{_env_str(env)}]: up via"
            f" {'/'.join(conflict.pull_up_path) or '?'}, down via"
            f" {'/'.join(conflict.pull_down_path) or '?'} [{ex.verdict}]",
            net=net,
            stage=next(iter(sorted(conflict.pass_stages))),
        )


@rule(
    "SVC405",
    "label-sharing bit slices must be isomorphic",
    group="symbolic",
    severity=Severity.WARNING,
    facets=("topology", "sizing"),
)
def check_slice_isomorphism(ctx) -> None:
    """Certify the structural-regularity assumption behind merging.

    Outputs whose input cones use the same multiset of size labels are, by
    that sharing, claimed to be copies of one bit slice — regularity
    pruning keeps a single representative path per signature and the sizing
    cache fingerprints them identically.  This rule canonicalizes each cone
    (name-blind Weisfeiler-Leman refinement) and warns when cones inside
    one label group are *not* isomorphic: the merge would then transfer
    constraints between structurally different slices.
    """
    cert = slice_certificate(ctx.circuit)
    for group in cert.violations:
        distinct = len(set(group.cone_hashes))
        ctx.emit(
            f"outputs {', '.join(group.outputs)} share size labels but"
            f" split into {distinct} non-isomorphic cone classes;"
            " regularity merging over these slices is unsound",
            net=group.outputs[0],
        )


def certificate_for(circuit) -> Optional["object"]:
    """Convenience: the SVC405 certificate for a circuit (or None when the
    circuit has no primary outputs)."""
    if not circuit.primary_outputs:
        return None
    return slice_certificate(circuit)
