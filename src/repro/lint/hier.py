"""Hierarchical interface-contract composition (rules CTR501–505).

``repro lint --hier`` analyzes an N-macro block by composing N interface
contracts (:mod:`repro.lint.contracts`) instead of flattening: each macro
instance contributes its contract's boundary facts, the block contributes
its connection list, and five composition rules check the hand-offs:

* **CTR501 phase compatibility** — the DFA301 phase fact of every driving
  port must be *at most as unconstrained* as the phase the sink macro was
  characterized against (its declared input phase, or the conservative
  static assumption when undeclared).
* **CTR502 monotonicity hand-off** — same for the DFA302 class: a macro
  characterized with steady inputs must not receive a rising domino rail.
* **CTR503 load budget** — the capacitance a connection presents (wire +
  fixed load + every sink port's worst-case input cap over its sizing
  box) must fit the drive budget the driver's output was characterized
  against.
* **CTR504 stale contract** — the instantiated netlist's fingerprint must
  resolve to a current contract; an identity match at a *different*
  fingerprint means the macro was edited after characterization.
* **CTR505 contract-vs-flat spot check** (``--verify-contracts``) — a
  sampled subset of instances is re-characterized from scratch and the
  whole block is flattened and re-solved; contract facts must cover the
  flat fixpoint values.  The soundness audit for everything above.

**Soundness of composition** (the DESIGN.md §11 argument, abridged): each
contract's facts are the flat analysis of the macro *under its declared
input assumptions*.  CTR501/502 enforce that every actual input fact is
≤ the assumption in the badness order below; the dataflow transfer
functions are monotone in that order, so the macro's internal fixpoint
under actual inputs is ≤ the characterized fixpoint, and every finding
the flat analysis could produce is already present in (or implied by) the
contract's recorded findings.  Composed verdicts may over-report
(conservative) but never under-report — zero false negatives vs. flat.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..models.gates import ModelLibrary
from ..netlist.circuit import Circuit
from ..netlist.fingerprint import circuit_fingerprint
from ..obs import metrics, perf, trace
from ..obs.log import get_logger
from .contracts import (
    CONTRACT_VERSION,
    derive_contract,
    macro_identity,
)
from .dataflow.monotone import solve_monotonicity
from .dataflow.phase import solve_phases
from .diagnostics import Diagnostic, LintReport, Location, Severity
from .electrical.model import option as electrical_option
from .incremental import (
    RuleResultCache,
    options_digest,
    replay_findings,
)
from .registry import Rule, register
from .waivers import Waiver, apply_waivers

log = get_logger(__name__)

#: Relative tolerance of the CTR503 load-budget comparison.
_LOAD_TOL = 1e-6

#: Default CTR505 sampling seed (deterministic across runs).
DEFAULT_VERIFY_SEED = 20260809


def _ctr(rule_id: str, title: str, severity: Severity, doc: str) -> Rule:
    return register(Rule(
        rule_id, title, "contracts", severity, doc=doc,
        facets=("topology", "sizing", "phases", "funcspec"),
    ))


CTR501 = _ctr(
    "CTR501", "cross-macro phase compatibility", Severity.ERROR,
    "The DFA301 phase fact a driving macro's contract exports for a "
    "connection must be covered by the phase the sink macro's input was "
    "characterized against (its declared phase, or the conservative "
    "static assumption when undeclared).  A clock-valued or mixed rail "
    "into a data port, or a static rail into a declared monotone-rising "
    "domino input, fails the block even though both macros lint clean "
    "in isolation.",
)
CTR502 = _ctr(
    "CTR502", "cross-macro monotonicity hand-off", Severity.ERROR,
    "The DFA302 monotonicity class of the driving port must be covered "
    "by the sink's characterization assumption: a macro characterized "
    "with steady inputs (the undeclared default) must not be fed a "
    "monotone domino rail that resets every precharge, and a declared "
    "mono_rise input must not receive a falling or non-monotone signal.",
)
CTR503 = _ctr(
    "CTR503", "connection load exceeds drive budget", Severity.WARNING,
    "The capacitance a connection presents — wire cap, fixed load, and "
    "each sink port's worst-case input capacitance over its sizing box "
    "(contract cap_hi) — must fit the external load the driving output "
    "was characterized against.  Overload invalidates the driver's "
    "contracted delay/slope intervals.",
)
CTR504 = _ctr(
    "CTR504", "stale or missing interface contract", Severity.WARNING,
    "The instantiated netlist's fingerprint must resolve to a current "
    "contract in the store.  A same-identity contract at a different "
    "fingerprint means the macro was edited after characterization "
    "(facts re-derived); a version or options mismatch means the store "
    "predates the current tool/configuration.",
)
CTR505 = _ctr(
    "CTR505", "contract disagrees with flat analysis", Severity.ERROR,
    "The --verify-contracts soundness audit: sampled instances are "
    "re-characterized from scratch and compared field-for-field against "
    "their stored contracts, and the whole block is flattened and "
    "re-solved — every flat fixpoint fact at a macro boundary must be "
    "covered by the composed contract fact.  Any disagreement here is a "
    "bug in the contract pipeline, never waivable noise.",
)
CTR506 = _ctr(
    "CTR506", "boundary noise exceeds receiver margin", Severity.WARNING,
    "Driver noise injection vs. receiver margin at a block boundary: the "
    "coupling-exposed fraction of the connection's routed wire cap, scaled "
    "by the driver's contracted attack factor (noise_inject, from its "
    "slope interval), must dip the boundary net by less than the smallest "
    "noise_margin any noise-sensitive sink port exports.  Static sinks "
    "export no margin and are immune; a domino or pass-gate input behind "
    "the boundary is only as safe as this composed budget.",
)


# -- badness orders (the ⊑ of the soundness argument) -----------------------

#: value -> every value that is at least as "bad" (unconstrained).
_PHASE_UPPER: Dict[str, Tuple[str, ...]] = {
    "bottom": ("bottom", "low", "high", "stable", "static", "clock", "mixed"),
    "low": ("low", "stable", "static", "mixed"),
    "high": ("high", "stable", "static", "mixed"),
    "stable": ("stable", "static", "mixed"),
    "static": ("static", "mixed"),
    "clock": ("clock", "mixed"),
    "mixed": ("mixed",),
}

_MONO_UPPER: Dict[str, Tuple[str, ...]] = {
    "bottom": ("bottom", "steady", "rising", "falling", "clock", "nonmono"),
    "steady": ("steady", "rising", "falling", "nonmono"),
    "rising": ("rising", "nonmono"),
    "falling": ("falling", "nonmono"),
    "clock": ("clock", "nonmono"),
    "nonmono": ("nonmono",),
}

#: Declared input phase -> the DFA301 source value the macro was
#: characterized with (mirrors ``PhaseAnalysis.source_value``).
_ASSUMED_PHASE: Dict[Optional[str], str] = {
    "mono_rise": "low",
    "mono_fall": "high",
    "steady": "stable",
    "async": "static",
    None: "static",
}

#: Declared input phase -> the DFA302 source value (mirrors
#: ``MonotonicityAnalysis.source_value``).
_ASSUMED_MONO: Dict[Optional[str], str] = {
    "mono_rise": "rising",
    "mono_fall": "falling",
    "steady": "steady",
    "async": "nonmono",
    None: "steady",
}


def phase_le(actual: Optional[str], assumed: Optional[str]) -> bool:
    """``actual ⊑ assumed`` in the phase badness order (unknowns fail)."""
    if actual is None or assumed is None:
        return False
    return assumed in _PHASE_UPPER.get(actual, ())


def mono_le(actual: Optional[str], assumed: Optional[str]) -> bool:
    if actual is None or assumed is None:
        return False
    return assumed in _MONO_UPPER.get(actual, ())


def phase_satisfies(actual: Optional[str], declared: Optional[str]) -> bool:
    """Does a driving port's phase fact satisfy a sink's declared phase?"""
    return phase_le(actual, _ASSUMED_PHASE.get(declared, "static"))


def mono_satisfies(actual: Optional[str], declared: Optional[str]) -> bool:
    return mono_le(actual, _ASSUMED_MONO.get(declared, "steady"))


# -- block model ------------------------------------------------------------


@dataclass(frozen=True)
class HierInstance:
    """One macro instance inside a hierarchical block."""

    name: str
    circuit: Circuit
    topology: str = ""
    #: Contract identity (see :func:`repro.lint.contracts.macro_identity`);
    #: defaults to the circuit name.
    identity: str = ""

    @property
    def contract_identity(self) -> str:
        return self.identity or self.circuit.name


@dataclass(frozen=True)
class HierConnection:
    """One block-level net: a driving (instance, port) and its sinks."""

    net: str
    driver: Tuple[str, str]
    sinks: Tuple[Tuple[str, str], ...]
    wire_cap: float = 0.0
    external_load: float = 0.0


@dataclass
class HierBlock:
    """A block as the hierarchical analyzer sees it: instances + wiring.

    Ports not mentioned in any connection are block-level I/O.  Instances
    may share one :class:`Circuit` object (replicas) — they share one
    contract.
    """

    name: str
    instances: List[HierInstance]
    connections: List[HierConnection] = field(default_factory=list)

    def instance(self, name: str) -> HierInstance:
        for inst in self.instances:
            if inst.name == name:
                return inst
        raise KeyError(f"no instance {name!r} in block {self.name}")


def hier_from_block(design) -> HierBlock:
    """Adapt a :class:`repro.blocks.generator.BlockDesign` (duck-typed:
    ``macros`` with ``instance_name``/``circuit``, plus ``connections``)."""
    instances = []
    for macro in design.macros:
        for copy in range(macro.count):
            instances.append(HierInstance(
                name=macro.instance_name(copy),
                circuit=macro.circuit,
                topology=macro.topology,
                identity=macro_identity(macro.topology, macro.spec),
            ))
    connections = [
        HierConnection(
            net=conn.net,
            driver=tuple(conn.driver),
            sinks=tuple(tuple(s) for s in conn.sinks),
            wire_cap=conn.wire_cap,
            external_load=conn.external_load,
        )
        for conn in getattr(design, "connections", ())
    ]
    return HierBlock(design.name, instances, connections)


def flatten(block: HierBlock) -> Circuit:
    """The block as one flat :class:`Circuit` (the CTR505 reference).

    Connection nets are pre-created and bound through ``port_map``, so a
    connected output's characterization load is dropped in favor of the
    real composed load, and connected inputs lose their macro-level phase
    declarations — the flat netlist sees actual drivers, exactly what the
    contract composition must be audited against.
    """
    from ..netlist.nets import NetKind

    flat = Circuit(f"{block.name}_flat")
    flat.add_net("clk", NetKind.CLOCK)
    flat.clock = "clk"
    for conn in block.connections:
        net = flat.add_net(conn.net)
        net.wire_cap = conn.wire_cap
        net.external_load = conn.external_load
    port_maps: Dict[str, Dict[str, str]] = {}
    for conn in block.connections:
        inst, port = conn.driver
        port_maps.setdefault(inst, {})[port] = conn.net
        for inst, port in conn.sinks:
            port_maps.setdefault(inst, {})[port] = conn.net
    for inst in block.instances:
        sub = inst.circuit
        for clk_name in sub.clock_nets():
            if clk_name not in flat.nets:
                flat.add_net(clk_name, NetKind.CLOCK)
        pm = port_maps.get(inst.name, {})
        mapping = flat.merge(sub, prefix=inst.name, port_map=pm)
        for net_name in sub.primary_inputs:
            if net_name not in pm:
                flat.mark_input(mapping[net_name])
        for net_name in sub.primary_outputs:
            if net_name not in pm:
                flat.mark_output(
                    mapping[net_name],
                    external_load=sub.net(net_name).external_load,
                )
    return flat


# -- results ----------------------------------------------------------------


@dataclass
class HierStats:
    """Composition/incrementality accounting for one hier-lint run."""

    contracts_derived: int = 0
    contracts_reused: int = 0
    rules_executed: int = 0
    rules_replayed: int = 0
    verified_instances: int = 0
    wall_s: float = 0.0

    @property
    def invocations(self) -> int:
        return self.rules_executed + self.rules_replayed

    @property
    def hit_rate(self) -> float:
        return self.rules_replayed / self.invocations if self.invocations else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "contracts_derived": self.contracts_derived,
            "contracts_reused": self.contracts_reused,
            "rules_executed": self.rules_executed,
            "rules_replayed": self.rules_replayed,
            "verified_instances": self.verified_instances,
            "hit_rate": round(self.hit_rate, 6),
            "wall_s": round(self.wall_s, 6),
        }


@dataclass
class HierLintResult:
    """Everything one ``lint --hier`` run produced."""

    block: str
    #: Per-instance reports (contract findings, replayed or fresh) followed
    #: by the block-level composition report (CTR5xx findings).
    reports: List[LintReport]
    #: Instance name -> contract fingerprint used.
    fingerprints: Dict[str, str]
    stats: HierStats

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    @property
    def block_report(self) -> LintReport:
        return self.reports[-1]


# -- the analyzer -----------------------------------------------------------


def _emit(
    report: LintReport,
    rule_obj: Rule,
    message: str,
    *,
    net: Optional[str] = None,
    stage: Optional[str] = None,
    pin: Optional[str] = None,
    severity: Optional[Severity] = None,
) -> None:
    report.add(Diagnostic(
        rule_id=rule_obj.id,
        severity=severity or rule_obj.severity,
        message=message,
        location=Location(stage=stage, net=net, pin=pin),
    ))


def _port(contract: dict, port: str) -> Optional[dict]:
    return (contract.get("ports") or {}).get(port)


def lint_hier(
    block: HierBlock,
    library: Optional[ModelLibrary] = None,
    store=None,
    *,
    changed_only: bool = False,
    verify: int = 0,
    verify_seed: int = DEFAULT_VERIFY_SEED,
    options: Optional[Mapping[str, object]] = None,
    waivers: Sequence[Waiver] = (),
    rule_cache: Optional[RuleResultCache] = None,
) -> HierLintResult:
    """Compose interface contracts over ``block`` and run CTR501–505.

    Parameters
    ----------
    store:
        :class:`repro.cache.ContractStore` to resolve contracts from and
        record fresh derivations into; ``None`` uses a run-local in-memory
        store (replicas of one macro still share a single derivation).
    changed_only:
        Reuse any fingerprint-matching stored contract (the warm,
        incremental path).  Without it every contract is re-derived and
        the store refreshed — the cold pass.
    verify:
        CTR505 sample size: that many instances (deterministically chosen)
        are re-characterized and audited against the flattened block.
    rule_cache:
        Threaded into contract derivation so a macro edit re-runs only the
        rules whose declared facets changed.
    """
    from ..cache.contracts import ContractStore

    library = library or ModelLibrary()
    if store is None:
        store = ContractStore()
    stats = HierStats()
    opts_digest = options_digest(options)
    t_start = time.perf_counter()

    block_report = LintReport(subject=block.name)

    # -- resolve one contract per instance (shared by fingerprint) ---------
    contracts: Dict[str, dict] = {}       # instance name -> contract
    fingerprints: Dict[str, str] = {}     # instance name -> fingerprint
    fp_by_circuit: Dict[int, str] = {}    # id(circuit) -> fingerprint
    resolved: Dict[str, dict] = {}        # fingerprint -> run-local contract
    reports: List[LintReport] = []
    with trace.span("hier_contracts", block=block.name):
        for inst in block.instances:
            fp = fp_by_circuit.get(id(inst.circuit))
            if fp is None:
                fp = circuit_fingerprint(inst.circuit)
                fp_by_circuit[id(inst.circuit)] = fp
            fingerprints[inst.name] = fp
            contract = resolved.get(fp)
            if contract is None:
                contract = _resolve_contract(
                    inst, fp, store, block_report,
                    library=library,
                    changed_only=changed_only,
                    options=options,
                    opts_digest=opts_digest,
                    rule_cache=rule_cache,
                    stats=stats,
                )
                resolved[fp] = contract
            else:
                # Replica of an already-resolved circuit this run: its
                # findings are replays of the shared contract.
                stats.contracts_reused += 1
            contracts[inst.name] = contract
            report = LintReport(subject=f"{block.name}/{inst.name}")
            for diag in replay_findings(contract.get("findings", ())):
                report.add(diag)
            status = contract.pop("_derivation", None)
            if status is None:
                report.executed.extend(
                    (rule_id, 0.0, "replayed")
                    for rule_id in contract.get("rules", ())
                )
            else:
                report.executed.extend(status)
            report.diagnostics = apply_waivers(report.diagnostics, waivers)
            reports.append(report)

    # -- composition rules -------------------------------------------------
    violated_inputs: set = set()  # (instance, port) hand-offs that failed
    with trace.span("hier_compose", block=block.name):
        def _noise_checker(b, c, r, v):
            _check_noise_budget(b, c, r, v, options=options)

        for rule_obj, checker in (
            (CTR501, _check_phase_compat),
            (CTR502, _check_mono_handoff),
            (CTR503, _check_load_budget),
            (CTR506, _noise_checker),
        ):
            t_rule = time.perf_counter()
            checker(block, contracts, block_report, violated_inputs)
            wall = time.perf_counter() - t_rule
            block_report.executed.append((rule_obj.id, wall, "executed"))
            perf.record_run(
                "rule", rule_obj.id,
                wall_s=wall, extra={"circuit": block.name, "status": "executed"},
            )
        # CTR504 findings were emitted during contract resolution.
        block_report.executed.append(("CTR504", 0.0, "executed"))
        perf.record_run(
            "rule", "CTR504",
            wall_s=0.0, extra={"circuit": block.name, "status": "executed"},
        )

    if verify > 0:
        t_rule = time.perf_counter()
        with trace.span("hier_verify", block=block.name):
            _verify_contracts(
                block, contracts, block_report,
                library=library,
                sample=verify,
                seed=verify_seed,
                options=options,
                skip=violated_inputs,
                stats=stats,
            )
        wall = time.perf_counter() - t_rule
        block_report.executed.append(("CTR505", wall, "executed"))
        perf.record_run(
            "rule", "CTR505",
            wall_s=wall, extra={"circuit": block.name, "status": "executed"},
        )

    block_report.diagnostics = apply_waivers(
        block_report.diagnostics, waivers
    )
    reports.append(block_report)

    for report in reports:
        for _, _, status in report.executed:
            if status == "replayed":
                stats.rules_replayed += 1
            else:
                stats.rules_executed += 1
    stats.wall_s = time.perf_counter() - t_start

    metrics.counter("lint.hier_runs").inc()
    if perf.get_ledger() is not None:
        perf.record_run(
            "hier_lint",
            block.name,
            wall_s=stats.wall_s,
            cache=stats.as_dict(),
            extra={
                "instances": len(block.instances),
                "connections": len(block.connections),
                "errors": sum(len(r.errors) for r in reports),
                "warnings": sum(len(r.warnings) for r in reports),
            },
        )
    return HierLintResult(
        block=block.name,
        reports=reports,
        fingerprints=fingerprints,
        stats=stats,
    )


def _resolve_contract(
    inst: HierInstance,
    fp: str,
    store,
    block_report: LintReport,
    *,
    library: ModelLibrary,
    changed_only: bool,
    options: Optional[Mapping[str, object]],
    opts_digest: str,
    rule_cache: Optional[RuleResultCache],
    stats: HierStats,
) -> dict:
    """Fetch-or-derive ``inst``'s contract; emits CTR504 on staleness."""
    prior = store.get(fp)
    current = (
        prior is not None
        and prior.get("version") == CONTRACT_VERSION
        and prior.get("options_digest") == opts_digest
    )
    if current and changed_only:
        stats.contracts_reused += 1
        return dict(prior)
    if prior is not None and not current:
        _emit(
            block_report, CTR504,
            f"instance {inst.name}: stored contract for "
            f"{inst.contract_identity} has version/options "
            f"{prior.get('version')}/{prior.get('options_digest', '?')[:12]} "
            f"(current {CONTRACT_VERSION}/{opts_digest[:12]}); re-derived",
            stage=inst.name,
        )
    elif prior is None and changed_only:
        superseded = [
            entry for entry in store.for_identity(inst.contract_identity)
            if entry.get("fingerprint") != fp
        ]
        if superseded:
            _emit(
                block_report, CTR504,
                f"instance {inst.name}: macro {inst.contract_identity} was "
                f"edited after characterization (stored contract fingerprint "
                f"{superseded[-1].get('fingerprint', '?')[:12]} != netlist "
                f"{fp[:12]}); contract re-derived",
                stage=inst.name,
            )
        else:
            _emit(
                block_report, CTR504,
                f"instance {inst.name}: no contract for "
                f"{inst.contract_identity} in store; derived cold",
                stage=inst.name,
            )
    contract = derive_contract(
        inst.circuit,
        library,
        identity=inst.contract_identity,
        options=options,
        rule_cache=rule_cache,
    )
    store.put(contract)
    stats.contracts_derived += 1
    fresh = dict(contract)
    fresh["_derivation"] = [
        (rule_id, 0.0, "executed") for rule_id in contract.get("rules", ())
    ]
    return fresh


def _driver_port(
    block: HierBlock,
    contracts: Dict[str, dict],
    conn: HierConnection,
    report: LintReport,
    rule_obj: Rule,
) -> Optional[dict]:
    inst, port = conn.driver
    contract = contracts.get(inst)
    if contract is None:
        return None
    dport = _port(contract, port)
    if dport is None or dport.get("direction") != "out":
        _emit(
            report, rule_obj,
            f"net {conn.net}: driver {inst}.{port} is not an output port of "
            f"contract {contract.get('identity', '?')}",
            net=conn.net, stage=inst, pin=port,
            severity=Severity.ERROR,
        )
        return None
    return dport


def _check_phase_compat(
    block: HierBlock,
    contracts: Dict[str, dict],
    report: LintReport,
    violated: set,
) -> None:
    for conn in block.connections:
        dport = _driver_port(block, contracts, conn, report, CTR501)
        if dport is None:
            continue
        actual = dport.get("phase")
        for inst, port in conn.sinks:
            sport = _port(contracts.get(inst, {}), port)
            if sport is None or sport.get("direction") != "in":
                _emit(
                    report, CTR501,
                    f"net {conn.net}: sink {inst}.{port} is not an input "
                    f"port of its contract",
                    net=conn.net, stage=inst, pin=port,
                )
                violated.add((inst, port))
                continue
            declared = sport.get("declared_phase")
            if not phase_satisfies(actual, declared):
                assumed = _ASSUMED_PHASE.get(declared, "static")
                _emit(
                    report, CTR501,
                    f"net {conn.net}: {conn.driver[0]}.{conn.driver[1]} "
                    f"drives phase '{actual}' into {inst}.{port}, which was "
                    f"characterized against "
                    f"'{declared or 'undeclared (static)'}' "
                    f"(requires ⊑ '{assumed}')",
                    net=conn.net, stage=inst, pin=port,
                )
                violated.add((inst, port))


def _check_mono_handoff(
    block: HierBlock,
    contracts: Dict[str, dict],
    report: LintReport,
    violated: set,
) -> None:
    for conn in block.connections:
        dport = _driver_port(block, contracts, conn, report, CTR502)
        if dport is None:
            continue
        actual = dport.get("mono")
        for inst, port in conn.sinks:
            sport = _port(contracts.get(inst, {}), port)
            if sport is None or sport.get("direction") != "in":
                continue  # already reported by CTR501
            declared = sport.get("declared_phase")
            if not mono_satisfies(actual, declared):
                assumed = _ASSUMED_MONO.get(declared, "steady")
                _emit(
                    report, CTR502,
                    f"net {conn.net}: {conn.driver[0]}.{conn.driver[1]} "
                    f"hands off monotonicity '{actual}' to {inst}.{port}, "
                    f"characterized as "
                    f"'{declared or 'undeclared (steady)'}' "
                    f"(requires ⊑ '{assumed}')",
                    net=conn.net, stage=inst, pin=port,
                )
                violated.add((inst, port))


def _check_load_budget(
    block: HierBlock,
    contracts: Dict[str, dict],
    report: LintReport,
    violated: set,
) -> None:
    for conn in block.connections:
        dport = _driver_port(block, contracts, conn, report, CTR503)
        if dport is None:
            continue
        budget = dport.get("load_budget")
        if budget is None:
            continue
        demand = conn.wire_cap + conn.external_load
        unknown = []
        for inst, port in conn.sinks:
            sport = _port(contracts.get(inst, {}), port)
            cap_hi = (sport or {}).get("cap_hi")
            if cap_hi is None:
                unknown.append(f"{inst}.{port}")
            else:
                demand += cap_hi
        if demand > budget * (1.0 + _LOAD_TOL):
            suffix = (
                f" (plus unknown input caps of {', '.join(unknown)})"
                if unknown else ""
            )
            _emit(
                report, CTR503,
                f"net {conn.net}: composed load {demand:.2f} fF{suffix} "
                f"exceeds the {budget:.2f} fF drive budget "
                f"{conn.driver[0]}.{conn.driver[1]} was characterized "
                f"against",
                net=conn.net, stage=conn.driver[0], pin=conn.driver[1],
            )


def _check_noise_budget(
    block: HierBlock,
    contracts: Dict[str, dict],
    report: LintReport,
    violated: set,
    options: Optional[Mapping[str, object]] = None,
) -> None:
    """CTR506: compose driver noise injection against receiver margins.

    The boundary-net dip model mirrors NSA604: a fixed fraction of the
    connection's routed wire capacitance couples to aggressors, the
    driver's contracted ``noise_inject`` attack factor scales it, and the
    total net capacitance (wire + fixed load + sink input caps at their
    box minimum, the conservative choice for a dip) divides it.
    """
    frac = electrical_option(options, "electrical_coupling_fraction")
    for conn in block.connections:
        if conn.wire_cap <= 0:
            continue
        dport = _driver_port(block, contracts, conn, report, CTR506)
        if dport is None:
            continue
        inject = float(dport.get("noise_inject", 1.0))
        total = conn.wire_cap + conn.external_load
        margins = []
        for inst, port in conn.sinks:
            sport = _port(contracts.get(inst, {}), port)
            if sport is None or sport.get("direction") != "in":
                continue  # already reported by CTR501
            total += sport.get("cap_lo", 0.0)
            margin = sport.get("noise_margin")
            if margin is not None:
                margins.append((margin, inst, port))
        if not margins or total <= 0:
            continue
        dip = inject * frac * conn.wire_cap / total
        margin, inst, port = min(margins)
        if dip > margin * (1.0 + _LOAD_TOL):
            _emit(
                report, CTR506,
                f"net {conn.net}: boundary coupling dip {dip:.1%} of VDD "
                f"(attack {inject:.2f} from "
                f"{conn.driver[0]}.{conn.driver[1]}, "
                f"{frac:.0%} of {conn.wire_cap:g} fF route) exceeds the "
                f"{margin:.1%} noise margin {inst}.{port} exports",
                net=conn.net, stage=inst, pin=port,
            )
            violated.add((inst, port))


#: Contract fields compared verbatim by the CTR505 re-derivation check.
_VERIFY_FIELDS = ("ports", "funcspec", "slice_signature", "findings")


def _verify_contracts(
    block: HierBlock,
    contracts: Dict[str, dict],
    report: LintReport,
    *,
    library: ModelLibrary,
    sample: int,
    seed: int,
    options: Optional[Mapping[str, object]],
    skip: set,
    stats: HierStats,
) -> None:
    """CTR505: sampled re-derivation + flat lattice coverage audit."""
    rng = random.Random(seed)
    names = sorted(contracts)
    chosen = sorted(rng.sample(names, min(sample, len(names))))

    for name in chosen:
        inst = block.instance(name)
        fresh = derive_contract(
            inst.circuit, library,
            identity=inst.contract_identity, options=options,
        )
        stats.verified_instances += 1
        stored = contracts[name]
        for fld in _VERIFY_FIELDS:
            if fresh.get(fld) != stored.get(fld):
                _emit(
                    report, CTR505,
                    f"instance {name}: re-derived contract field '{fld}' "
                    f"disagrees with the stored contract "
                    f"({stored.get('identity', '?')}) — contract drift",
                    stage=name,
                )

    # Flat coverage audit: contract facts must cover the flat fixpoint.
    flat = flatten(block)
    phases = solve_phases(flat).values
    monos = solve_monotonicity(flat).values
    driven = {
        (conn.driver[0], conn.driver[1]): conn.net
        for conn in block.connections
    }
    for name in chosen:
        inst = block.instance(name)
        # An instance whose inputs violated CTR501/502 runs outside its
        # characterization envelope — its contract facts are not claimed
        # to cover flat there, and the hand-off error is already reported.
        if any(key[0] == name for key in skip):
            continue
        contract = contracts[name]
        for port, facts in (contract.get("ports") or {}).items():
            if facts.get("direction") != "out":
                continue
            flat_net = driven.get((name, port), f"{name}/{port}")
            if flat_net not in flat.nets:
                continue
            pv = phases.get(flat_net)
            flat_phase = pv.phase.value if pv is not None else None
            mono = monos.get(flat_net)
            flat_mono = mono.value if mono is not None else None
            if flat_phase is not None and not phase_le(
                flat_phase, facts.get("phase")
            ):
                _emit(
                    report, CTR505,
                    f"instance {name}: flat phase '{flat_phase}' of output "
                    f"{port} is not covered by contract fact "
                    f"'{facts.get('phase')}' — composition unsound",
                    stage=name, net=flat_net, pin=port,
                )
            if flat_mono is not None and not mono_le(
                flat_mono, facts.get("mono")
            ):
                _emit(
                    report, CTR505,
                    f"instance {name}: flat monotonicity '{flat_mono}' of "
                    f"output {port} is not covered by contract fact "
                    f"'{facts.get('mono')}' — composition unsound",
                    stage=name, net=flat_net, pin=port,
                )
