"""Quantitative electrical safety analysis (the NSA6xx rule group).

The post-sizing static-analysis pass behind ``repro lint --electrical``:
charge-sharing certificates (NSA601), keeper ratioed-fight and restore
proofs (NSA602), pass-chain level-degradation budgets (NSA603), and
coupling-interval noise screens (NSA604).  See DESIGN.md §12.
"""

from .model import (
    DEFAULT_OPTIONS,
    ChargeShareCert,
    CouplingCert,
    ElectricalScreen,
    KeeperCert,
    PassChainCert,
    charge_share_certificates,
    coupling_certificates,
    keeper_certificates,
    pass_chain_certificates,
    port_noise_margin,
    screen_electrical,
    worst_noise_margin,
)
from .mutate import NoiseMutant, noise_mutants

__all__ = [
    "DEFAULT_OPTIONS",
    "ChargeShareCert",
    "CouplingCert",
    "ElectricalScreen",
    "KeeperCert",
    "PassChainCert",
    "NoiseMutant",
    "charge_share_certificates",
    "coupling_certificates",
    "keeper_certificates",
    "pass_chain_certificates",
    "port_noise_margin",
    "screen_electrical",
    "worst_noise_margin",
    "noise_mutants",
]
