"""CI corpus driver: NSA6xx electrical safety over clean + mutant corpora.

``python -m repro.lint.electrical.corpus`` runs the electrical rule group
over (a) the full clean generator corpus (the same width grid the symbolic
verifier sweeps) and (b) the seeded noise-mutant corpus from
:mod:`repro.lint.electrical.mutate`.  The gate is asymmetric:

* the clean corpus must produce **zero NSA errors** (quantitative warnings
  on idealized keeper-less macros are reported but tolerated);
* every mutant must be flagged by **exactly its intended NSA rule** — the
  expected rule fires, and no other NSA rule cross-fires.

``--rule-cache FILE`` threads the PR 7 incremental engine through the
sweep; a warm rerun on an unchanged tree replays every finding
byte-identically.  ``--json-out FILE`` dumps the serialized findings and
cache stats so CI can assert replay fidelity across cold/warm passes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence

from ..diagnostics import LintReport, Severity
from ..incremental import serialize_diagnostic
from ..runner import lint_circuit
from ..symbolic.corpus import WIDTH_GRID, corpus_circuits
from ..waivers import load_waivers
from .mutate import noise_mutants

#: NSA rule IDs, for cross-fire checks.
_NSA_PREFIX = "NSA6"


def run_clean(
    grid=WIDTH_GRID, waivers=(), emit=print, rule_cache=None
) -> List[LintReport]:
    """Electrical lint over the clean generator corpus; returns reports."""
    reports: List[LintReport] = []
    for label, circuit in corpus_circuits(grid):
        start = time.perf_counter()
        report = lint_circuit(
            circuit, groups=("electrical",), waivers=waivers,
            cache=rule_cache,
        )
        elapsed = time.perf_counter() - start
        reports.append(report)
        status = "ok" if not report.errors else "FAIL"
        replayed = sum(1 for _, _, s in report.executed if s == "replayed")
        cached = f" cached={replayed}" if replayed else ""
        emit(
            f"{status:4s} clean  {label:42s} errors={len(report.errors)} "
            f"warnings={len(report.warnings)} ({elapsed:.2f}s){cached}"
        )
    return reports


def run_mutants(
    waivers=(), emit=print, rule_cache=None
) -> List[dict]:
    """Electrical lint over the seeded noise mutants.

    Returns one verdict dict per mutant:
    ``{"label", "expected", "fired", "flagged", "cross_fired", "report"}``.
    """
    verdicts: List[dict] = []
    for label, circuit, expected in noise_mutants():
        report = lint_circuit(
            circuit, groups=("electrical",), waivers=waivers,
            cache=rule_cache,
        )
        fired = sorted({
            d.rule_id for d in report.diagnostics
            if d.rule_id.startswith(_NSA_PREFIX) and not d.waived
        })
        flagged = expected in fired
        cross = [r for r in fired if r != expected]
        status = "ok" if flagged and not cross else "FAIL"
        emit(
            f"{status:4s} mutant {label:42s} expected={expected} "
            f"fired={','.join(fired) or '-'}"
        )
        for diag in report.diagnostics:
            if not diag.waived:
                emit(f"     {diag.format()}")
        verdicts.append({
            "label": label,
            "expected": expected,
            "fired": fired,
            "flagged": flagged,
            "cross_fired": cross,
            "report": report,
        })
    return verdicts


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.electrical.corpus",
        description=(
            "run the NSA6xx electrical-safety rules over the clean macro "
            "corpus and the seeded noise-mutant corpus"
        ),
        epilog=(
            "exit codes: 0 = clean corpus error-free and every mutant "
            "flagged by exactly its intended rule, 1 = gate failed"
        ),
    )
    parser.add_argument(
        "--sarif", metavar="FILE",
        help="write combined SARIF 2.1.0 log to FILE",
    )
    parser.add_argument(
        "--waivers", metavar="FILE", help="waiver/suppression file"
    )
    parser.add_argument(
        "--rule-cache", metavar="FILE", default=None,
        help=(
            "incremental rule-result cache (JSONL); unchanged circuits "
            "replay recorded findings byte-identically"
        ),
    )
    parser.add_argument(
        "--json-out", metavar="FILE", default=None,
        help=(
            "dump serialized findings + cache stats as JSON (CI uses this "
            "to assert cold/warm replay fidelity)"
        ),
    )
    args = parser.parse_args(argv)

    rule_cache = None
    if args.rule_cache:
        from ..incremental import RuleResultCache

        rule_cache = RuleResultCache(args.rule_cache)
    waivers = load_waivers(args.waivers) if args.waivers else ()

    clean_reports = run_clean(waivers=waivers, rule_cache=rule_cache)
    mutant_verdicts = run_mutants(waivers=waivers, rule_cache=rule_cache)

    if rule_cache is not None:
        rule_cache.flush()
        stats = rule_cache.stats
        print(
            f"rule cache: {stats.replayed}/{stats.invocations} replayed "
            f"({stats.hit_rate:.0%}), {stats.wall_saved_s:.2f}s saved"
        )

    all_reports = clean_reports + [v.pop("report") for v in mutant_verdicts]
    if args.sarif:
        from ..reporters import render_sarif

        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(render_sarif(all_reports))
        print(f"wrote SARIF log: {args.sarif}")

    if args.json_out:
        payload = {
            "findings": [
                serialize_diagnostic(d)
                for r in all_reports for d in r.diagnostics
            ],
            "clean_errors": sum(len(r.errors) for r in clean_reports),
            "clean_warnings": sum(len(r.warnings) for r in clean_reports),
            "mutants": mutant_verdicts,
            "rule_cache": (
                rule_cache.stats.as_dict() if rule_cache is not None else None
            ),
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote JSON summary: {args.json_out}")

    clean_errors = [
        d for r in clean_reports for d in r.diagnostics
        if d.severity is Severity.ERROR and not d.waived
    ]
    bad_mutants = [
        v for v in mutant_verdicts if not v["flagged"] or v["cross_fired"]
    ]
    n_warn = sum(len(r.warnings) for r in clean_reports)
    print(
        f"corpus: {len(clean_reports)} clean circuits "
        f"({len(clean_errors)} error(s), {n_warn} warning(s)), "
        f"{len(mutant_verdicts)} mutants "
        f"({len(mutant_verdicts) - len(bad_mutants)} correctly flagged)"
    )
    return 0 if not clean_errors and not bad_mutants else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
