"""Quantitative electrical-safety models behind the NSA6xx rules (DESIGN §12).

This is the first analysis layer that consumes the *output* of sizing: every
certificate below is a posynomial in the size labels, evaluated either at a
point sizing (the GP solution, or the size table's default environment) or
soundly over the whole sizing box via the same per-monomial bounds DFA303
uses (:func:`repro.lint.dataflow.interval.posy_box_bounds`).

Soundness direction
-------------------
Every certificate errs toward *over-reporting*:

* **Charge sharing (NSA601)** — the worst-case exposed capacitance turns on
  every pull-down switch that does not open a DC path to ground, in every
  leg simultaneously.  When legs share gate nets the joint state may not be
  reachable, so the dip is an upper bound; the witness is still a concrete
  switch assignment drawn from the SVC channel graph.
* **Interval evaluation** — the dip supremum pairs the exposed-cap upper
  bound with the node-cap lower bound (and vice versa for the infimum), so
  ``dip_lo > allowed`` proves *no* sizing in the box is safe, while
  ``dip_hi <= allowed`` proves every sizing is.
* **Coupling (NSA604)** — an unknown aggressor slope degrades to full
  (attack factor 1.0), never to zero.

A certificate may therefore flag a circuit that detailed simulation would
pass; it never passes a circuit the model can prove unsafe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ...models.gates import ModelLibrary
from ...netlist.circuit import Circuit
from ...netlist.nets import PinClass
from ...netlist.stages import VDD, VSS, Stage, StageKind
from ...posy import as_posynomial, posy_sum
from ...sim.timing import StaticTimingAnalyzer
from ..dataflow.interval import posy_box_bounds
from ..symbolic.switchlevel import ChannelGraph, Switch

_EPS = 1e-9

#: Natural-log-2 factor turning an Elmore RC sum into a 50% delay.
_LN2 = math.log(2.0)

#: Tunable thresholds, overridable through the lint ``options`` mapping (and
#: therefore hashed into the rule-cache options digest).
DEFAULT_OPTIONS: Dict[str, float] = {
    # Allowed charge-sharing / coupling dip on a keeper-less dynamic node,
    # as a fraction of VDD; a keeper of strength k credits (1 + 2k)×.
    "electrical_charge_ratio": 0.15,
    # Keeper-vs-pulldown contention: keeper drive as a fraction of the
    # evaluate pull-down drive above which the fight is flagged.
    "electrical_contention_limit": 0.5,
    # Worst-case leakage/noise attack on a held node, as a fraction of the
    # full-ON conductance of the parallel legs.
    "electrical_leak_fraction": 0.01,
    # Required keeper-restore overdrive (keeper current / attack current).
    "electrical_restore_limit": 1.0,
    # Elmore delay budget for an unrestored pass-transistor chain, ps.
    "electrical_pass_delay_limit": 45.0,
    # Fraction of a victim's routed wire capacitance assumed to couple to
    # neighbors instead of ground.
    "electrical_coupling_fraction": 0.3,
    # Aggressor edges slower than this, ps, attenuate coupling linearly.
    "electrical_slope_ref": 60.0,
    # Allowed dip on an unrestored pass/tri-state output, fraction of VDD.
    "electrical_pass_margin": 0.35,
    # Input slope assumed for the NSA604 slope-interval propagation, ps.
    "electrical_input_slope": 30.0,
}


def option(options: Optional[Mapping[str, object]], key: str) -> float:
    """One threshold: the lint options mapping, else the documented default."""
    if options and key in options:
        return float(options[key])  # type: ignore[arg-type]
    return DEFAULT_OPTIONS[key]


def box_bounds(circuit: Circuit):
    """Per-variable width bounds over the circuit's sizing box."""
    table = circuit.size_table

    def bounds(name: str) -> Tuple[float, float]:
        if name in table:
            var = table[name]
            return (var.lower, var.upper)
        return (1e-3, 1e6)

    return bounds


def point_environment(
    circuit: Circuit, env: Optional[Mapping[str, float]] = None
) -> Dict[str, float]:
    """The point sizing to certify: solved widths if given, else the size
    table's default (geometric-mean) environment."""
    point = dict(circuit.size_table.default_env())
    if env:
        point.update(env)
    return point


def _keeper_strength(stage: Stage) -> float:
    return float(stage.params.get("keeper", 0.0) or 0.0)


def _stack_r(per_width: float, stack: int, derate: float) -> float:
    """Series-stack resistance coefficient (mirrors the gate models)."""
    if stack <= 1:
        return per_width
    return per_width * stack * derate


# ---------------------------------------------------------------------------
# NSA601 — charge-sharing certificates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChargeShareCert:
    """Worst-case charge-sharing certificate for one dynamic node."""

    stage: str
    node: str
    keeper: float
    #: Allowed dip as a fraction of VDD (ratio, credited for the keeper).
    allowed: float
    #: Dip fraction at the point sizing.
    dip: float
    #: Infimum / supremum of the dip over the whole sizing box.
    dip_lo: float
    dip_hi: float
    #: Switch names driven ON in the witness state (flat expansion names).
    witness_on: Tuple[str, ...]
    #: Switch names that must stay OFF to block the DC path to ground.
    witness_off: Tuple[str, ...]
    #: Internal nets exposed to the dynamic node in the witness state.
    exposed: Tuple[str, ...]

    @property
    def margin(self) -> float:
        return self.allowed - self.dip

    @property
    def violated(self) -> bool:
        return self.dip > self.allowed + _EPS

    @property
    def provable(self) -> bool:
        """No sizing anywhere in the box meets the budget."""
        return self.dip_lo > self.allowed + _EPS

    @property
    def safe_over_box(self) -> bool:
        return self.dip_hi <= self.allowed + _EPS


def _worst_pass_state(
    graph: ChannelGraph, stage_name: str, out: str
) -> Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]:
    """Worst-case evaluate-phase switch state for one dynamic node.

    Grows the channel-connected region from the dynamic node through the
    stage's strong pull-down switches, turning ON every switch whose far
    terminal does not complete a DC path to ground and recording the
    blocking switches as the OFF part of the witness.  Nets held at ground
    during evaluate (VSS plus anything a clock-gated foot device clamps)
    bound the region.  Returns ``(on, off, exposed_nets)``.
    """
    pulldown: List[Switch] = [
        sw for sw in graph.switches
        if sw.stage == stage_name and sw.on_value and not sw.weak
    ]
    by_net: Dict[str, List[Switch]] = {}
    for sw in pulldown:
        by_net.setdefault(sw.a, []).append(sw)
        by_net.setdefault(sw.b, []).append(sw)

    grounded: Set[str] = {VSS}
    frontier = [VSS]
    while frontier:
        net = frontier.pop()
        for sw in by_net.get(net, ()):
            if sw.gate not in graph.clock_nets:
                continue
            far = sw.b if sw.a == net else sw.a
            if far not in grounded:
                grounded.add(far)
                frontier.append(far)

    on: List[str] = []
    off: Set[str] = set()
    seen: Set[str] = {out}
    frontier = [out]
    while frontier:
        net = frontier.pop()
        for sw in sorted(by_net.get(net, ()), key=lambda s: s.name):
            if sw.gate in graph.clock_nets:
                continue
            far = sw.b if sw.a == net else sw.a
            if far in grounded or far == VDD:
                off.add(sw.name)
            elif far not in seen:
                seen.add(far)
                on.append(sw.name)
                frontier.append(far)
    exposed = tuple(sorted(seen - {out}))
    return tuple(sorted(on)), tuple(sorted(off)), exposed


def charge_share_certificates(
    circuit: Circuit,
    library: Optional[ModelLibrary] = None,
    *,
    options: Optional[Mapping[str, object]] = None,
    env: Optional[Mapping[str, float]] = None,
    graph: Optional[ChannelGraph] = None,
) -> List[ChargeShareCert]:
    """One :class:`ChargeShareCert` per domino stage with exposed internal
    charge, worst state enumerated on the SVC channel graph."""
    dominos = [s for s in circuit.stages if s.kind is StageKind.DOMINO]
    if not dominos:
        return []
    library = library or ModelLibrary()
    tech = library.tech
    ratio = option(options, "electrical_charge_ratio")
    graph = graph or ChannelGraph(circuit)
    table = circuit.size_table
    unit = {label: 1.0 for label in table.names()}
    devices = {d.name: d for d in circuit.expand_transistors(unit)}
    analyzer = StaticTimingAnalyzer(circuit, library)
    bounds = box_bounds(circuit)
    point = point_environment(circuit, env)

    certs: List[ChargeShareCert] = []
    for stage in dominos:
        out = stage.output.name
        on, off, exposed = _worst_pass_state(graph, stage.name, out)
        if not exposed:
            continue
        # Every channel terminal parked on an exposed net contributes its
        # diffusion capacitance, symbolically in the size labels.
        parts = []
        for net in exposed:
            for idx in graph.channels.get(net, ()):
                dev = devices[graph.switches[idx].name]
                parts.append(
                    tech.c_diff * dev.factor
                    * as_posynomial(table.monomial(dev.label))
                )
        share = posy_sum(parts)
        node = analyzer.load_posynomial(out)
        s_pt = share.evaluate(point)
        n_pt = node.evaluate(point)
        s_lo, s_hi = posy_box_bounds(share, bounds)
        n_lo, n_hi = posy_box_bounds(node, bounds)
        keeper = _keeper_strength(stage)
        certs.append(ChargeShareCert(
            stage=stage.name,
            node=out,
            keeper=keeper,
            allowed=ratio * (1.0 + 2.0 * keeper),
            dip=s_pt / (n_pt + s_pt),
            dip_lo=s_lo / (n_hi + s_lo) if s_lo > 0 else 0.0,
            dip_hi=s_hi / (n_lo + s_hi) if s_hi > 0 else 0.0,
            witness_on=on,
            witness_off=off,
            exposed=exposed,
        ))
    return certs


# ---------------------------------------------------------------------------
# NSA602 — keeper ratioed-fight / restore-margin certificates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KeeperCert:
    """Keeper-vs-pulldown contention and restore-margin proof for one
    kept domino node."""

    stage: str
    node: str
    keeper: float
    #: Keeper drive as a fraction of the evaluate pull-down drive.
    contention: float
    contention_lo: float
    contention_hi: float
    contention_limit: float
    #: Keeper current over the worst-case leakage attack (>= limit holds).
    restore: float
    restore_lo: float
    restore_hi: float
    restore_limit: float

    @property
    def fight_violated(self) -> bool:
        return self.contention > self.contention_limit + _EPS

    @property
    def fight_provable(self) -> bool:
        return self.contention_lo > self.contention_limit + _EPS

    @property
    def restore_violated(self) -> bool:
        return self.restore < self.restore_limit - _EPS

    @property
    def restore_provable(self) -> bool:
        """No sizing anywhere in the box can hold the node."""
        return self.restore_hi < self.restore_limit - _EPS


def keeper_certificates(
    circuit: Circuit,
    library: Optional[ModelLibrary] = None,
    *,
    options: Optional[Mapping[str, object]] = None,
    env: Optional[Mapping[str, float]] = None,
) -> List[KeeperCert]:
    """One :class:`KeeperCert` per domino stage that declares a keeper."""
    library = library or ModelLibrary()
    tech = library.tech
    contention_limit = option(options, "electrical_contention_limit")
    leak = option(options, "electrical_leak_fraction")
    restore_limit = option(options, "electrical_restore_limit")
    table = circuit.size_table
    point = point_environment(circuit, env)
    bounds = box_bounds(circuit)

    certs: List[KeeperCert] = []
    for stage in circuit.stages:
        if stage.kind is not StageKind.DOMINO:
            continue
        keeper = _keeper_strength(stage)
        if keeper <= 0.0:
            continue
        leg_sizes = stage.leg_sizes or (1,)
        leg_series = max(leg_sizes)
        n_legs = len(leg_sizes)
        w_pre = as_posynomial(table.monomial(stage.label("precharge")))
        w_data = table.monomial(stage.label("data"))
        stack = _stack_r(tech.r_nmos, leg_series, tech.stack_derate)
        # Mirrors the DominoModel contention term: the half-latch keeper
        # fights the pull-down for the whole evaluate transition.
        contention = keeper * (stack / tech.r_pmos) * w_pre / w_data
        # Restore proof: keeper current vs the worst-case leakage/noise
        # attack of every leg leaking in parallel.
        restore = (
            (keeper * tech.r_nmos) / (tech.r_pmos * leak * n_legs)
        ) * w_pre / w_data
        c_pt = contention.evaluate(point)
        r_pt = restore.evaluate(point)
        c_lo, c_hi = posy_box_bounds(contention, bounds)
        r_lo, r_hi = posy_box_bounds(restore, bounds)
        certs.append(KeeperCert(
            stage=stage.name,
            node=stage.output.name,
            keeper=keeper,
            contention=c_pt,
            contention_lo=c_lo,
            contention_hi=c_hi,
            contention_limit=contention_limit,
            restore=r_pt,
            restore_lo=r_lo,
            restore_hi=r_hi,
            restore_limit=restore_limit,
        ))
    return certs


# ---------------------------------------------------------------------------
# NSA603 — pass-chain level-degradation certificates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PassChainCert:
    """Elmore RC certificate for one maximal unrestored pass chain."""

    stages: Tuple[str, ...]
    nets: Tuple[str, ...]
    #: Elmore 50% delay through the chain at the point sizing, ps.
    tau: float
    tau_lo: float
    tau_hi: float
    limit: float

    @property
    def margin(self) -> float:
        return self.limit - self.tau

    @property
    def violated(self) -> bool:
        return self.tau > self.limit + _EPS

    @property
    def provable(self) -> bool:
        return self.tau_lo > self.limit + _EPS


def _pass_chains(circuit: Circuit) -> List[List[Stage]]:
    """Maximal root-to-leaf runs of pass gates connected data-to-output."""
    def pass_driven(net_name: str) -> bool:
        return any(
            d.kind is StageKind.PASSGATE for d in circuit.drivers_of(net_name)
        )

    heads = [
        stage for stage in circuit.stages
        if stage.kind is StageKind.PASSGATE
        and not any(
            pass_driven(pin.net.name) for pin in stage.data_pins()
        )
    ]
    chains: List[List[Stage]] = []

    def extend(path: List[Stage]) -> None:
        successors = [
            consumer
            for consumer, pin in circuit.fanout_of(path[-1].output.name)
            if consumer.kind is StageKind.PASSGATE
            and pin.pin_class is PinClass.DATA
        ]
        if not successors:
            chains.append(path)
            return
        for nxt in successors:
            extend(path + [nxt])

    for head in sorted(heads, key=lambda s: s.name):
        extend([head])
    return chains


def pass_chain_certificates(
    circuit: Circuit,
    library: Optional[ModelLibrary] = None,
    *,
    options: Optional[Mapping[str, object]] = None,
    env: Optional[Mapping[str, float]] = None,
) -> List[PassChainCert]:
    """One :class:`PassChainCert` per maximal pass chain of length >= 2."""
    library = library or ModelLibrary()
    tech = library.tech
    limit = option(options, "electrical_pass_delay_limit")
    analyzer = StaticTimingAnalyzer(circuit, library)
    table = circuit.size_table
    point = point_environment(circuit, env)
    bounds = box_bounds(circuit)

    certs: List[PassChainCert] = []
    for chain in _pass_chains(circuit):
        if len(chain) < 2:
            continue
        resistances = []
        tau = as_posynomial(0.0)
        for stage in chain:
            resistances.append(
                as_posynomial(tech.pass_parallel * tech.r_nmos)
                / table.monomial(stage.label("pass"))
            )
            r_cum = posy_sum(resistances)
            tau = tau + r_cum * analyzer.load_posynomial(stage.output.name)
        tau = _LN2 * tau
        t_lo, t_hi = posy_box_bounds(tau, bounds)
        certs.append(PassChainCert(
            stages=tuple(s.name for s in chain),
            nets=tuple(s.output.name for s in chain),
            tau=tau.evaluate(point),
            tau_lo=t_lo,
            tau_hi=t_hi,
            limit=limit,
        ))
    return certs


# ---------------------------------------------------------------------------
# NSA604 — coupling-interval noise screens
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CouplingCert:
    """Aggressor/victim coupling estimate for one noise-sensitive net."""

    stage: str
    net: str
    family: str                     # "domino" | "pass"
    aggressor: Optional[str]        # fastest adjacent aggressor net
    #: Coupling attack factor in (0, 1]; 1.0 = full-speed aggressor (or
    #: unknown slope, degraded conservatively).
    attack: float
    dip: float
    dip_lo: float
    dip_hi: float
    allowed: float

    @property
    def margin(self) -> float:
        return self.allowed - self.dip

    @property
    def violated(self) -> bool:
        return self.dip > self.allowed + _EPS

    @property
    def provable(self) -> bool:
        return self.dip_lo > self.allowed + _EPS


def _slope_intervals(circuit: Circuit, library: ModelLibrary, input_slope: float):
    """Best-effort DFA303 slope intervals per net; empty on model gaps."""
    from ..dataflow.framework import solve_forward
    from ..dataflow.interval import IntervalAnalysis

    try:
        analysis = IntervalAnalysis(
            circuit, library, input_slope, box_bounds(circuit)
        )
        return solve_forward(circuit, analysis).values
    except Exception:
        return {}


def coupling_certificates(
    circuit: Circuit,
    library: Optional[ModelLibrary] = None,
    *,
    options: Optional[Mapping[str, object]] = None,
    env: Optional[Mapping[str, float]] = None,
) -> List[CouplingCert]:
    """Coupling certificates for noise-sensitive nets with routed wire cap.

    Victims are dynamic (domino) nodes and unrestored pass/tri-state merge
    nets; statically driven nets recover and are skipped.  A fraction of the
    victim's wire capacitance is assumed to couple to the fastest adjacent
    aggressor (nets sharing a consumer or feeding the victim's driver), with
    the attack attenuated linearly for aggressor edges slower than the
    reference slope — unknown slopes degrade to a full-strength attack.
    """
    library = library or ModelLibrary()
    frac = option(options, "electrical_coupling_fraction")
    slope_ref = option(options, "electrical_slope_ref")
    ratio = option(options, "electrical_charge_ratio")
    pass_margin = option(options, "electrical_pass_margin")

    victims: List[Tuple[Stage, str, float]] = []
    for stage in circuit.stages:
        if stage.kind is StageKind.DOMINO:
            allowed = ratio * (1.0 + 2.0 * _keeper_strength(stage))
            family = "domino"
        elif stage.kind in (StageKind.PASSGATE, StageKind.TRISTATE):
            allowed = pass_margin
            family = "pass"
        else:
            continue
        if circuit.net(stage.output.name).wire_cap <= 0.0:
            continue
        victims.append((stage, family, allowed))
    if not victims:
        return []

    timing = _slope_intervals(
        circuit, library, option(options, "electrical_input_slope")
    )
    analyzer = StaticTimingAnalyzer(circuit, library)
    clocks = set(circuit.clock_nets())
    point = point_environment(circuit, env)
    bounds = box_bounds(circuit)

    certs: List[CouplingCert] = []
    for stage, family, allowed in victims:
        out = stage.output.name
        neighbors: Set[str] = set()
        for consumer, _pin in circuit.fanout_of(out):
            neighbors.update(p.net.name for p in consumer.inputs)
        neighbors.update(p.net.name for p in stage.inputs)
        neighbors -= {out}
        neighbors -= clocks
        attack, aggressor = 1.0, None
        for net in sorted(neighbors):
            value = timing.get(net)
            if value is None or not value.reached or value.widened:
                continue
            slope_lo = max(value.slope_lo, _EPS)
            candidate = min(1.0, slope_ref / slope_lo)
            if aggressor is None or candidate > attack:
                attack, aggressor = candidate, net
        if aggressor is None:
            attack = 1.0  # no characterized aggressor: assume the worst

        couple = frac * circuit.net(out).wire_cap
        total = analyzer.load_posynomial(out)
        n_pt = total.evaluate(point)
        n_lo, n_hi = posy_box_bounds(total, bounds)
        certs.append(CouplingCert(
            stage=stage.name,
            net=out,
            family=family,
            aggressor=aggressor,
            attack=attack,
            dip=attack * couple / n_pt,
            dip_lo=attack * couple / n_hi,
            dip_hi=attack * couple / n_lo,
            allowed=allowed,
        ))
    return certs


# ---------------------------------------------------------------------------
# Advisor integration: the box screen and the point margin
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ElectricalScreen:
    """Sizing-box electrical pre-screen verdict (mirrors the DFA303 screen)."""

    circuit_name: str
    verdict: str                    # "provably-unsafe" | "inconclusive" | "safe"
    reasons: Tuple[str, ...]
    runtime_s: float

    @property
    def infeasible(self) -> bool:
        return self.verdict == "provably-unsafe"

    def summary(self) -> str:
        if self.infeasible:
            return (
                "electrical screen: provably noise-unsafe over the whole "
                f"sizing box — {'; '.join(self.reasons)}"
            )
        return f"electrical screen: {self.verdict}"


def screen_electrical(
    circuit: Circuit,
    library: Optional[ModelLibrary] = None,
    *,
    options: Optional[Mapping[str, object]] = None,
) -> ElectricalScreen:
    """Prove, where possible, that no sizing in the box is noise-safe.

    Used by the advisor to reject a topology before any GP is built when
    the charge-sharing, keeper-restore, or pass-chain certificates violate
    their budgets at the *optimistic* end of the sizing box.
    """
    import time

    t0 = time.perf_counter()
    reasons: List[str] = []
    all_safe = True
    for cert in charge_share_certificates(circuit, library, options=options):
        if cert.provable:
            reasons.append(
                f"{cert.node}: charge-sharing dip >= {cert.dip_lo:.1%} of VDD "
                f"everywhere in the box (budget {cert.allowed:.1%})"
            )
        if not cert.safe_over_box:
            all_safe = False
    for kc in keeper_certificates(circuit, library, options=options):
        if kc.restore_provable:
            reasons.append(
                f"{kc.node}: keeper restore <= {kc.restore_hi:.2f}x "
                f"everywhere in the box (needs {kc.restore_limit:.2f}x)"
            )
        if kc.fight_provable:
            reasons.append(
                f"{kc.node}: keeper contention >= {kc.contention_lo:.2f} "
                f"everywhere in the box (limit {kc.contention_limit:.2f})"
            )
        if kc.restore_violated or kc.fight_violated:
            all_safe = False
    for pc in pass_chain_certificates(circuit, library, options=options):
        if pc.provable:
            reasons.append(
                f"chain {'>'.join(pc.stages)}: Elmore delay >= "
                f"{pc.tau_lo:.0f} ps everywhere in the box "
                f"(budget {pc.limit:.0f} ps)"
            )
        if pc.violated:
            all_safe = False
    if reasons:
        verdict = "provably-unsafe"
    elif all_safe:
        verdict = "safe"
    else:
        verdict = "inconclusive"
    return ElectricalScreen(
        circuit_name=circuit.name,
        verdict=verdict,
        reasons=tuple(reasons),
        runtime_s=time.perf_counter() - t0,
    )


def worst_noise_margin(
    circuit: Circuit,
    library: Optional[ModelLibrary] = None,
    *,
    options: Optional[Mapping[str, object]] = None,
    env: Optional[Mapping[str, float]] = None,
) -> Optional[float]:
    """Smallest noise margin (fraction of VDD) at a point sizing.

    Spans the charge-sharing and coupling certificates — both measured as
    allowed-minus-actual dip.  ``None`` when the circuit has no
    noise-sensitive node.
    """
    margins = [
        cert.margin
        for cert in charge_share_certificates(
            circuit, library, options=options, env=env
        )
    ]
    margins.extend(
        cert.margin
        for cert in coupling_certificates(
            circuit, library, options=options, env=env
        )
    )
    if not margins:
        return None
    return min(margins)


#: Per-port noise facts for interface contracts (CTR506).
def port_noise_margin(
    circuit: Circuit,
    port: str,
    *,
    options: Optional[Mapping[str, object]] = None,
) -> Optional[float]:
    """Allowed dip (fraction of VDD) of the most sensitive stage an input
    port directly feeds; ``None`` when every consumer restores."""
    ratio = option(options, "electrical_charge_ratio")
    pass_margin = option(options, "electrical_pass_margin")
    margins: List[float] = []
    for consumer, pin in circuit.fanout_of(port):
        if pin.pin_class is PinClass.CLOCK:
            continue
        if consumer.kind is StageKind.DOMINO:
            margins.append(ratio * (1.0 + 2.0 * _keeper_strength(consumer)))
        elif consumer.kind in (StageKind.PASSGATE, StageKind.TRISTATE):
            margins.append(pass_margin)
    if not margins:
        return None
    return min(margins)
