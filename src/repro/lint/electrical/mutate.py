"""Seeded noise mutants for the NSA6xx electrical corpus.

Each builder returns a small circuit engineered to violate exactly one
NSA6xx budget — and *only* that one — so the corpus driver (and the tests)
can assert that every mutant is flagged by its intended rule with a
quantitative margin and witness, while no other NSA rule cross-fires.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from ...macros.base import MacroBuilder
from ...models.technology import GENERIC_180, Technology
from ...netlist.circuit import Circuit
from ...netlist.nets import PinClass


class NoiseMutant(NamedTuple):
    label: str
    circuit: Circuit
    expected_rule: str


def undersized_keeper(tech: Technology = GENERIC_180) -> Circuit:
    """A kept domino node whose keeper is far too weak to hold the node
    against the worst-case leakage attack -> NSA602 (restore margin).

    The single 1-deep leg leaves no internal diffusion, so NSA601 stays
    quiet; there is no pass chain and no routed wire cap.
    """
    builder = MacroBuilder("mut_undersized_keeper", tech)
    clk = builder.clock()
    a = builder.input("a")
    out = builder.output("out", load=20.0)
    builder.size("PC")
    builder.size("D")
    builder.size("E")
    stage = builder.domino(
        "d0", [[(a, PinClass.DATA)]], clk, out, "PC", "D", "E"
    )
    stage.params["keeper"] = 0.01
    return builder.done()


def overlong_pass_chain(
    tech: Technology = GENERIC_180, length: int = 5
) -> Circuit:
    """A run of pass gates with no restoring stage between the ranks ->
    NSA603 (Elmore budget).  No domino nodes, no routed wire cap."""
    builder = MacroBuilder("mut_overlong_pass_chain", tech)
    data = builder.input("a")
    for i in range(length):
        sel = builder.input(f"s{i}")
        nxt = (
            builder.output("out", load=20.0)
            if i == length - 1 else builder.wire(f"m{i}")
        )
        builder.size(f"P{i}")
        builder.size(f"SI{i}")
        builder.passgate(f"pg{i}", data, sel, nxt, f"P{i}", f"SI{i}")
        data = nxt
    return builder.done()


def floating_internal_node(tech: Technology = GENERIC_180) -> Circuit:
    """A deep keeper-less evaluate stack with its device widths pinned ->
    NSA601 at ERROR severity (the internal nodes float during evaluate and
    the dip exceeds the budget everywhere in the collapsed sizing box)."""
    builder = MacroBuilder("mut_floating_internal", tech)
    clk = builder.clock()
    nets = [builder.input(f"a{i}") for i in range(4)]
    out = builder.output("out", load=4.0)
    builder.size("PC", pinned=2.0)
    builder.size("D", pinned=8.0)
    builder.size("E", pinned=8.0)
    builder.domino(
        "d0", [[(net, PinClass.DATA) for net in nets]], clk, out,
        "PC", "D", "E",
    )
    return builder.done()


def coupled_victim(tech: Technology = GENERIC_180) -> Circuit:
    """A healthily-kept dynamic node on a long routed wire with wide fanout
    -> NSA604 (coupling dip past the keeper-credited margin).

    The 1-deep leg keeps NSA601 quiet and the 0.25 keeper passes the
    NSA602 restore/contention proofs; only the coupling screen fires.
    """
    builder = MacroBuilder("mut_coupled_victim", tech)
    clk = builder.clock()
    a = builder.input("a")
    out = builder.output("out", load=4.0)
    builder.size("PC")
    builder.size("D")
    builder.size("E")
    stage = builder.domino(
        "d0", [[(a, PinClass.DATA)]], clk, out, "PC", "D", "E"
    )
    stage.params["keeper"] = 0.25
    # Wide fanout off the victim wire (small receivers, long route).
    for i in range(2):
        q = builder.wire(f"q{i}")
        builder.size(f"FP{i}", pinned=0.6)
        builder.size(f"FN{i}", pinned=0.6)
        builder.inv(f"f{i}", out, q, f"FP{i}", f"FN{i}")
        builder.circuit.mark_output(f"q{i}")
    circuit = builder.done()
    circuit.net("out").wire_cap = 120.0
    return circuit


def noise_mutants(tech: Technology = GENERIC_180) -> Iterator[NoiseMutant]:
    """The seeded noise-mutant corpus, labeled with the intended rule."""
    yield NoiseMutant("undersized_keeper", undersized_keeper(tech), "NSA602")
    yield NoiseMutant(
        "overlong_pass_chain", overlong_pass_chain(tech), "NSA603"
    )
    yield NoiseMutant(
        "floating_internal_node", floating_internal_node(tech), "NSA601"
    )
    yield NoiseMutant("coupled_victim", coupled_victim(tech), "NSA604")
