"""NSA6xx — quantitative electrical noise-safety rules (DESIGN §12).

Every rule here consumes the *output* of sizing: findings carry a numeric
margin against a documented budget, a concrete witness, and (where the dip
is provably unavoidable anywhere in the sizing box) an upgraded ERROR
severity.  Regular columns collapse to one finding per isomorphism class —
NSA601/602/603 aggregate by stage shape, NSA604 by the SVC405 slice
certificate — so an N-bit datapath is analyzed once and replicated.

Facets: all four rules read the netlist topology *and* the size table
(widths, loads, wire caps), so a width-only edit re-runs them while
topology-only rules replay from the incremental cache, and vice versa.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..diagnostics import Severity
from ..registry import rule
from ..symbolic.isomorphism import slice_certificate
from .model import (
    ChargeShareCert,
    CouplingCert,
    charge_share_certificates,
    coupling_certificates,
    keeper_certificates,
    pass_chain_certificates,
)


def _witness(names: Tuple[str, ...], limit: int = 4) -> str:
    if not names:
        return "-"
    shown = ",".join(names[:limit])
    if len(names) > limit:
        shown += f",+{len(names) - limit}"
    return shown


@rule(
    "NSA601",
    "charge-sharing dip certificate",
    "electrical",
    Severity.WARNING,
    facets=("topology", "sizing"),
)
def nsa601_charge_share(ctx) -> None:
    """Worst-case charge-sharing dip on each dynamic node, enumerated on the
    switch-level channel graph: every pull-down switch that does not open a
    DC path to ground turns ON, exposing discharged internal diffusion to
    the dynamic node.  Flags nodes whose dip exceeds the (keeper-credited)
    budget; ERROR when the dip exceeds it everywhere in the sizing box."""
    certs = charge_share_certificates(ctx.circuit, options=ctx.options)
    flagged = [c for c in certs if c.violated]
    groups: Dict[tuple, List[ChargeShareCert]] = {}
    for cert in flagged:
        stage = ctx.circuit.stage(cert.stage)
        key = (
            tuple(stage.leg_sizes),
            stage.labels(),
            round(cert.dip, 6),
            round(cert.allowed, 6),
            cert.provable,
        )
        groups.setdefault(key, []).append(cert)
    for key in sorted(groups):
        members = groups[key]
        example = min(members, key=lambda c: c.stage)
        count = (
            f"{len(members)} nodes like {example.node}"
            if len(members) > 1 else example.node
        )
        scope = (
            "over the whole sizing box" if example.provable
            else "at the point sizing"
        )
        ctx.emit(
            f"worst-case charge-sharing dip {example.dip:.1%} of VDD exceeds "
            f"budget {example.allowed:.1%} {scope} "
            f"(margin {example.margin:+.1%}; witness OFF "
            f"{_witness(example.witness_off)}, "
            f"exposed {_witness(example.exposed)}): {count}",
            stage=example.stage,
            net=example.node,
            severity=Severity.ERROR if example.provable else Severity.WARNING,
        )


@rule(
    "NSA602",
    "keeper contention / restore margin",
    "electrical",
    Severity.WARNING,
    facets=("topology", "sizing"),
)
def nsa602_keeper_fight(ctx) -> None:
    """Ratioed-fight proofs for every kept domino node: the keeper must hold
    the node against the worst-case leakage attack (restore margin) without
    fighting the evaluate pull-down hard enough to stall it (contention).
    ERROR when the violation holds everywhere in the sizing box."""
    for cert in keeper_certificates(ctx.circuit, options=ctx.options):
        if cert.restore_violated:
            ctx.emit(
                f"keeper restore margin {cert.restore:.2f}x below required "
                f"{cert.restore_limit:.2f}x — keeper strength "
                f"{cert.keeper:g} cannot hold the node against the "
                f"worst-case leakage attack",
                stage=cert.stage,
                net=cert.node,
                severity=(
                    Severity.ERROR if cert.restore_provable
                    else Severity.WARNING
                ),
            )
        if cert.fight_violated:
            ctx.emit(
                f"keeper contention {cert.contention:.2f} exceeds limit "
                f"{cert.contention_limit:.2f} — the half-latch fights the "
                f"evaluate pull-down (keeper strength {cert.keeper:g})",
                stage=cert.stage,
                net=cert.node,
                severity=(
                    Severity.ERROR if cert.fight_provable
                    else Severity.WARNING
                ),
            )


@rule(
    "NSA603",
    "pass-chain level degradation",
    "electrical",
    Severity.WARNING,
    facets=("topology", "sizing"),
)
def nsa603_pass_chain(ctx) -> None:
    """Elmore RC certificate per maximal unrestored pass-transistor chain:
    delay grows quadratically with chain length, so long runs degrade the
    restored level past its noise budget.  ERROR when the budget is blown
    at the optimistic end of the sizing box."""
    for cert in pass_chain_certificates(ctx.circuit, options=ctx.options):
        if not cert.violated:
            continue
        ctx.emit(
            f"unrestored pass chain {'>'.join(cert.stages)}: Elmore delay "
            f"{cert.tau:.0f} ps exceeds budget {cert.limit:.0f} ps "
            f"(margin {cert.margin:+.0f} ps)",
            stage=cert.stages[0],
            net=cert.nets[-1],
            severity=Severity.ERROR if cert.provable else Severity.WARNING,
        )


@rule(
    "NSA604",
    "coupling noise screen",
    "electrical",
    Severity.WARNING,
    facets=("topology", "sizing", "phases"),
)
def nsa604_coupling(ctx) -> None:
    """Aggressor/victim coupling screen for noise-sensitive nets with routed
    wire capacitance: a fraction of the victim's wire cap couples to the
    fastest adjacent aggressor (slope from the DFA303 interval propagation;
    unknown slopes assume a full-strength attack).  Victims of the same
    SVC405 isomorphism class collapse to one finding."""
    certs = coupling_certificates(ctx.circuit, options=ctx.options)
    flagged = [c for c in certs if c.violated]
    if not flagged:
        return
    cone_hash = slice_certificate(ctx.circuit).cone_hash
    groups: Dict[tuple, List[CouplingCert]] = {}
    for cert in flagged:
        stage = ctx.circuit.stage(cert.stage)
        shape = cone_hash.get(
            cert.net, f"{stage.kind.value}:{'/'.join(stage.labels())}"
        )
        key = (shape, round(cert.dip, 6), round(cert.allowed, 6))
        groups.setdefault(key, []).append(cert)
    for key in sorted(groups):
        members = groups[key]
        example = min(members, key=lambda c: c.net)
        count = (
            f"{len(members)} nets like {example.net}"
            if len(members) > 1 else example.net
        )
        aggressor = example.aggressor or "uncharacterized aggressor"
        ctx.emit(
            f"coupling dip {example.dip:.1%} of VDD exceeds "
            f"{example.family} margin {example.allowed:.1%} "
            f"(margin {example.margin:+.1%}; attack {example.attack:.2f} "
            f"from {aggressor}): {count}",
            stage=example.stage,
            net=example.net,
            severity=Severity.ERROR if example.provable else Severity.WARNING,
        )
