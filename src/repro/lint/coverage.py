"""Constraint-coverage verification (``CST101``–``CST103``).

The Section-5.2 pruning passes take the 64-bit adder's >32,000 extracted
paths down to a couple hundred; the GP then only ever sees the survivors.
That is sound *iff* every dropped path really is dominated by a surviving
constrained path.  :func:`verify_pruning` re-checks the
:class:`~repro.sizing.pruning.PruningCertificate` a ``certify=True`` prune
run emits — with its own signature computations and fanout counts, sharing
no intermediate state with the passes it audits:

* **CST101** — an extracted path is neither surviving nor witnessed;
* **CST102** — a drop witness doesn't hold (the claimed FAST pin isn't a
  fast pin with a slow sibling, or the claimed survivor's signature
  differs);
* **CST103** — a fanout-dominance claim names a stage that is not actually
  fanout-maximal in its regularity group.

This module imports :mod:`repro.sizing.pruning` and must therefore be
imported lazily from anything reachable by ``repro.sizing.__init__``.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..netlist.circuit import Circuit
from ..netlist.nets import PinSpeed
from ..sizing.paths import StructuralPath
from ..sizing.pruning import PruningCertificate, _stage_key, path_signature
from .diagnostics import Diagnostic, LintReport, Location, Severity
from .registry import Rule, register

CST101 = register(Rule(
    "CST101", "uncovered extracted path", "coverage", Severity.ERROR,
    doc=(
        "An extracted path is neither in the surviving set nor claimed by "
        "any drop witness: the GP would never constrain it, so its timing "
        "is unchecked."
    ),
))

CST102 = register(Rule(
    "CST102", "invalid pruning witness", "coverage", Severity.ERROR,
    doc=(
        "A drop witness does not hold up to independent re-checking — the "
        "claimed fast pin is not FAST-with-a-SLOW-sibling, or the claimed "
        "survivor is absent or has a different path signature."
    ),
))

CST103 = register(Rule(
    "CST103", "invalid dominance claim", "coverage", Severity.ERROR,
    doc=(
        "The fanout-dominance pass claimed a stage as its regularity "
        "group's maximum-fanout member, but recounting fanouts disagrees."
    ),
))


def _describe(path: StructuralPath) -> str:
    return (
        f"path {path.start_net} -> {path.end_net} "
        f"({len(path.steps)} stages)"
    )


def verify_pruning(
    circuit: Circuit,
    raw_paths: Sequence[StructuralPath],
    certificate: PruningCertificate,
    max_findings: int = 50,
) -> LintReport:
    """Independently re-verify a pruning certificate against the raw paths.

    ``max_findings`` caps the per-rule diagnostic count (a broken
    certificate on a 100k-path corpus would otherwise drown the report);
    the summary diagnostic states how many more were suppressed.
    """
    report = LintReport(subject=f"{circuit.name}:pruning")
    suppressed: Dict[str, int] = {}

    def emit(rule_obj: Rule, message: str, **loc) -> None:
        if len(report.by_rule(rule_obj.id)) >= max_findings:
            suppressed[rule_obj.id] = suppressed.get(rule_obj.id, 0) + 1
            return
        report.add(Diagnostic(
            rule_id=rule_obj.id,
            severity=rule_obj.severity,
            message=message,
            location=Location(**loc),
        ))

    surviving = set(certificate.surviving)
    surviving_sigs = {path_signature(circuit, p) for p in surviving}

    # CST103 — recount fanouts for every dominance claim.
    groups: Dict[Tuple, list] = {}
    for stage in circuit.stages:
        groups.setdefault(_stage_key(circuit, stage), []).append(stage)
    for key, claimed_name in certificate.dominant.items():
        members = groups.get(key)
        if members is None or claimed_name not in {s.name for s in members}:
            emit(
                CST103,
                f"dominance claim names {claimed_name}, which is not in "
                "the claimed regularity group",
                stage=claimed_name,
            )
            continue
        fanouts = {
            s.name: len(circuit.fanout_of(s.output.name)) for s in members
        }
        if fanouts[claimed_name] < max(fanouts.values()):
            emit(
                CST103,
                f"stage {claimed_name} claimed dominant with fanout "
                f"{fanouts[claimed_name]}, but its group reaches "
                f"{max(fanouts.values())}",
                stage=claimed_name,
            )

    # CST101/CST102 — account for every raw path.
    for path in raw_paths:
        if path in surviving:
            continue
        witness = certificate.dropped.get(path)
        if witness is None:
            emit(
                CST101,
                f"{_describe(path)} is neither surviving nor witnessed",
                net=path.start_net,
            )
            continue
        if witness.reason == "precedence":
            if not _precedence_holds(circuit, path, witness):
                emit(
                    CST102,
                    f"precedence witness ({witness.stage}, {witness.pin}) "
                    f"does not justify dropping {_describe(path)}",
                    stage=witness.stage,
                    pin=witness.pin,
                )
        else:
            survivor = witness.survivor
            if survivor is None or survivor not in surviving:
                emit(
                    CST102,
                    f"{witness.reason} witness for {_describe(path)} names "
                    "no surviving path",
                    net=path.start_net,
                )
            elif (
                path_signature(circuit, survivor)
                != path_signature(circuit, path)
            ):
                emit(
                    CST102,
                    f"{witness.reason} witness for {_describe(path)} has a "
                    "different path signature — the survivor does not "
                    "constrain the same stage/pin sequence",
                    net=path.start_net,
                )
            elif path_signature(circuit, path) not in surviving_sigs:
                emit(  # pragma: no cover - unreachable if survivor checked
                    CST101,
                    f"{_describe(path)} signature not covered",
                    net=path.start_net,
                )

    for rule_id, count in sorted(suppressed.items()):
        report.add(Diagnostic(
            rule_id=rule_id,
            severity=Severity.ERROR,
            message=f"... and {count} more {rule_id} finding(s) suppressed",
        ))
    return report


def _precedence_holds(circuit, path, witness) -> bool:
    """The claimed step exists on the path, enters through a FAST pin, and
    the stage has a SLOW pin of the same class whose path subsumes it."""
    if not any(
        s.stage_name == witness.stage and s.pin_name == witness.pin
        for s in path.steps
    ):
        return False
    try:
        stage = circuit.stage(witness.stage)
        pin = stage.pin(witness.pin)
    except (KeyError, ValueError):
        return False
    if pin.speed is not PinSpeed.FAST:
        return False
    return any(
        p.speed is PinSpeed.SLOW and p.pin_class is pin.pin_class
        for p in stage.inputs
    )
