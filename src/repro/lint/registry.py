"""The rule registry.

Rules are registered at import time with the :func:`rule` decorator and
looked up by stable ID.  IDs follow the flake8 convention of a family prefix
plus a number that never changes meaning once released:

* ``ERC0xx`` — structural electrical rule checks (netlist hygiene);
* ``ERC1xx`` — circuit-family semantics (Section 4: domino, pass, tristate);
* ``DFA3xx`` — whole-circuit dataflow analyses (:mod:`repro.lint.dataflow`);
* ``SVC4xx`` — switch-level symbolic verification (:mod:`repro.lint.symbolic`);
* ``CST1xx`` — constraint-coverage / pruning-certificate verification;
* ``GP2xx``  — geometric-program pre-solve checks;
* ``CTR5xx`` — hierarchical interface-contract composition
  (:mod:`repro.lint.hier`);
* ``OPT7xx`` — post-solve solution-certificate analysis
  (:mod:`repro.lint.solution`).

Circuit rules (groups ``structural`` and ``family``) are callables of one
:class:`~repro.lint.runner.LintContext`; coverage and GP rules are driven by
their dedicated analyzers (:mod:`repro.lint.coverage`,
:mod:`repro.lint.rules_gp`) and registered here for identity, severity, and
``--list-rules`` only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..netlist.fingerprint import FACET_NAMES
from .diagnostics import Severity

#: Known rule groups, in report order.
GROUPS = (
    "structural", "family", "dataflow", "symbolic", "coverage", "gp",
    "contracts", "electrical", "solution",
)


@dataclass(frozen=True)
class Rule:
    """One registered rule: identity + default severity + checker.

    ``facets`` declares which circuit facets
    (:data:`repro.netlist.fingerprint.FACET_NAMES`) the checker reads —
    the invalidation contract of the incremental engine
    (:mod:`repro.lint.incremental`).  Declarations must be supersets of
    what the checker actually inspects; the default (all facets) is always
    sound and merely forgoes incrementality.
    """

    id: str
    title: str
    group: str
    severity: Severity
    doc: str = ""
    check: Optional[Callable] = None
    facets: Tuple[str, ...] = FACET_NAMES


_REGISTRY: Dict[str, Rule] = {}


def register(rule_obj: Rule) -> Rule:
    if rule_obj.group not in GROUPS:
        raise ValueError(f"unknown rule group {rule_obj.group!r}")
    if rule_obj.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_obj.id}")
    _REGISTRY[rule_obj.id] = rule_obj
    return rule_obj


def rule(
    rule_id: str,
    title: str,
    group: str,
    severity: Severity,
    facets: Tuple[str, ...] = FACET_NAMES,
) -> Callable[[Callable], Callable]:
    """Decorator: register ``func`` as the checker for ``rule_id``.

    The function's docstring becomes the rule's long description.
    ``facets`` is the rule's incremental-invalidation contract (default:
    every facet, i.e. re-run on any circuit change).
    """

    def decorate(func: Callable) -> Callable:
        register(
            Rule(
                id=rule_id,
                title=title,
                group=group,
                severity=severity,
                doc=(func.__doc__ or "").strip(),
                check=func,
                facets=facets,
            )
        )
        return func

    return decorate


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"no rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by ID."""
    _load_builtin_rules()
    return sorted(_REGISTRY.values(), key=lambda r: r.id)


def rules_in_groups(groups: Iterable[str]) -> List[Rule]:
    wanted = set(groups)
    unknown = wanted - set(GROUPS)
    if unknown:
        raise ValueError(f"unknown rule group(s): {sorted(unknown)}")
    return [r for r in all_rules() if r.group in wanted]


def _load_builtin_rules() -> None:
    """Import the built-in rule modules so their ``@rule`` decorators run.

    ``coverage`` imports ``repro.sizing.pruning`` and is therefore loaded
    last and forgivingly at first (the netlist package may still be
    mid-initialization when the structural group is first needed).
    """
    from . import hier, rules_family, rules_structural  # noqa: F401
    from .dataflow import monotone, phase  # noqa: F401
    from .symbolic import rules  # noqa: F401

    try:
        from . import coverage, rules_gp  # noqa: F401
        from .dataflow import interval  # noqa: F401
        from .electrical import rules as electrical_rules  # noqa: F401
        from .solution import rules as solution_rules  # noqa: F401
    except ImportError:  # pragma: no cover - partial-init during bootstrap
        pass
