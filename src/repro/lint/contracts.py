"""Macro interface contracts (the summaries behind ``repro lint --hier``).

A contract condenses everything the block-level composition rules
(CTR501–505, :mod:`repro.lint.hier`) need to know about one macro into a
machine-checkable, content-addressed artifact:

* **per-port clock-phase facts** — the DFA301 fixpoint value of each
  primary output and the declared phase of each primary input;
* **per-port monotonicity class** — the DFA302 fixpoint per output;
* **boundary load/drive** — the input-capacitance interval each port
  presents over the macro's sizing box, the assumed output load each
  output was characterized against, and the DFA303 delay/slope intervals
  at each output;
* **funcspec equivalence status** — whether SVC401 proved/tested the
  macro against its golden spec;
* **slice-isomorphism signature** — the SVC405 per-output canonical cone
  hashes;
* **the macro's own flat lint findings**, serialized, so a hierarchical
  run replays them without re-executing a single macro-level rule.

The artifact is keyed by the v2 circuit fingerprint
(:func:`repro.netlist.fingerprint.circuit_fingerprint`) and stored through
:class:`repro.cache.ContractStore`: a contract is valid for exactly the
netlist it summarizes — reuse needs no timestamps, only a fingerprint
match.  ``python -m repro.lint.contracts --store FILE`` characterizes the
whole macro registry (CI's cold pass).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Mapping, Optional, Sequence, Tuple

from .._version import __version__
from ..models.gates import ModelLibrary
from ..netlist.circuit import Circuit
from ..netlist.fingerprint import circuit_fingerprint, facet_fingerprints
from ..obs import trace
from ..obs.log import get_logger
from .dataflow.framework import solve_forward
from .dataflow.interval import IntervalAnalysis, posy_box_bounds
from .dataflow.monotone import solve_monotonicity
from .dataflow.phase import solve_phases
from .electrical.model import option as electrical_option
from .electrical.model import port_noise_margin
from .incremental import (
    RuleResultCache,
    options_digest,
    serialize_diagnostic,
)
from .runner import ALL_CIRCUIT_GROUPS, CIRCUIT_GROUPS, lint_circuit
from .symbolic.extract import (
    DEFAULT_EXACT_BUDGET,
    DEFAULT_SAMPLES,
    DEFAULT_SEED,
    extract_cached,
)
from .symbolic.isomorphism import slice_certificate

log = get_logger(__name__)

CONTRACT_FORMAT = "smart-interface-contract/1"

#: Bump when the contract payload below changes shape; CTR504 reports a
#: version mismatch as a stale contract rather than trusting old facts.
#: v2 added the per-port noise facts (``noise_margin`` on inputs,
#: ``noise_inject`` on outputs) that CTR506 composes at block boundaries.
CONTRACT_VERSION = 2

#: Designer input slope assumed when characterizing boundary intervals, ps.
DEFAULT_INPUT_SLOPE = 30.0


def default_contract_options() -> dict:
    """The symbolic options the registry characterizer uses by default.

    Consumers that want to *reuse* registry-built contracts (``repro lint
    --hier``) must derive under the same options, or CTR504 will flag an
    options-digest mismatch and force a re-derivation.
    """
    return {
        "symbolic_exact_budget": DEFAULT_EXACT_BUDGET,
        "symbolic_samples": DEFAULT_SAMPLES,
        "symbolic_seed": DEFAULT_SEED,
    }


def macro_identity(topology: str, spec) -> str:
    """The stable identity a contract claims, independent of sizing edits.

    Used by CTR504: when an instantiated circuit's fingerprint misses the
    store but a contract with the same identity exists, the macro was
    edited after characterization (stale), as opposed to never
    characterized at all.
    """
    parts = [topology, f"w{spec.width}", f"L{spec.output_load:g}"]
    params = getattr(spec, "params", None) or ()
    pairs = params.items() if isinstance(params, Mapping) else params
    for key, value in sorted(pairs):
        parts.append(f"{key}={value!r}")
    return "|".join(parts)


def _box_bounds(circuit: Circuit):
    table = circuit.size_table

    def bounds(name: str) -> Tuple[float, float]:
        if name in table:
            var = table[name]
            return (var.lower, var.upper)
        return (1e-3, 1e6)

    return bounds


def derive_contract(
    circuit: Circuit,
    library: Optional[ModelLibrary] = None,
    *,
    identity: Optional[str] = None,
    groups: Optional[Sequence[str]] = None,
    options: Optional[Mapping[str, object]] = None,
    input_slope: float = DEFAULT_INPUT_SLOPE,
    rule_cache: Optional[RuleResultCache] = None,
) -> dict:
    """Characterize one macro circuit into a serialized interface contract.

    ``groups`` defaults to every circuit group — including ``symbolic``
    when a functional spec is attached (matching the advisor gate), so the
    contract's findings are the full flat-lint verdict for the macro.
    ``rule_cache`` threads the incremental engine through the inner lint
    run: re-deriving after a facet-local edit re-executes only the rules
    whose declared facets changed.
    """
    library = library or ModelLibrary()
    if groups is None:
        groups = (
            ALL_CIRCUIT_GROUPS
            if getattr(circuit, "functional_spec", None) is not None
            else CIRCUIT_GROUPS
        )
    t_start = time.perf_counter()
    with trace.span("derive_contract", circuit=circuit.name):
        report = lint_circuit(
            circuit, groups=groups, options=options, cache=rule_cache
        )
        phases = solve_phases(circuit).values
        monos = solve_monotonicity(circuit).values
        analyzer = None
        timing = {}
        try:
            analysis = IntervalAnalysis(
                circuit, library, input_slope, _box_bounds(circuit)
            )
            analyzer = analysis._analyzer
            timing = solve_forward(circuit, analysis).values
        except Exception as exc:  # timing models absent for exotic stages
            log.warning(
                "contract %s: interval characterization skipped (%s)",
                circuit.name, exc,
            )

        clocks = set(circuit.clock_nets())
        ports = {}
        for name in sorted(circuit.primary_inputs):
            if name in clocks:
                continue
            port = {
                "direction": "in",
                "declared_phase": circuit.input_phase(name),
            }
            if analyzer is not None:
                try:
                    cap_lo, cap_hi = posy_box_bounds(
                        analyzer.load_posynomial(name), _box_bounds(circuit)
                    )
                    port["cap_lo"] = round(cap_lo, 9)
                    port["cap_hi"] = round(cap_hi, 9)
                except Exception:
                    pass
            try:
                margin = port_noise_margin(circuit, name, options=options)
            except Exception:
                margin = None
            if margin is not None:
                port["noise_margin"] = round(margin, 6)
            ports[name] = port
        for name in sorted(circuit.primary_outputs):
            pv = phases.get(name)
            mono = monos.get(name)
            port = {
                "direction": "out",
                "phase": pv.phase.value if pv is not None else None,
                "phase_depth": pv.depth if pv is not None else 0,
                "mono": mono.value if mono is not None else None,
                "load_budget": circuit.net(name).external_load,
            }
            value = timing.get(name)
            if value is not None and value.reached and not value.widened:
                port["arr_lo"] = round(value.arr_lo, 6)
                port["arr_hi"] = round(value.arr_hi, 6)
                port["slope_lo"] = round(value.slope_lo, 6)
                port["slope_hi"] = round(value.slope_hi, 6)
            slope_ref = electrical_option(options, "electrical_slope_ref")
            slope_lo = port.get("slope_lo")
            inject = (
                min(1.0, slope_ref / slope_lo)
                if slope_lo and slope_lo > 0 else 1.0
            )
            port["noise_inject"] = round(inject, 6)
            ports[name] = port

        spec = getattr(circuit, "functional_spec", None)
        if spec is None:
            funcspec = {"status": "none"}
        elif "symbolic" not in groups:
            funcspec = {"status": "unchecked", "golden": spec.golden}
        else:
            opts = options or {}
            extraction = extract_cached(
                circuit,
                spec,
                exact_budget=int(
                    opts.get("symbolic_exact_budget", DEFAULT_EXACT_BUDGET)
                ),
                samples=int(opts.get("symbolic_samples", DEFAULT_SAMPLES)),
                seed=int(opts.get("symbolic_seed", DEFAULT_SEED)),
            )
            if extraction.mismatches or extraction.undefined:
                status = "failed"
            else:
                status = extraction.verdict  # "proved" | "tested"
            funcspec = {
                "status": status,
                "golden": spec.golden,
                "assignments": extraction.n_assignments,
            }

        cert = slice_certificate(circuit)

    return {
        "format": CONTRACT_FORMAT,
        "version": CONTRACT_VERSION,
        "fingerprint": circuit_fingerprint(circuit),
        "facets": facet_fingerprints(circuit),
        "identity": identity or circuit.name,
        "name": circuit.name,
        "clock": circuit.clock,
        "ports": ports,
        "funcspec": funcspec,
        "slice_signature": dict(sorted(cert.cone_hash.items())),
        "findings": [serialize_diagnostic(d) for d in report.diagnostics],
        "rules": [rule_id for rule_id, _, _ in report.executed],
        "groups": sorted(groups),
        "options_digest": options_digest(options),
        "tool_version": __version__,
        "wall_s": round(time.perf_counter() - t_start, 6),
    }


def build_registry_contracts(
    store,
    library: Optional[ModelLibrary] = None,
    *,
    grid: Optional[Mapping[str, Sequence]] = None,
    options: Optional[Mapping[str, object]] = None,
    changed_only: bool = False,
    macro: Optional[str] = None,
) -> dict:
    """Characterize the macro registry into ``store``.

    Iterates the same topology × width grid as the symbolic corpus; with
    ``changed_only`` circuits whose fingerprints already have a matching
    contract (same version and options) are skipped.  Returns summary
    stats: ``{"derived": n, "reused": n, "wall_s": s}``.
    """
    from .symbolic.corpus import WIDTH_GRID, corpus_circuits

    library = library or ModelLibrary()
    opts_digest = options_digest(options)
    rule_cache = RuleResultCache()
    derived = reused = 0
    t_start = time.perf_counter()
    for label, circuit in corpus_circuits(grid or WIDTH_GRID):
        if macro and not label.startswith(macro):
            continue
        if changed_only:
            prior = store.get(circuit_fingerprint(circuit))
            if (
                prior is not None
                and prior.get("version") == CONTRACT_VERSION
                and prior.get("options_digest") == opts_digest
            ):
                reused += 1
                continue
        contract = derive_contract(
            circuit,
            library,
            identity=label,
            options=options,
            rule_cache=rule_cache,
        )
        store.put(contract)
        derived += 1
    store.flush()
    return {
        "derived": derived,
        "reused": reused,
        "rule_cache": rule_cache.stats.as_dict(),
        "wall_s": round(time.perf_counter() - t_start, 6),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: characterize the macro registry into a contract store."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.contracts",
        description="Build interface contracts for the macro registry.",
    )
    parser.add_argument("--store", required=True, help="contract JSONL file")
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="skip circuits whose contracts are already current",
    )
    parser.add_argument("--macro", help="only topologies with this prefix")
    parser.add_argument(
        "--exact-budget", type=int, default=DEFAULT_EXACT_BUDGET,
        help="symbolic exact-enumeration input budget",
    )
    parser.add_argument(
        "--samples", type=int, default=DEFAULT_SAMPLES,
        help="symbolic samples beyond the exact budget",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    args = parser.parse_args(argv)

    from ..cache.contracts import ContractStore

    store = ContractStore(args.store)
    options = {
        "symbolic_exact_budget": args.exact_budget,
        "symbolic_samples": args.samples,
        "symbolic_seed": args.seed,
    }
    stats = build_registry_contracts(
        store,
        options=options,
        changed_only=args.changed_only,
        macro=args.macro,
    )
    print(
        f"contracts: {stats['derived']} derived, {stats['reused']} reused, "
        f"{len(store)} in store ({stats['wall_s']:.1f}s)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
