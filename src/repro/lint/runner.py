"""Circuit lint driver: runs the structural/family rule groups.

With a :class:`~repro.lint.incremental.RuleResultCache` attached, the
driver becomes incremental: before executing a rule it content-addresses
the rule's declared input facets (plus the options mapping) and replays
the recorded diagnostics on a hit — see :mod:`repro.lint.incremental` for
the soundness argument.  Every execution (fresh or replayed) is recorded
per rule in :attr:`LintReport.executed`, and — when a run ledger is
installed — as one ``kind="rule"`` ledger record each, so ``perf report``
can attribute wall time to individual rules.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit
from ..netlist.fingerprint import facet_fingerprints
from ..obs import metrics, perf, trace
from ..obs.log import get_logger
from .diagnostics import Diagnostic, LintReport, Location, Severity
from .incremental import RuleResultCache
from .registry import Rule, rules_in_groups
from .waivers import Waiver, apply_waivers

log = get_logger(__name__)

#: Rule groups that run on a :class:`Circuit` by default.
CIRCUIT_GROUPS = ("structural", "family", "dataflow")

#: All circuit-level groups.  ``symbolic`` (the SVC4xx switch-level
#: verifier), ``electrical`` (the NSA6xx noise-safety certificates) and
#: ``solution`` (the OPT7xx post-solve certificate audits) are opt-in:
#: the first enumerates the input space, the latter two consume the
#: sizing output and are only meaningful post-sizing.  The ``contracts``
#: group (CTR5xx) is block-level and driven by :mod:`repro.lint.hier`,
#: never by this per-circuit driver.
ALL_CIRCUIT_GROUPS = CIRCUIT_GROUPS + ("symbolic", "electrical", "solution")


class LintContext:
    """What one rule's checker sees: the circuit plus an ``emit`` sink."""

    def __init__(
        self,
        circuit: Circuit,
        rule_obj: Rule,
        report: LintReport,
        options: Optional[Mapping[str, object]] = None,
    ):
        self.circuit = circuit
        self.rule = rule_obj
        #: Free-form per-run tuning knobs (e.g. the symbolic group's
        #: enumeration budgets); rules read them with ``.get`` + defaults.
        self.options: Mapping[str, object] = options or {}
        self._report = report

    def emit(
        self,
        message: str,
        stage: Optional[str] = None,
        net: Optional[str] = None,
        pin: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """Record one finding for the rule being run.

        ``severity`` defaults to the rule's registered severity; rules that
        grade findings (e.g. deep vs. very deep pass chains) may override.
        """
        diag = Diagnostic(
            rule_id=self.rule.id,
            severity=severity or self.rule.severity,
            message=message,
            location=Location(stage=stage, net=net, pin=pin),
        )
        self._report.add(diag)
        return diag


def _record_rule(
    rule_obj: Rule, circuit: Circuit, wall_s: float, status: str
) -> None:
    """One ledger record per rule execution (satellite: per-rule wall-time
    attribution, aggregated into a slowest-rules table by ``perf report``)."""
    perf.record_run(
        "rule",
        rule_obj.id,
        wall_s=wall_s,
        extra={"circuit": circuit.name, "status": status},
    )


def lint_circuit(
    circuit: Circuit,
    groups: Sequence[str] = CIRCUIT_GROUPS,
    waivers: Iterable[Waiver] = (),
    only: Optional[Iterable[str]] = None,
    options: Optional[Mapping[str, object]] = None,
    cache: Optional[RuleResultCache] = None,
    replay: bool = True,
) -> LintReport:
    """Run the circuit rule groups over ``circuit``.

    Parameters
    ----------
    groups:
        Which rule groups to run (subset of :data:`ALL_CIRCUIT_GROUPS`;
        the default leaves out the opt-in ``symbolic`` group).
    waivers:
        Suppressions to apply; waived findings stay in the report, marked.
    only:
        Optional allow-list of rule IDs (for targeted re-checks).
    options:
        Per-run tuning knobs handed to every rule via
        :attr:`LintContext.options` (e.g. ``symbolic_exact_budget``).
    cache:
        Optional incremental result cache.  Every fresh execution is
        recorded into it; with ``replay`` (the default) rules whose
        declared facets are unchanged are served from it without running.
    replay:
        Set False to force every rule to execute while still refreshing
        the cache — the cold/refresh pass of a cold/warm CI pair.
    """
    bad = set(groups) - set(ALL_CIRCUIT_GROUPS)
    if bad:
        raise ValueError(
            f"lint_circuit runs only {ALL_CIRCUIT_GROUPS}, got {sorted(bad)}"
        )
    report = LintReport(subject=circuit.name)
    wanted = set(only) if only is not None else None
    facets = facet_fingerprints(circuit) if cache is not None else None
    t_start = time.perf_counter()
    for rule_obj in rules_in_groups(groups):
        if rule_obj.check is None:
            continue
        if wanted is not None and rule_obj.id not in wanted:
            continue
        key = None
        if cache is not None:
            key = cache.key(rule_obj, facets, options)
            if replay:
                hit = cache.lookup(key)
                if hit is not None:
                    for diag in hit:
                        report.add(diag)
                    report.executed.append((rule_obj.id, 0.0, "replayed"))
                    metrics.counter("lint.rules_replayed").inc()
                    _record_rule(rule_obj, circuit, 0.0, "replayed")
                    continue
        before = len(report.diagnostics)
        t_rule = time.perf_counter()
        with trace.span("lint_rule", rule=rule_obj.id, circuit=circuit.name):
            rule_obj.check(LintContext(circuit, rule_obj, report, options))
        wall = time.perf_counter() - t_rule
        report.executed.append((rule_obj.id, wall, "executed"))
        metrics.counter("lint.rules_executed").inc()
        _record_rule(rule_obj, circuit, wall, "executed")
        if cache is not None:
            cache.note_executed(wall)
            cache.record(key, rule_obj, report.diagnostics[before:], wall)
    report.diagnostics = apply_waivers(report.diagnostics, waivers)
    metrics.counter("lint.runs").inc()
    if report.errors:
        metrics.counter("lint.errors").inc(len(report.errors))
    if report.warnings:
        metrics.counter("lint.warnings").inc(len(report.warnings))
    if perf.get_ledger() is not None:
        extra = {
            "groups": sorted(groups),
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "rules_executed": sum(
                1 for _, _, status in report.executed if status == "executed"
            ),
            "rules_replayed": sum(
                1 for _, _, status in report.executed if status == "replayed"
            ),
        }
        perf.record_run(
            "lint",
            circuit.name,
            wall_s=time.perf_counter() - t_start,
            circuit_fp=perf.payload_digest(
                [circuit.name, sorted(groups)]
            ),
            cache=cache.stats.as_dict() if cache is not None else None,
            extra=extra,
        )
    return report


def executed_counts(
    executed: Iterable[Tuple[str, float, str]],
) -> Tuple[int, int]:
    """(fresh, replayed) totals of one or more ``LintReport.executed``
    streams chained together."""
    fresh = replayed = 0
    for _, _, status in executed:
        if status == "replayed":
            replayed += 1
        else:
            fresh += 1
    return fresh, replayed
