"""Circuit lint driver: runs the structural/family rule groups."""

from __future__ import annotations

import time
from typing import Iterable, Mapping, Optional, Sequence

from ..netlist.circuit import Circuit
from ..obs import metrics, perf
from ..obs.log import get_logger
from .diagnostics import Diagnostic, LintReport, Location, Severity
from .registry import Rule, rules_in_groups
from .waivers import Waiver, apply_waivers

log = get_logger(__name__)

#: Rule groups that run on a :class:`Circuit` by default.
CIRCUIT_GROUPS = ("structural", "family", "dataflow")

#: All circuit-level groups.  ``symbolic`` (the SVC4xx switch-level
#: verifier) is opt-in: it enumerates the input space, which is orders of
#: magnitude heavier than the structural passes.
ALL_CIRCUIT_GROUPS = CIRCUIT_GROUPS + ("symbolic",)


class LintContext:
    """What one rule's checker sees: the circuit plus an ``emit`` sink."""

    def __init__(
        self,
        circuit: Circuit,
        rule_obj: Rule,
        report: LintReport,
        options: Optional[Mapping[str, object]] = None,
    ):
        self.circuit = circuit
        self.rule = rule_obj
        #: Free-form per-run tuning knobs (e.g. the symbolic group's
        #: enumeration budgets); rules read them with ``.get`` + defaults.
        self.options: Mapping[str, object] = options or {}
        self._report = report

    def emit(
        self,
        message: str,
        stage: Optional[str] = None,
        net: Optional[str] = None,
        pin: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """Record one finding for the rule being run.

        ``severity`` defaults to the rule's registered severity; rules that
        grade findings (e.g. deep vs. very deep pass chains) may override.
        """
        diag = Diagnostic(
            rule_id=self.rule.id,
            severity=severity or self.rule.severity,
            message=message,
            location=Location(stage=stage, net=net, pin=pin),
        )
        self._report.add(diag)
        return diag


def lint_circuit(
    circuit: Circuit,
    groups: Sequence[str] = CIRCUIT_GROUPS,
    waivers: Iterable[Waiver] = (),
    only: Optional[Iterable[str]] = None,
    options: Optional[Mapping[str, object]] = None,
) -> LintReport:
    """Run the circuit rule groups over ``circuit``.

    Parameters
    ----------
    groups:
        Which rule groups to run (subset of :data:`ALL_CIRCUIT_GROUPS`;
        the default leaves out the opt-in ``symbolic`` group).
    waivers:
        Suppressions to apply; waived findings stay in the report, marked.
    only:
        Optional allow-list of rule IDs (for targeted re-checks).
    options:
        Per-run tuning knobs handed to every rule via
        :attr:`LintContext.options` (e.g. ``symbolic_exact_budget``).
    """
    bad = set(groups) - set(ALL_CIRCUIT_GROUPS)
    if bad:
        raise ValueError(
            f"lint_circuit runs only {ALL_CIRCUIT_GROUPS}, got {sorted(bad)}"
        )
    report = LintReport(subject=circuit.name)
    wanted = set(only) if only is not None else None
    t_start = time.perf_counter()
    for rule_obj in rules_in_groups(groups):
        if rule_obj.check is None:
            continue
        if wanted is not None and rule_obj.id not in wanted:
            continue
        rule_obj.check(LintContext(circuit, rule_obj, report, options))
    report.diagnostics = apply_waivers(report.diagnostics, waivers)
    metrics.counter("lint.runs").inc()
    if report.errors:
        metrics.counter("lint.errors").inc(len(report.errors))
    if report.warnings:
        metrics.counter("lint.warnings").inc(len(report.warnings))
    if perf.get_ledger() is not None:
        perf.record_run(
            "lint",
            circuit.name,
            wall_s=time.perf_counter() - t_start,
            circuit_fp=perf.payload_digest(
                [circuit.name, sorted(groups)]
            ),
            extra={
                "groups": sorted(groups),
                "errors": len(report.errors),
                "warnings": len(report.warnings),
            },
        )
    return report
