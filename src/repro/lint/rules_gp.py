"""GP pre-solve checks (``GP201``–``GP204``).

The sizer hands the solver a geometric program built from generated
constraints; a malformed or trivially-hopeless program wastes a solve (or
worse, "succeeds" on garbage).  :func:`lint_gp` screens a
:class:`~repro.sizing.gp.GeometricProgram` — optionally against the size
table that defines the legal variables — before any iteration runs.

These rules have no circuit to walk, so they are registered without a
checker and driven here; the registry still owns their IDs, severities and
docs for ``--list-rules``.
"""

from __future__ import annotations

import math

from .diagnostics import Diagnostic, LintReport, Location, Severity
from .registry import Rule, register

GP201 = register(Rule(
    "GP201", "posynomial well-formedness", "gp", Severity.ERROR,
    doc=(
        "Every monomial in the objective and constraints must have a "
        "positive, finite coefficient and finite exponents; anything else "
        "is outside GP form and silently breaks the log-space transform."
    ),
))

GP202 = register(Rule(
    "GP202", "undeclared size variable", "gp", Severity.ERROR,
    doc=(
        "A GP variable that is not a declared size label has no physical "
        "meaning and no designer-set bounds — typically a typo in a "
        "component model."
    ),
))

GP203 = register(Rule(
    "GP203", "unconstrained size variable", "gp", Severity.WARNING,
    doc=(
        "A variable appearing in no constraint is decided by the objective "
        "alone and slides to its box bound — legal, but usually a sign "
        "that a path or slope constraint went missing."
    ),
))

GP204 = register(Rule(
    "GP204", "trivially infeasible constraint", "gp", Severity.ERROR,
    doc=(
        "A constraint whose sound lower bound over the variable box "
        "already exceeds 1 cannot be satisfied by any sizing; failing "
        "fast here beats an exhausted phase-1 solve."
    ),
))


def _box_lower_bound(expr, bounds) -> float:
    """Sound lower bound of a posynomial over a variable box.

    Each monomial is monotone in every variable (increasing for positive
    exponents, decreasing for negative), so its box minimum is attained at
    the lower bound for positive exponents and the upper bound for negative
    ones; term minima sum to a valid posynomial lower bound.
    """
    total = 0.0
    for mono in expr:
        value = mono.coefficient
        for var, exp in mono.exponents.items():
            lower, upper = bounds(var)
            value *= (lower if exp > 0 else upper) ** exp
        total += value
    return total


def lint_gp(gp, size_table=None) -> LintReport:
    """Screen a :class:`~repro.sizing.gp.GeometricProgram` pre-solve.

    ``size_table`` (a :class:`~repro.netlist.sizing_vars.SizeTable`) enables
    the variable-declaration checks; without it only well-formedness and
    feasibility screening run.
    """
    report = LintReport(subject="gp")

    def emit(rule_obj, message, constraint=None):
        report.add(Diagnostic(
            rule_id=rule_obj.id,
            severity=rule_obj.severity,
            message=message,
            location=Location(constraint=constraint),
        ))

    # GP201 — well-formedness of every posynomial in the program.
    labelled = [("objective", gp.objective)]
    labelled += [(c.name, c.expr) for c in gp.inequalities]
    labelled += [(name, mono.as_posynomial()) for mono, name in gp.equalities]
    for name, expr in labelled:
        for mono in expr:
            coeff = mono.coefficient
            if not (coeff > 0 and math.isfinite(coeff)):
                emit(
                    GP201,
                    f"monomial coefficient {coeff!r} is not positive finite",
                    constraint=name,
                )
            for var, exp in mono.exponents.items():
                if not math.isfinite(exp):
                    emit(
                        GP201,
                        f"exponent of {var} is not finite ({exp!r})",
                        constraint=name,
                    )

    # GP202/GP203 — variable discipline.
    constrained = set()
    for constraint in gp.inequalities:
        constrained |= constraint.expr.variables()
    for mono, _ in gp.equalities:
        constrained |= mono.variables()
    if size_table is not None:
        declared = {v.name for v in size_table}
        for var in gp.variables():
            if var not in declared:
                emit(
                    GP202,
                    f"size variable {var} is not declared in the size table",
                )
        for var in size_table.free_names():
            if var in constrained:
                continue
            if var in gp.objective.variables() or var in gp._bounds:
                emit(
                    GP203,
                    f"size variable {var} appears in no constraint; the "
                    "optimizer will park it at a box bound",
                )
    else:
        for var in sorted(gp.objective.variables() - constrained):
            emit(
                GP203,
                f"variable {var} appears only in the objective",
            )

    # GP204 — sound infeasibility screen over the variable box.
    for constraint in gp.inequalities:
        lower = _box_lower_bound(constraint.expr, gp.bounds)
        if lower > 1.0 + 1e-9:
            emit(
                GP204,
                f"lower bound {lower:.3f} over the size box already exceeds "
                "the limit; no sizing can satisfy this constraint",
                constraint=constraint.name,
            )

    return report
