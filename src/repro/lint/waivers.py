"""Waiver (suppression) files.

A waiver file is line-oriented text; blank lines and ``#`` comments are
ignored.  Each waiver line is::

    RULE_PATTERN  LOCATION_PATTERN  [# reason]

Both patterns are shell globs (:mod:`fnmatch`).  The rule pattern matches
the rule ID (``ERC103``, ``ERC1*``); the location pattern matches the
rendered location (``stage g0``, ``stage sum*``, ``*`` for any, including
findings with no location).  Examples::

    # the CLA's deep legs are analysed off-line; accept the hazard heuristic
    ERC103  stage cla*      # charge-sharing reviewed 2026-08
    GP203   *               # unconstrained decoupling labels are expected

Waived diagnostics stay in the report (marked ``waived``) so reviewers see
what was suppressed, but they no longer count as errors or warnings.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Iterable, List

from .diagnostics import Diagnostic


@dataclass(frozen=True)
class Waiver:
    """One suppression: rule-ID glob + location glob + reason."""

    rule_pattern: str
    location_pattern: str = "*"
    reason: str = ""

    def matches(self, diagnostic: Diagnostic) -> bool:
        if not fnmatch.fnmatchcase(diagnostic.rule_id, self.rule_pattern):
            return False
        location = str(diagnostic.location)
        if location == "" and self.location_pattern == "*":
            return True
        return fnmatch.fnmatchcase(location, self.location_pattern)


def parse_waivers(text: str) -> List[Waiver]:
    """Parse waiver-file text; raises :class:`ValueError` on bad lines."""
    waivers: List[Waiver] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line, _, comment = raw.partition("#")
        line = line.strip()
        if not line:
            continue
        fields = line.split(None, 1)
        rule_pattern = fields[0]
        location_pattern = fields[1].strip() if len(fields) > 1 else "*"
        if not rule_pattern:
            raise ValueError(f"waiver line {lineno}: empty rule pattern")
        waivers.append(
            Waiver(rule_pattern, location_pattern, comment.strip())
        )
    return waivers


def load_waivers(path: str) -> List[Waiver]:
    with open(path) as fh:
        return parse_waivers(fh.read())


def apply_waivers(
    diagnostics: Iterable[Diagnostic], waivers: Iterable[Waiver]
) -> List[Diagnostic]:
    """Mark matching diagnostics waived; returns a new list."""
    waivers = list(waivers)
    out: List[Diagnostic] = []
    for diag in diagnostics:
        if any(w.matches(diag) for w in waivers):
            diag = diag.with_waived()
        out.append(diag)
    return out
