"""Interval STA (``DFA303``): a sound pre-GP feasibility prover.

GP204 screens each *generated constraint* with a per-monomial box bound;
this analysis proves the same kind of certificate at the *path* level
without ever extracting paths or building a GP.  It propagates, per net,

* a **witness lower pair** ``(arr_lo, slope_lo)``: a lower bound on the
  box-minimum delay/slope of one concrete structural path reaching the net
  (joins pick one incoming candidate wholly, so the pair stays
  path-consistent — the sum of per-hop minima of a single real path);
* an **envelope upper pair** ``(arr_hi, slope_hi)``: element-wise maxima
  over all paths and transition arcs, an upper bound on every path's delay
  at every point of the box;

mirroring :meth:`ConstraintGenerator.path_delay_posynomial` hop by hop:
``arr' = arr + delay(input_slope=0) + slope_sensitivity * slope`` and
``slope' = output_slope(input_slope=0) + 0.1 * slope`` (plus the Elmore
wire terms), with the first hop's slope frozen at the designer's input
slope (halved on clock nets) exactly as the generator's iteration-0
``slope_map`` fallback does.

**Soundness** (see DESIGN.md for the full argument):

* ``provably-infeasible`` — some sink's ``arr_lo`` exceeds every budget a
  constraint over that sink could carry (the max over its possible path
  classes, times the summed segment budget for multi-phase paths), or a
  slope/noise constraint's box lower bound exceeds its limit.  Every
  sizing in the box then violates a generated iteration-0 constraint, so
  the engine's first GP solve must be infeasible: the screen can never
  reject a spec the sizer would have met.
* ``provably-feasible`` — a second propagation with the box collapsed to
  the nominal point (the geometric mean the solver starts from) satisfies
  every timing, slope, and noise budget on the ``hi`` side.  Only claimed
  for single-phase circuits: multi-phase segment budgets cannot be checked
  against a hulled whole-path value without splitting it unsoundly.
* ``unknown`` — everything else, including any circuit the solver had to
  widen (cyclic structures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ...models.gates import LN2, ModelLibrary
from ...netlist.circuit import Circuit
from ...netlist.nets import NetKind, PinClass
from ...netlist.stages import Stage, StageKind
from ...obs import metrics, trace
from ...sim.timing import StaticTimingAnalyzer, stage_arcs
from ..diagnostics import Diagnostic, LintReport, Location, Severity
from ..registry import Rule, register
from .framework import ForwardAnalysis, solve_forward

DFA303 = register(Rule(
    "DFA303", "interval-STA infeasibility", "dataflow", Severity.ERROR,
    doc=(
        "Interval propagation of the posynomial delay/slope models over "
        "the sizing-variable box proves a path, slope, or noise budget "
        "unreachable by any sizing — the path-level generalization of "
        "GP204, issued before any path extraction or GP solve.  Driven by "
        "repro.lint.dataflow.interval.screen_feasibility (the advisor and "
        "engine pre-GP screens, and repro lint --dataflow)."
    ),
    facets=("topology", "sizing", "phases"),
))

#: Relative slack applied before claiming infeasibility, absorbing float
#: round-off in the box bounds (same spirit as GP204's ``1e-9``).
_EPS = 1e-6

#: Marker class meaning "still on the clock net, no hop taken yet".
_CLOCK_MARK = "clock"


@dataclass(frozen=True)
class TimingValue:
    """Abstract timing state of one net."""

    reached: bool = False
    widened: bool = False
    moved: bool = False          # at least one stage hop behind this value
    arr_lo: float = 0.0
    slope_lo: float = 0.0
    arr_hi: float = 0.0
    slope_hi: float = 0.0
    #: Clocked (D1) phase boundaries crossed (max over joined paths).
    boundaries: int = 0
    #: A domino stage appeared after the last boundary (blocks the
    #: generator's trailing-segment merge).
    domino_after: bool = False
    #: Constraint kinds some path reaching this net may classify as.
    classes: frozenset = field(default_factory=frozenset)

    def segments(self) -> int:
        """Phase-segment count of the generator for the worst joined path
        (mirrors ``ConstraintGenerator.phase_segments`` + trailing merge)."""
        if self.boundaries == 0:
            return 1
        return self.boundaries + (1 if self.domino_after else 0)


_BOTTOM = TimingValue()
_TOP = TimingValue(reached=True, widened=True, moved=True)


def posy_box_bounds(expr, bounds: Callable[[str], Tuple[float, float]]):
    """(lower, upper) of a posynomial over a variable box.

    Each monomial is monotone per variable — increasing for positive
    exponents, decreasing for negative — so both bounds are attained at
    box corners and sum exactly (the posynomial-interval counterpart of
    ``rules_gp._box_lower_bound``).
    """
    lo = hi = 0.0
    for mono in expr:
        v_lo = v_hi = mono.coefficient
        for var, exp in mono.exponents.items():
            lower, upper = bounds(var)
            v_lo *= (lower if exp > 0 else upper) ** exp
            v_hi *= (upper if exp > 0 else lower) ** exp
        lo += v_lo
        hi += v_hi
    return lo, hi


class IntervalAnalysis(ForwardAnalysis):
    """Delay/slope interval propagation over a sizing-variable box."""

    name = "interval"

    def __init__(
        self,
        circuit: Circuit,
        library: ModelLibrary,
        input_slope: float,
        bounds: Callable[[str], Tuple[float, float]],
    ):
        self.library = library
        self.input_slope = input_slope
        self.bounds = bounds
        self._analyzer = StaticTimingAnalyzer(circuit, library)
        self._load_cache: Dict[str, object] = {}
        self._hop_cache: Dict[Tuple[str, str], Tuple[float, float, float, float]] = {}
        self._wire_cache: Dict[str, Tuple[float, float]] = {}

    # -- lattice -----------------------------------------------------------

    def bottom(self) -> TimingValue:
        return _BOTTOM

    def widen(self, old: TimingValue, new: TimingValue) -> TimingValue:
        return _TOP

    def source_value(self, circuit: Circuit, net_name: str) -> TimingValue:
        if circuit.net(net_name).kind is NetKind.CLOCK:
            # The generator halves the designer slope on clock starts.
            slope = self.input_slope * 0.5
            classes = frozenset((_CLOCK_MARK,))
        else:
            slope = self.input_slope
            classes = frozenset(("data",))
        return TimingValue(
            reached=True,
            slope_lo=slope,
            slope_hi=slope,
            classes=classes,
        )

    def join(self, a: TimingValue, b: TimingValue) -> TimingValue:
        if not a.reached:
            return b
        if not b.reached:
            return a
        if a.widened or b.widened:
            return _TOP
        # Witness pair: adopt one candidate wholly so (arr_lo, slope_lo)
        # remains the per-hop-minima sum of a single structural path.
        lo_src = a if (a.arr_lo, a.slope_lo) >= (b.arr_lo, b.slope_lo) else b
        return TimingValue(
            reached=True,
            moved=a.moved or b.moved,
            arr_lo=lo_src.arr_lo,
            slope_lo=lo_src.slope_lo,
            arr_hi=max(a.arr_hi, b.arr_hi),
            slope_hi=max(a.slope_hi, b.slope_hi),
            boundaries=max(a.boundaries, b.boundaries),
            domino_after=a.domino_after or b.domino_after,
            classes=a.classes | b.classes,
        )

    # -- model bounds ------------------------------------------------------

    def _load_of(self, circuit: Circuit, net_name: str):
        if net_name not in self._load_cache:
            self._load_cache[net_name] = self._analyzer.load_posynomial(net_name)
        return self._load_cache[net_name]

    def _hop_bounds(self, circuit: Circuit, stage: Stage, pin) -> Tuple[float, float, float, float]:
        """(d_lo, d_hi, s_lo, s_hi): delay and base-slope hulls over every
        transition arc through ``pin`` (arc minima may mix arcs — the lo
        side only needs to stay a lower bound)."""
        key = (stage.name, pin.name)
        cached = self._hop_cache.get(key)
        if cached is not None:
            return cached
        load = self._load_of(circuit, stage.output.name)
        table = circuit.size_table
        d_lo = s_lo = float("inf")
        d_hi = s_hi = 0.0
        for _in_trans, out_trans in stage_arcs(stage, pin, self.library):
            delay = self.library.delay(
                stage, pin, out_trans, load, table, input_slope=0.0
            )
            lo, hi = posy_box_bounds(delay, self.bounds)
            d_lo, d_hi = min(d_lo, lo), max(d_hi, hi)
            slope = self.library.output_slope(
                stage, pin, out_trans, load, table, input_slope=0.0
            )
            lo, hi = posy_box_bounds(slope, self.bounds)
            s_lo, s_hi = min(s_lo, lo), max(s_hi, hi)
        if d_lo == float("inf"):  # no arcs through this pin
            d_lo = s_lo = 0.0
        result = (d_lo, d_hi, s_lo, s_hi)
        self._hop_cache[key] = result
        return result

    def _wire_bounds(self, circuit: Circuit, net_name: str) -> Tuple[float, float]:
        if net_name not in self._wire_cache:
            self._wire_cache[net_name] = posy_box_bounds(
                self._analyzer.far_cap_posynomial(net_name), self.bounds
            )
        return self._wire_cache[net_name]

    # -- transfer ----------------------------------------------------------

    def _advance(
        self, circuit: Circuit, stage: Stage, pin, value: TimingValue
    ) -> TimingValue:
        d_lo, d_hi, s_lo, s_hi = self._hop_bounds(circuit, stage, pin)
        sens = self.library.tech.slope_sensitivity
        arr_lo = value.arr_lo + d_lo + sens * value.slope_lo
        arr_hi = value.arr_hi + d_hi + sens * value.slope_hi
        slope_lo = s_lo + 0.1 * value.slope_lo
        slope_hi = s_hi + 0.1 * value.slope_hi
        wire_res = stage.output.wire_res
        if wire_res > 0.0:
            far_lo, far_hi = self._wire_bounds(circuit, stage.output.name)
            arr_lo += LN2 * wire_res * far_lo
            arr_hi += LN2 * wire_res * far_hi
            gain = self.library.tech.slope_gain
            slope_lo += gain * wire_res * far_lo
            slope_hi += gain * wire_res * far_hi

        classes = set(value.classes)
        if _CLOCK_MARK in classes:
            # First hop off the clock net decides the class, exactly like
            # ConstraintGenerator.classify does on the first arc.
            classes.discard(_CLOCK_MARK)
            if (
                stage.kind is StageKind.DOMINO
                and pin.pin_class is PinClass.CLOCK
            ):
                classes.add("precharge")
                if stage.clocked:
                    classes.add("evaluate")
            else:
                classes.add("data")
        if stage.kind is StageKind.DOMINO:
            classes.add("evaluate")
        if pin.pin_class is PinClass.SELECT and stage.kind in (
            StageKind.PASSGATE, StageKind.TRISTATE
        ):
            classes.add("control")

        boundaries = value.boundaries
        domino_after = value.domino_after
        if stage.kind is StageKind.DOMINO:
            if stage.clocked:
                boundaries += 1
                domino_after = False
            elif boundaries:
                domino_after = True

        return TimingValue(
            reached=True,
            moved=True,
            arr_lo=arr_lo,
            slope_lo=slope_lo,
            arr_hi=arr_hi,
            slope_hi=slope_hi,
            boundaries=boundaries,
            domino_after=domino_after,
            classes=frozenset(classes),
        )

    def transfer(
        self, circuit: Circuit, stage: Stage, inputs: Dict[str, TimingValue]
    ) -> TimingValue:
        out = _BOTTOM
        for pin in stage.inputs:
            value = inputs[pin.name]
            if not value.reached:
                continue
            if value.widened:
                return _TOP
            out = self.join(out, self._advance(circuit, stage, pin, value))
        return out


# ---------------------------------------------------------------------------
# the screen
# ---------------------------------------------------------------------------


@dataclass
class IntervalScreenResult:
    """Outcome of :func:`screen_feasibility`."""

    verdict: str                       # provably-infeasible / provably-feasible / unknown
    report: LintReport                 # DFA303 findings backing an infeasible verdict
    circuit_name: str
    sinks: int = 0
    widened: bool = False
    runtime_s: float = 0.0

    @property
    def infeasible(self) -> bool:
        return self.verdict == "provably-infeasible"

    @property
    def feasible(self) -> bool:
        return self.verdict == "provably-feasible"

    def summary(self) -> str:
        if self.report.diagnostics:
            first = self.report.diagnostics[0]
            extra = len(self.report.diagnostics) - 1
            more = f" (+{extra} more)" if extra else ""
            return f"{self.verdict}: {first.text}{more}"
        return self.verdict


def _budget_for(spec, value: TimingValue, otb_borrow: float) -> float:
    """The loosest budget any iteration-0 constraint over a path joined
    into ``value`` could carry; ``arr_lo`` beyond this violates *every*
    candidate constraint."""
    kinds = [k for k in value.classes if k != _CLOCK_MARK]
    budget = max((spec.for_kind(k) for k in kinds), default=spec.data)
    segments = value.segments()
    if segments >= 2:
        # Multi-phase paths are constrained per segment at
        # phase (+ OTB window); their total is implied <= that times the
        # segment count.
        budget = max(
            budget, (spec.for_kind("segment") + otb_borrow) * segments
        )
    return budget


def _min_budget(spec, value: TimingValue) -> float:
    kinds = [k for k in value.classes if k != _CLOCK_MARK]
    return min((spec.for_kind(k) for k in kinds), default=spec.data)


def _sink_nets(circuit: Circuit) -> List[str]:
    outs = set(circuit.primary_outputs)
    return [
        name
        for name in circuit.nets
        if name in outs or not circuit.fanout_of(name)
    ]


def _slope_surface(circuit: Circuit, library: ModelLibrary, spec, analysis):
    """Yield the generator's iteration-0 slope constraints as
    ``(name, posynomial, limit, net)`` — same dedupe/order as
    ``ConstraintGenerator._add_slope_constraints`` with an empty slope map.
    """
    table = circuit.size_table
    outputs = set(circuit.primary_outputs)
    for stage in circuit.stages:
        net = stage.output.name
        limit = (
            spec.max_output_slope if net in outputs else spec.max_internal_slope
        )
        covered = set()
        for pin in stage.inputs:
            for _in_trans, out_trans in stage_arcs(stage, pin, library):
                if out_trans in covered:
                    continue
                covered.add(out_trans)
                slope = library.output_slope(
                    stage,
                    pin,
                    out_trans,
                    analysis._load_of(circuit, net),
                    table,
                    input_slope=spec.input_slope,
                )
                if stage.output.wire_res > 0.0:
                    slope = slope + (
                        library.tech.slope_gain
                        * stage.output.wire_res
                        * analysis._analyzer.far_cap_posynomial(net)
                    )
                yield (
                    f"slope.{stage.name}.{out_trans.value}",
                    slope,
                    limit,
                    net,
                )


def _noise_surface(circuit: Circuit, library: ModelLibrary, spec):
    """Yield the generator's charge-sharing constraints as
    ``(name, posynomial, stage)`` with limit 1 (mirrors
    ``ConstraintGenerator._add_noise_constraints``)."""
    ratio = spec.charge_sharing_ratio
    if ratio is None:
        return
    table = circuit.size_table
    tech = library.tech
    for stage in circuit.stages:
        if stage.kind is not StageKind.DOMINO:
            continue
        model = library.model(stage)
        internal = model.internal_charge_cap(stage, table)
        if len(internal) == 0:
            continue
        keeper = float(stage.params.get("keeper", 0.0))
        allowed = (
            ratio
            * (1.0 + 2.0 * keeper)
            * tech.c_diff
            * table.monomial(stage.label("precharge"))
        )
        yield (f"noise.{stage.name}", internal / allowed, stage.name)


def screen_feasibility(
    circuit: Circuit,
    library: ModelLibrary,
    spec,
    otb_borrow: float = 0.0,
) -> IntervalScreenResult:
    """Interval-STA pre-GP screen.  Never falsely claims either verdict:
    ``provably-infeasible`` implies the engine's first GP solve fails,
    ``provably-feasible`` implies it has a feasible point.
    """
    table = circuit.size_table

    def box_bounds(name: str) -> Tuple[float, float]:
        if name in table:
            var = table[name]
            return (var.lower, var.upper)
        return (1e-3, 1e6)  # GeometricProgram's own default box

    report = LintReport(subject=f"{circuit.name}:interval-sta")

    def emit(message: str, **loc) -> None:
        report.add(Diagnostic(
            rule_id=DFA303.id,
            severity=DFA303.severity,
            message=message,
            location=Location(**loc),
        ))

    with trace.span("interval_screen", circuit=circuit.name) as span:
        analysis = IntervalAnalysis(
            circuit, library, spec.input_slope, box_bounds
        )
        result = solve_forward(circuit, analysis)
        widened = bool(result.widened)

        sink_values = {
            name: result.values[name]
            for name in _sink_nets(circuit)
            if result.values[name].reached and result.values[name].moved
        }

        # -- infeasibility proofs (sound for any box) ----------------------
        for name in sorted(sink_values):
            value = sink_values[name]
            if value.widened:
                continue
            budget = _budget_for(spec, value, otb_borrow)
            if value.arr_lo > budget * (1.0 + _EPS):
                kinds = sorted(k for k in value.classes if k != _CLOCK_MARK)
                emit(
                    f"fastest possible arrival {value.arr_lo:.1f} ps already "
                    f"exceeds the {'/'.join(kinds)} budget {budget:.1f} ps "
                    "over the whole size box — no sizing can meet this path",
                    net=name,
                )
        for cname, slope, limit, net in _slope_surface(
            circuit, library, spec, analysis
        ):
            lo, _ = posy_box_bounds(slope, box_bounds)
            if lo > limit * (1.0 + _EPS):
                emit(
                    f"minimum achievable slope {lo:.1f} ps exceeds the "
                    f"{limit:.1f} ps limit over the whole size box",
                    net=net,
                    constraint=cname,
                )
        for cname, expr, stage_name in _noise_surface(circuit, library, spec):
            lo, _ = posy_box_bounds(expr, box_bounds)
            if lo > 1.0 + _EPS:
                emit(
                    f"charge-sharing ratio is at least {lo:.2f}x the allowed "
                    "limit over the whole size box",
                    stage=stage_name,
                    constraint=cname,
                )

        if report.diagnostics:
            verdict = "provably-infeasible"
        elif widened or not sink_values:
            verdict = "unknown"
        else:
            verdict = _try_prove_feasible(
                circuit, library, spec, sink_values, box_bounds
            )

        span.set_attrs(verdict=verdict, sinks=len(sink_values))
        metrics.counter(
            f"lint.interval_screen.{verdict.replace('provably-', '')}"
        ).inc()
        return IntervalScreenResult(
            verdict=verdict,
            report=report,
            circuit_name=circuit.name,
            sinks=len(sink_values),
            widened=widened,
            runtime_s=result.runtime_s,
        )


def _try_prove_feasible(
    circuit: Circuit, library: ModelLibrary, spec, sink_values, box_bounds
) -> str:
    """Point certificate: rerun the propagation with the box collapsed to
    the nominal sizing and check every budget's ``hi`` side."""
    if any(v.segments() > 1 for v in sink_values.values()):
        # Multi-phase: per-segment budgets cannot be certified from a
        # whole-path hull without unsoundly splitting it.
        return "unknown"
    env = circuit.size_table.default_env()

    def point_bounds(name: str) -> Tuple[float, float]:
        width = env.get(name)
        if width is None:
            lower, upper = box_bounds(name)
            width = (lower * upper) ** 0.5
        return (width, width)

    analysis = IntervalAnalysis(
        circuit, library, spec.input_slope, point_bounds
    )
    result = solve_forward(circuit, analysis)
    if result.widened:
        return "unknown"
    for name in sink_values:
        value = result.values[name]
        if not value.reached or value.widened:
            return "unknown"
        if value.arr_hi > _min_budget(spec, value):
            return "unknown"
    for _name, slope, limit, _net in _slope_surface(
        circuit, library, spec, analysis
    ):
        _, hi = posy_box_bounds(slope, point_bounds)
        if hi > limit:
            return "unknown"
    for _name, expr, _stage in _noise_surface(circuit, library, spec):
        _, hi = posy_box_bounds(expr, point_bounds)
        if hi > 1.0:
            return "unknown"
    return "provably-feasible"
