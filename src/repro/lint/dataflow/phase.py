"""Clock-phase analysis (``DFA301``).

Propagates what every net does *while the clock is low* (the precharge
phase) plus how many clocked-domino phase boundaries lie behind it:

* ``LOW_PRE`` / ``HIGH_PRE`` — forced to a known level during precharge
  (a buffered domino output is ``LOW_PRE``: the node precharges high, the
  skewed inverter drives low);
* ``STABLE_PRE`` — stable during precharge at an unknown level;
* ``STATIC`` — untimed logic level, may change at any point of the cycle;
* ``CLOCK`` — the clock itself or combinational logic of it (a *derived
  clock*): toggles every cycle by construction;
* ``MIXED`` — top: combinations of the above (e.g. clock gated with data).

Three findings come out of the fixpoint:

1. **D2 phase races** (error): a footless domino's evaluate legs must be
   ``LOW_PRE`` — anything else can short the precharge path.  This is
   ERC102 generalized from a cone walk to the whole circuit: a D2 fed
   through static logic that *mixes* clocked-domino rails with static
   signals is caught even though every individual cone roots at a domino.
2. **Clock-cone contamination** (warning): a ``CLOCK``-valued *signal* net
   reaching a data or select pin.  ERC106 flags clock-**kind** nets only;
   one inverter (``clkb``) launders the net kind while the behavior stays
   periodic.
3. **Borrow-chain depth** (warning): a path accumulating more clocked
   phase boundaries than :data:`MAX_BORROW_PHASES` — more sequential
   borrowing than `sizing/otb.analyze_borrowing` can meaningfully audit,
   and more than the two-phase clocking the paper's macros use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from ...netlist.circuit import Circuit
from ...netlist.nets import PinClass
from ...netlist.stages import Stage, StageKind
from ..diagnostics import Severity
from ..registry import rule
from .framework import ForwardAnalysis, SolveResult, solve_forward

#: Deepest chain of clocked (D1) domino phase boundaries before a
#: time-borrowing warning.  The paper's two-phase domino macros have at
#: most two D1 ranks per cycle; a third means a signal borrows through more
#: boundaries than one clock period offers.
MAX_BORROW_PHASES = 2


class Phase(enum.Enum):
    BOTTOM = "bottom"
    LOW_PRE = "low"
    HIGH_PRE = "high"
    STABLE_PRE = "stable"
    STATIC = "static"
    CLOCK = "clock"
    MIXED = "mixed"


#: Values that are at least *stable* during precharge.
_STABLEISH = (Phase.LOW_PRE, Phase.HIGH_PRE, Phase.STABLE_PRE)

_INVERT = {
    Phase.LOW_PRE: Phase.HIGH_PRE,
    Phase.HIGH_PRE: Phase.LOW_PRE,
}


def _join_phase(a: Phase, b: Phase) -> Phase:
    if a is b:
        return a
    if a is Phase.BOTTOM:
        return b
    if b is Phase.BOTTOM:
        return a
    if a in _STABLEISH and b in _STABLEISH:
        return Phase.STABLE_PRE
    return Phase.MIXED


@dataclass(frozen=True)
class PhaseValue:
    """Precharge behavior + accumulated phase-boundary depth."""

    phase: Phase
    depth: int = 0


class PhaseAnalysis(ForwardAnalysis):
    name = "phase"

    #: Depth assigned by widening — high enough that a widened (cyclic)
    #: path always trips the borrow-chain warning rather than hiding.
    _TOP_DEPTH = 99

    def bottom(self) -> PhaseValue:
        return PhaseValue(Phase.BOTTOM, 0)

    def source_value(self, circuit: Circuit, net_name: str) -> PhaseValue:
        if net_name in set(circuit.clock_nets()):
            return PhaseValue(Phase.CLOCK, 0)
        declared = circuit.input_phase(net_name)
        if declared == "mono_rise":
            # Low during precharge, may only rise during evaluate.
            return PhaseValue(Phase.LOW_PRE, 0)
        if declared == "mono_fall":
            return PhaseValue(Phase.HIGH_PRE, 0)
        if declared == "steady":
            return PhaseValue(Phase.STABLE_PRE, 0)
        return PhaseValue(Phase.STATIC, 0)

    def join(self, a: PhaseValue, b: PhaseValue) -> PhaseValue:
        return PhaseValue(_join_phase(a.phase, b.phase), max(a.depth, b.depth))

    def widen(self, old: PhaseValue, new: PhaseValue) -> PhaseValue:
        return PhaseValue(Phase.MIXED, self._TOP_DEPTH)

    def transfer(
        self, circuit: Circuit, stage: Stage, inputs: Dict[str, PhaseValue]
    ) -> PhaseValue:
        if stage.kind is StageKind.DOMINO:
            depth = max(
                (
                    inputs[p.name].depth
                    for p in stage.inputs
                    if p.pin_class is not PinClass.CLOCK
                ),
                default=0,
            )
            # The dynamic node itself is HIGH during precharge; its buffered
            # output (the conventional domino interface, an inverter away)
            # is the LOW_PRE the next rank relies on.  A clocked evaluate
            # foot starts a new phase segment.
            return PhaseValue(Phase.HIGH_PRE, depth + (1 if stage.clocked else 0))

        depth = max((inputs[p.name].depth for p in stage.inputs), default=0)
        if stage.kind in (StageKind.PASSGATE, StageKind.TRISTATE):
            data = Phase.BOTTOM
            for pin in stage.data_pins():
                data = _join_phase(data, inputs[pin.name].phase)
            for pin in stage.select_pins():
                if inputs[pin.name].phase in (Phase.CLOCK, Phase.MIXED):
                    # Clock-steered gate: the output toggles with the clock.
                    return PhaseValue(Phase.MIXED, depth)
            if stage.kind is StageKind.TRISTATE:
                data = _INVERT.get(data, data)
            return PhaseValue(data, depth)

        data = [inputs[p.name].phase for p in stage.data_pins()]
        known = [v for v in data if v is not Phase.BOTTOM]
        if not known:
            return PhaseValue(Phase.BOTTOM, depth)
        if any(v is Phase.MIXED for v in known):
            return PhaseValue(Phase.MIXED, depth)
        # Controlling inputs pin the output during precharge regardless of
        # what the other inputs do (including clocks and static levels).
        if stage.kind is StageKind.NAND and any(v is Phase.LOW_PRE for v in known):
            return PhaseValue(Phase.HIGH_PRE, depth)
        if stage.kind is StageKind.NOR and any(v is Phase.HIGH_PRE for v in known):
            return PhaseValue(Phase.LOW_PRE, depth)
        if all(v is Phase.CLOCK for v in known):
            # Pure combinational function of clocks: a derived clock.
            return PhaseValue(Phase.CLOCK, depth)
        if any(v is Phase.CLOCK for v in known):
            return PhaseValue(Phase.MIXED, depth)
        if any(v is Phase.STATIC for v in known):
            # Untimed level in, untimed level out (absent a controlling
            # stable input, handled above).
            return PhaseValue(Phase.STATIC, depth)
        # All inputs hold a stable precharge level; so does the output.
        if stage.kind is StageKind.INV:
            return PhaseValue(_INVERT.get(known[0], known[0]), depth)
        if stage.kind is StageKind.NAND and all(v is Phase.HIGH_PRE for v in known):
            return PhaseValue(Phase.LOW_PRE, depth)
        if stage.kind is StageKind.NOR and all(v is Phase.LOW_PRE for v in known):
            return PhaseValue(Phase.HIGH_PRE, depth)
        return PhaseValue(Phase.STABLE_PRE, depth)


def solve_phases(circuit: Circuit) -> SolveResult:
    return solve_forward(circuit, PhaseAnalysis())


def _domino_legs(stage: Stage):
    """Series pin groups of a domino's pull-down legs, in the same order
    the flat expander wires them (ragged ``leg_sizes`` or uniform
    ``leg_series`` chunks)."""
    signal_pins = [
        p for p in stage.inputs if p.pin_class is not PinClass.CLOCK
    ]
    leg_sizes = stage.leg_sizes
    if sum(leg_sizes) == len(signal_pins):
        legs, start = [], 0
        for size in leg_sizes:
            legs.append(signal_pins[start:start + size])
            start += size
        return legs
    leg_series = max(1, int(stage.params.get("leg_series", 1)))
    return [
        signal_pins[i:i + leg_series]
        for i in range(0, len(signal_pins), leg_series)
    ]


@rule("DFA301", "clock-phase discipline", "dataflow", Severity.ERROR,
      facets=("topology", "phases"))
def check_phase_dataflow(ctx) -> None:
    """Whole-circuit precharge-phase propagation: footless (D2) domino legs
    must be provably low during precharge (error); derived clocks — signal
    nets that are combinational functions of the clock — must not steer
    data or select pins (warning, the net-kind-laundered version of
    ERC106); and chains of clocked phase boundaries deeper than
    ``MAX_BORROW_PHASES`` out-borrow the clock period (warning)."""
    result = solve_phases(ctx.circuit)
    clock_kind_nets = set(ctx.circuit.clock_nets())
    flagged_contamination = set()
    for stage in ctx.circuit.stages:
        if stage.kind is StageKind.DOMINO and not stage.clocked:
            # A leg shorts the precharge path only if *every* series device
            # in it can be on while the clock is low; one provably-low pin
            # per leg keeps it off.
            for leg in _domino_legs(stage):
                if any(
                    result.values[p.net.name].phase
                    in (Phase.LOW_PRE, Phase.BOTTOM)
                    for p in leg
                ):
                    continue
                pin = leg[0]
                phases = "/".join(
                    result.values[p.net.name].phase.value for p in leg
                )
                ctx.emit(
                    f"footless (D2) domino leg "
                    f"({', '.join(p.net.name for p in leg)}) has no input "
                    f"guaranteed low during precharge ({phases}) — phase "
                    "race with the precharge device",
                    stage=stage.name,
                    pin=pin.name,
                )
        if stage.kind is StageKind.DOMINO and stage.clocked:
            depth = max(
                (
                    result.values[p.net.name].depth
                    for p in stage.inputs
                    if p.pin_class is not PinClass.CLOCK
                ),
                default=0,
            )
            if depth + 1 > MAX_BORROW_PHASES:
                ctx.emit(
                    f"evaluate chain crosses {depth + 1} clocked phase "
                    f"boundaries (> {MAX_BORROW_PHASES}): deeper time "
                    "borrowing than one clock period can grant",
                    stage=stage.name,
                    severity=Severity.WARNING,
                )
        for pin in stage.inputs:
            if pin.pin_class is PinClass.CLOCK:
                continue
            if pin.net.name in clock_kind_nets:
                continue  # ERC106 already flags clock-kind nets on data pins
            if result.values[pin.net.name].phase is Phase.CLOCK:
                if pin.net.name in flagged_contamination:
                    continue
                flagged_contamination.add(pin.net.name)
                ctx.emit(
                    f"net {pin.net.name} is a derived clock (combinational "
                    f"function of the clock) steering a "
                    f"{pin.pin_class.value} pin — clock-cone contamination",
                    stage=stage.name,
                    net=pin.net.name,
                    pin=pin.name,
                    severity=Severity.WARNING,
                )
