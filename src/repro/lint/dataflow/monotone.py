"""Whole-circuit monotonicity analysis (``DFA302``).

Section 4: a domino evaluate network must only see *monotone rising* inputs
— an input that falls (or glitches) during evaluate can falsely discharge
the dynamic node.  ERC101 checks this by walking each domino input's cone
back to the nearest dynamic node and counting inversions, but a cone walk
is local: it cannot see a non-monotone signal smuggled in through a
pass-gate *select* (selects are not part of the data cone) and it treats
primary inputs as out of scope.

This analysis propagates an edge-behavior lattice through the whole stage
graph instead::

            NONMONO          (may glitch / fall during evaluate)
           /       \\
       RISING     FALLING    (monotone edge during evaluate)
           \\       /
            STEADY           (stable across the whole cycle)
              |
            BOTTOM

plus a ``CLOCK`` chain (the clock itself is periodic, neither monotone nor
steady; it joins with any data behavior to ``NONMONO``).  Transfer
functions follow gate logic: inverting static gates swap RISING/FALLING of
the join of their inputs, XOR of non-steady inputs is non-monotone, a pass
gate forwards its data behavior only while its select is steady, and a
domino dynamic node always *falls* during evaluate (its output buffer
restores the rising sense).

Primary inputs take their declared phase
(:meth:`~repro.netlist.circuit.Circuit.declare_input_phase`): ``mono_rise``
→ RISING, ``mono_fall`` → FALLING, ``async`` → NONMONO, and
``steady``/undeclared → STEADY — matching ERC101's historical assumption
that an undeclared input is quiet during evaluate.
"""

from __future__ import annotations

import enum
from typing import Dict

from ...netlist.circuit import Circuit
from ...netlist.nets import PinClass
from ...netlist.stages import Stage, StageKind
from ..diagnostics import Severity
from ..registry import rule
from .framework import ForwardAnalysis, SolveResult, solve_forward


class Mono(enum.Enum):
    BOTTOM = "bottom"
    STEADY = "steady"
    RISING = "rising"
    FALLING = "falling"
    CLOCK = "clock"
    NONMONO = "nonmono"


_INVERT = {
    Mono.RISING: Mono.FALLING,
    Mono.FALLING: Mono.RISING,
}


def _join(a: Mono, b: Mono) -> Mono:
    if a is b:
        return a
    if a is Mono.BOTTOM:
        return b
    if b is Mono.BOTTOM:
        return a
    if a is Mono.STEADY:
        return b
    if b is Mono.STEADY:
        return a
    # Distinct non-steady behaviors (RISING vs FALLING, anything vs CLOCK)
    # merge to the unknown top.
    return Mono.NONMONO


class MonotonicityAnalysis(ForwardAnalysis):
    """Edge behavior of every net during the evaluate phase."""

    name = "monotone"

    def bottom(self) -> Mono:
        return Mono.BOTTOM

    def source_value(self, circuit: Circuit, net_name: str) -> Mono:
        if net_name in set(circuit.clock_nets()):
            return Mono.CLOCK
        declared = circuit.input_phase(net_name)
        if declared == "mono_rise":
            return Mono.RISING
        if declared == "mono_fall":
            return Mono.FALLING
        if declared == "async":
            return Mono.NONMONO
        return Mono.STEADY

    def join(self, a: Mono, b: Mono) -> Mono:
        return _join(a, b)

    def widen(self, old: Mono, new: Mono) -> Mono:
        return Mono.NONMONO

    def transfer(
        self, circuit: Circuit, stage: Stage, inputs: Dict[str, Mono]
    ) -> Mono:
        if stage.kind is StageKind.DOMINO:
            # The dynamic node precharges high and (only) falls during
            # evaluate, whatever its legs do; the question of whether the
            # legs were *allowed* their behavior is the rule's, not the
            # transfer's.
            return Mono.FALLING
        if stage.kind is StageKind.XOR:
            data = [inputs[p.name] for p in stage.data_pins()]
            if all(v is Mono.BOTTOM for v in data):
                return Mono.BOTTOM
            if all(v in (Mono.STEADY, Mono.BOTTOM) for v in data):
                return Mono.STEADY
            # Any moving input makes an XOR non-monotone (both of its
            # polarities appear in the pull networks).
            return Mono.NONMONO
        if stage.kind in (StageKind.PASSGATE, StageKind.TRISTATE):
            data = Mono.BOTTOM
            for pin in stage.data_pins():
                data = _join(data, inputs[pin.name])
            for pin in stage.select_pins():
                sel = inputs[pin.name]
                if sel not in (Mono.BOTTOM, Mono.STEADY):
                    # A switching select chops the output regardless of how
                    # well-behaved the data is.
                    return Mono.NONMONO
            if stage.kind is StageKind.TRISTATE:
                return _INVERT.get(data, data)
            return data
        # Static gates (INV/NAND/NOR/AOI): monotone decreasing in every
        # input, so the output inverts the joined input behavior.
        value = Mono.BOTTOM
        for pin in stage.data_pins():
            value = _join(value, inputs[pin.name])
        return _INVERT.get(value, value)


def solve_monotonicity(circuit: Circuit) -> SolveResult:
    return solve_forward(circuit, MonotonicityAnalysis())


@rule("DFA302", "whole-circuit domino monotonicity", "dataflow",
      Severity.ERROR, facets=("topology", "phases"))
def check_monotone_dataflow(ctx) -> None:
    """Dataflow companion to ERC101: every domino evaluate input (data *and*
    select legs) must carry a monotone-rising or steady signal during
    evaluate, judged on the fixpoint of whole-circuit propagation rather
    than a local cone walk.  Catches violations the cone walk cannot see —
    a pass gate whose select is driven by switching logic, or a declared
    falling primary input feeding a domino leg many stages away."""
    result = solve_monotonicity(ctx.circuit)
    for stage in ctx.circuit.stages:
        if stage.kind is not StageKind.DOMINO:
            continue
        for pin in stage.inputs:
            if pin.pin_class is PinClass.CLOCK:
                continue
            value = result.values[pin.net.name]
            if value is Mono.FALLING:
                ctx.emit(
                    f"net {pin.net.name} is monotone-falling during "
                    "evaluate; a domino leg needs a rising (or steady) "
                    "input",
                    stage=stage.name,
                    pin=pin.name,
                )
            elif value is Mono.NONMONO:
                ctx.emit(
                    f"net {pin.net.name} is non-monotone during evaluate "
                    "(glitches can falsely discharge the dynamic node)",
                    stage=stage.name,
                    pin=pin.name,
                )
