"""``repro.lint.dataflow`` — abstract interpretation over circuit stage DAGs.

The ERC10x family rules walk *local* input cones and stop at the first
unknown (ERC101 historically bailed out at primary inputs entirely).  This
package closes those blind spots with a classic forward dataflow framework:

* :mod:`framework` — a generic worklist solver (:func:`solve_forward`) over
  a :class:`~repro.netlist.circuit.Circuit`'s nets, parameterized by a
  :class:`ForwardAnalysis` (bottom/join/transfer per stage kind) with
  widening for cyclic latch structures;
* :mod:`phase` — clock-phase analysis (``DFA301``): propagates a
  precharge-level lattice to catch D2 phase races, clock-cone contamination
  through derived clocks, and over-deep time-borrowing chains;
* :mod:`monotone` — monotonicity analysis (``DFA302``): whole-circuit
  monotone-rising/falling/non-monotone propagation subsuming ERC101's cone
  walk, seeded from declared primary-input phases;
* :mod:`interval` — interval STA (``DFA303``): propagates delay/slope
  intervals of the posynomial component models over the sizing-variable box
  and issues a sound pre-GP verdict (``provably-infeasible`` /
  ``provably-feasible`` / ``unknown``) via :func:`interval.screen_feasibility`.

``phase`` and ``monotone`` register ordinary circuit rules in the
``dataflow`` group and run under :func:`repro.lint.runner.lint_circuit`;
``interval`` (like the GP rules) is driven by its own analyzer because it
needs a model library and a delay spec.
"""

from .framework import ForwardAnalysis, SolveResult, solve_forward

__all__ = ["ForwardAnalysis", "SolveResult", "solve_forward"]
