"""Generic forward dataflow solver over a circuit's stage DAG.

A :class:`ForwardAnalysis` assigns every net an abstract value from a join
semilattice.  Sources (primary inputs and clock nets) are seeded with
:meth:`ForwardAnalysis.source_value`; every stage contributes
``transfer(inputs)`` to its output net; nets with several drivers (tristate
buses, pass-gate merges) take the join of all contributions.  The solver
iterates a worklist to the least fixpoint.

Circuits are *supposed* to be DAGs, but lint must not assume its subject is
well-formed — latch-like loops (a keeper drawn as an explicit stage, a
miswired feedback path) would cycle forever on a lattice with infinite
ascending chains.  The solver therefore counts value *changes* per net and,
past :data:`WIDEN_AFTER` changes, replaces the join with
:meth:`ForwardAnalysis.widen` (top, for the bundled analyses), which is
required to be a fixpoint of further joins/transfers, guaranteeing
termination on arbitrary graphs.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from ...netlist.circuit import Circuit
from ...netlist.stages import Stage
from ...obs import metrics, trace

#: Number of value changes a single net may go through before the solver
#: widens it.  Acyclic circuits never hit this (each net changes at most
#: lattice-height times, and the bundled lattices are short); only cyclic
#: structures do.
WIDEN_AFTER = 8


class ForwardAnalysis:
    """One dataflow analysis: a lattice plus per-stage transfer functions.

    Subclasses define the value domain.  Values must be hashable/comparable
    with ``==`` (frozen dataclasses work well).  ``join`` must be
    commutative, associative, and idempotent; ``transfer`` must be monotone
    in each input for the fixpoint to be the least one (soundness of the
    *verdicts* additionally needs the transfer functions to over-approximate
    the concrete circuit semantics — argued per analysis).
    """

    #: Short name used for spans/metrics (``lint.dataflow.<name>``).
    name = "forward"

    def bottom(self) -> Any:
        """The no-information-yet value (identity of ``join``)."""
        raise NotImplementedError

    def source_value(self, circuit: Circuit, net_name: str) -> Any:
        """Initial value of a source net (primary input or clock)."""
        raise NotImplementedError

    def transfer(self, circuit: Circuit, stage: Stage, inputs: Dict[str, Any]) -> Any:
        """Output-net value contributed by ``stage`` given per-pin input
        values (keyed by pin name)."""
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def widen(self, old: Any, new: Any) -> Any:
        """Called instead of plain join once a net changed :data:`WIDEN_AFTER`
        times.  Must return a value no further join/transfer can move (top)."""
        raise NotImplementedError


@dataclass
class SolveResult:
    """Fixpoint of one analysis over one circuit."""

    values: Dict[str, Any]
    #: Nets the solver had to widen (non-empty only for cyclic circuits).
    widened: Tuple[str, ...] = ()
    #: Total stage transfer evaluations.
    visits: int = 0
    runtime_s: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    def value(self, net_name: str) -> Any:
        return self.values[net_name]


def solve_forward(circuit: Circuit, analysis: ForwardAnalysis) -> SolveResult:
    """Run ``analysis`` to fixpoint over ``circuit``; returns per-net values.

    Deterministic: the worklist is seeded in stage-declaration order and
    processed FIFO, so reports are stable across runs.
    """
    t0 = time.perf_counter()
    with trace.span(
        f"dataflow:{analysis.name}", circuit=circuit.name
    ) as span:
        values: Dict[str, Any] = {
            name: analysis.bottom() for name in circuit.nets
        }
        sources = set(circuit.primary_inputs) | set(circuit.clock_nets())
        for name in sources:
            values[name] = analysis.source_value(circuit, name)

        #: Last contribution of each stage to its output net; merged with
        #: sibling drivers' contributions (and the source seed, for driven
        #: source nets) at every update.
        contributions: Dict[str, Any] = {}
        changes: Dict[str, int] = {}
        widened: set = set()
        visits = 0

        queue = deque(stage.name for stage in circuit.stages)
        queued = set(queue)
        while queue:
            stage_name = queue.popleft()
            queued.discard(stage_name)
            stage = circuit.stage(stage_name)
            visits += 1
            inputs = {
                pin.name: values[pin.net.name] for pin in stage.inputs
            }
            contribution = analysis.transfer(circuit, stage, inputs)
            if contributions.get(stage_name, _MISSING) == contribution:
                continue
            contributions[stage_name] = contribution
            out = stage.output.name
            merged = (
                analysis.source_value(circuit, out)
                if out in sources
                else analysis.bottom()
            )
            for driver in circuit.drivers_of(out):
                if driver.name in contributions:
                    merged = analysis.join(merged, contributions[driver.name])
            if merged == values[out]:
                continue
            changes[out] = changes.get(out, 0) + 1
            if changes[out] > WIDEN_AFTER:
                merged = analysis.widen(values[out], merged)
                widened.add(out)
            values[out] = merged
            for consumer, _pin in circuit.fanout_of(out):
                if consumer.name not in queued:
                    queue.append(consumer.name)
                    queued.add(consumer.name)

        runtime = time.perf_counter() - t0
        span.set_attrs(visits=visits, widened=len(widened))
        metrics.counter(f"lint.dataflow.{analysis.name}.runs").inc()
        metrics.histogram(f"lint.dataflow.{analysis.name}.ms").observe(
            runtime * 1e3
        )
        return SolveResult(
            values=values,
            widened=tuple(sorted(widened)),
            visits=visits,
            runtime_s=runtime,
        )


class _Missing:
    """Sentinel distinct from every lattice value (including ``None``)."""

    def __eq__(self, other) -> bool:  # pragma: no cover - identity only
        return self is other

    def __hash__(self) -> int:  # pragma: no cover
        return id(self)


_MISSING = _Missing()
