"""Circuit-family ERC rules (``ERC101``–``ERC107``) — Section 4 semantics.

The paper's macro database mixes three circuit families (static CMOS,
pass/tristate, domino); each carries usage rules that a purely structural
check cannot see.  These rules encode the family discipline the Section-2
editing workflow can silently break:

* domino inputs must be *monotone rising* during evaluate (odd inversion
  parity back to the upstream dynamic node);
* footless (D2) dominos must be fed from clocked domino trees so their
  inputs are guaranteed low during precharge;
* deep unkept evaluate stacks are charge-sharing hazards;
* pass-gate chains need restoring stages;
* shared-driver nets (tristate buses, pass muxes) need distinct — and for
  encoded pairs, complementary — select nets;
* clocks should not wander into data cones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..netlist.circuit import Circuit
from ..netlist.nets import NetKind, PinClass
from ..netlist.stages import Stage, StageKind
from .diagnostics import Severity
from .registry import rule

#: Longest run of pass gates allowed without a restoring (actively driven)
#: stage.  RC delay grows quadratically with the run length; the macros in
#: the database restore after every rank.
MAX_PASS_CHAIN = 2

#: Evaluate stacks at least this deep with no keeper get a charge-sharing
#: hazard warning (internal stack nodes share charge with the dynamic node).
CHARGE_SHARE_DEPTH = 3


def _domino_cone_roots(
    circuit: Circuit, net_name: str
) -> List[Tuple[str, int, Optional[Stage]]]:
    """Trace a domino data input back through static/pass stages.

    Returns the cone's roots as ``(net, inversion_parity, driver_stage)``
    tuples, where ``driver_stage`` is the root's driver (a domino stage) or
    ``None`` for primary inputs / undriven nets.  XOR stages are reported as
    roots with parity ``-1`` (non-monotone — no parity exists).
    """
    roots: List[Tuple[str, int, Optional[Stage]]] = []
    seen: Set[Tuple[str, int]] = set()
    stack: List[Tuple[str, int]] = [(net_name, 0)]
    while stack:
        net, parity = stack.pop()
        if (net, parity) in seen:
            continue
        seen.add((net, parity))
        drivers = circuit.drivers_of(net)
        if not drivers:
            roots.append((net, parity, None))
            continue
        for driver in drivers:
            if driver.kind is StageKind.DOMINO:
                roots.append((net, parity, driver))
            elif driver.kind is StageKind.XOR:
                roots.append((net, -1, driver))
            else:
                step = 0 if driver.kind is StageKind.PASSGATE else 1
                for pin in driver.data_pins():
                    stack.append((pin.net.name, parity + step))
    return roots


@rule("ERC101", "domino monotonicity", "family", Severity.ERROR,
      facets=("topology", "phases"))
def check_domino_monotonicity(ctx) -> None:
    """A domino evaluate network only sees monotone-rising inputs when the
    static chain from the upstream dynamic node carries an *odd* number of
    inversions (the dynamic node itself falls; the output buffer restores
    the rising sense).  Even parity feeds the evaluate NMOS a falling edge —
    the classic monotonicity violation; an XOR in the cone is non-monotone
    outright.

    Cones rooting at a primary input are judged by the input's *declared*
    phase (:meth:`~repro.netlist.circuit.Circuit.declare_input_phase`): a
    ``mono_rise`` input needs even parity to stay rising, ``mono_fall`` odd,
    and ``async`` is never safe.  Undeclared (or ``steady``) inputs are
    assumed quiet during evaluate, the rule's historical behavior."""
    for stage in ctx.circuit.stages:
        if stage.kind is not StageKind.DOMINO:
            continue
        for pin in stage.data_pins():
            for root_net, parity, driver in _domino_cone_roots(
                ctx.circuit, pin.net.name
            ):
                if driver is None:
                    declared = ctx.circuit.input_phase(root_net)
                    if parity >= 0 and (
                        (declared == "mono_rise" and parity % 2 == 1)
                        or (declared == "mono_fall" and parity % 2 == 0)
                    ):
                        ctx.emit(
                            f"primary input {root_net} is declared "
                            f"{declared} but reaches this evaluate input "
                            f"through {parity} inversion(s) — it falls "
                            "during evaluate",
                            stage=stage.name,
                            pin=pin.name,
                        )
                    elif declared == "async":
                        ctx.emit(
                            f"primary input {root_net} is declared async "
                            "(non-monotone) and reaches a domino evaluate "
                            "input",
                            stage=stage.name,
                            pin=pin.name,
                        )
                    continue  # steady/undeclared: quiet during evaluate
                if parity == -1:
                    ctx.emit(
                        f"non-monotone XOR stage {driver.name} in the input "
                        "cone of a domino evaluate network",
                        stage=stage.name,
                        pin=pin.name,
                    )
                elif driver.kind is StageKind.DOMINO and parity % 2 == 0:
                    ctx.emit(
                        f"domino output {root_net} reaches this evaluate "
                        f"input through {parity} inversion(s) — even parity "
                        "is non-monotone",
                        stage=stage.name,
                        pin=pin.name,
                    )


@rule("ERC102", "D2 precharge discipline", "family", Severity.ERROR,
      facets=("topology",))
def check_d2_ordering(ctx) -> None:
    """A footless (D2) domino has no clocked evaluate transistor, so its
    inputs must be *guaranteed low* while the clock is low — which holds
    only when every input cone roots at a (buffered) domino output.  A D2
    fed by raw primary inputs or pass logic can short the precharge path."""
    for stage in ctx.circuit.stages:
        if stage.kind is not StageKind.DOMINO or stage.clocked:
            continue
        for pin in stage.data_pins():
            for root_net, parity, driver in _domino_cone_roots(
                ctx.circuit, pin.net.name
            ):
                if driver is not None:
                    continue  # domino-rooted cones are ERC101's business
                ctx.emit(
                    f"footless (D2) domino input cone roots at {root_net}, "
                    "which is not a clocked domino output — not guaranteed "
                    "low during precharge",
                    stage=stage.name,
                    pin=pin.name,
                )


@rule("ERC103", "charge-sharing hazard", "family", Severity.WARNING,
      facets=("topology", "sizing"))
def check_charge_sharing(ctx) -> None:
    """Deep evaluate stacks without a keeper are charge-sharing hazards:
    internal stack nodes redistribute the dynamic node's charge when lower
    transistors turn on first.  The depth/keeper trigger is unchanged from
    the original heuristic (so existing waivers keep matching), but the
    message now carries the quantitative worst-case dip computed by the
    NSA601 certificate engine (:mod:`repro.lint.electrical`) — this rule is
    a thin facade over that analysis.  Findings aggregate per regularity
    group so a 64-bit datapath reports each shape once."""
    groups: Dict[Tuple, List[Stage]] = {}
    for stage in ctx.circuit.stages:
        if stage.kind is not StageKind.DOMINO:
            continue
        depth = max(stage.leg_sizes) if stage.leg_sizes else 0
        if depth < CHARGE_SHARE_DEPTH or stage.params.get("keeper"):
            continue
        key = (stage.kind.value, depth, tuple(sorted(stage.labels())))
        groups.setdefault(key, []).append(stage)
    if not groups:
        return
    certs: Dict[str, object] = {}
    try:
        from .electrical.model import charge_share_certificates

        certs = {
            cert.stage: cert
            for cert in charge_share_certificates(
                ctx.circuit, options=ctx.options
            )
        }
    except Exception:  # pragma: no cover - stay a pure topology heuristic
        pass
    for (_, depth, _), members in sorted(groups.items()):
        example = min(members, key=lambda s: s.name)
        count = (
            f"{len(members)} stages like {example.name}"
            if len(members) > 1
            else example.name
        )
        quantified = ""
        cert = certs.get(example.name)
        if cert is not None:
            quantified = (
                f" — worst-case dip {cert.dip:.1%} of VDD vs budget "
                f"{cert.allowed:.1%} (margin {cert.margin:+.1%})"
            )
        ctx.emit(
            f"evaluate stack depth {depth} with no keeper "
            f"(charge-sharing hazard): {count}{quantified}",
            stage=example.name,
        )


@rule("ERC104", "pass-gate chain depth", "family", Severity.ERROR,
      facets=("topology",))
def check_pass_chain_depth(ctx) -> None:
    """Runs of pass gates longer than ``MAX_PASS_CHAIN`` without a restoring
    stage degrade quadratically (distributed RC) and lose level; the macro
    library buffers after every rank.  Reported once per maximal chain."""
    depth: Dict[str, int] = {}

    def chain_depth(stage: Stage, visiting: Set[str]) -> int:
        if stage.name in depth:
            return depth[stage.name]
        if stage.name in visiting:  # cyclic pass structure: ERC009 territory
            return 1
        visiting.add(stage.name)
        upstream = 0
        for pin in stage.data_pins():
            for driver in ctx.circuit.drivers_of(pin.net.name):
                if driver.kind is StageKind.PASSGATE:
                    upstream = max(upstream, chain_depth(driver, visiting))
        visiting.discard(stage.name)
        depth[stage.name] = upstream + 1
        return depth[stage.name]

    for stage in ctx.circuit.stages:
        if stage.kind is StageKind.PASSGATE:
            chain_depth(stage, set())
    for stage_name, chain in sorted(depth.items()):
        if chain <= MAX_PASS_CHAIN:
            continue
        # Only flag chain-maximal gates: skip if some downstream pass gate
        # extends this chain (it will be flagged instead).
        stage = ctx.circuit.stage(stage_name)
        extended = any(
            consumer.kind is StageKind.PASSGATE
            and pin.pin_class is PinClass.DATA
            for consumer, pin in ctx.circuit.fanout_of(stage.output.name)
        )
        if not extended:
            ctx.emit(
                f"pass-gate chain of depth {chain} without a restoring "
                f"stage (max {MAX_PASS_CHAIN})",
                stage=stage_name,
            )


@rule("ERC105", "shared-driver select distinctness", "family",
      Severity.ERROR, facets=("topology",))
def check_shared_driver_selects(ctx) -> None:
    """Tristate buses and weak/encoded pass-gate merges rely on at most one
    driver being enabled; two drivers steered by the *same* select net are
    enabled together and fight.  (Strong-mutex pass muxes are ERC008.)"""
    tristate_groups: Dict[str, List[Stage]] = {}
    pass_groups: Dict[str, List[Stage]] = {}
    for stage in ctx.circuit.stages:
        if stage.kind is StageKind.TRISTATE:
            tristate_groups.setdefault(stage.output.name, []).append(stage)
        elif (
            stage.kind is StageKind.PASSGATE
            and stage.params.get("mutex") != "strong"
        ):
            pass_groups.setdefault(stage.output.name, []).append(stage)

    def check_group(out: str, gates: List[Stage], noun: str) -> None:
        if len(gates) < 2:
            return
        selects = []
        for gate in gates:
            pins = gate.select_pins()
            if not pins:
                ctx.emit(
                    f"shared-driver {noun} has no select/enable pin",
                    stage=gate.name,
                )
                continue
            selects.append(pins[0].net.name)
        if len(set(selects)) != len(selects):
            ctx.emit(
                f"{noun}s driving a shared net are steered by the same "
                "select net",
                net=out,
            )

    for out, gates in sorted(tristate_groups.items()):
        check_group(out, gates, "tristate")
    for out, gates in sorted(pass_groups.items()):
        check_group(out, gates, "pass gate")


@rule("ERC106", "clock in data cone", "family", Severity.WARNING,
      facets=("topology",))
def check_clock_as_data(ctx) -> None:
    """A clock-kind net feeding a DATA or SELECT pin usually means a hookup
    mistake (the reverse of ERC005); legitimate clock gating is rare enough
    in a datapath macro to deserve a flag."""
    for stage in ctx.circuit.stages:
        for pin in stage.inputs:
            if (
                pin.net.kind is NetKind.CLOCK
                and pin.pin_class is not PinClass.CLOCK
            ):
                ctx.emit(
                    f"clock net {pin.net.name} used as "
                    f"{pin.pin_class.value} input",
                    stage=stage.name,
                    pin=pin.name,
                )


@rule("ERC107", "encoded pair complement", "family", Severity.WARNING,
      facets=("topology",))
def check_encoded_complement(ctx) -> None:
    """An encoded-select pass pair (Figure 2c) is mutex only because its two
    selects are complements; the structural witness is an inverter between
    the two select nets (in either direction).  Pairs whose complement is
    not derivable inside the macro get a warning, not an error."""
    groups: Dict[str, List[Stage]] = {}
    for stage in ctx.circuit.stages:
        if (
            stage.kind is StageKind.PASSGATE
            and stage.params.get("mutex") == "encoded"
        ):
            groups.setdefault(stage.output.name, []).append(stage)

    def inverter_between(a: str, b: str) -> bool:
        for driver in ctx.circuit.drivers_of(b):
            if driver.kind is StageKind.INV and any(
                p.net.name == a for p in driver.data_pins()
            ):
                return True
        return False

    for out, gates in sorted(groups.items()):
        if len(gates) != 2:
            ctx.emit(
                f"encoded pass-gate group has {len(gates)} gate(s), "
                "expected a complementary pair",
                net=out,
            )
            continue
        pins = [g.select_pins() for g in gates]
        if not all(pins):
            ctx.emit("encoded pass gate has no select pin", net=out)
            continue
        s0, s1 = pins[0][0].net.name, pins[1][0].net.name
        if not (inverter_between(s0, s1) or inverter_between(s1, s0)):
            ctx.emit(
                f"encoded pair selects {s0}/{s1} are not inverter "
                "complements of each other",
                net=out,
            )
