"""The paper's primary contribution: the SMART macro design advisor flow."""

from .advisor import PRUNE_FACTOR, SmartAdvisor
from .constraints import DesignConstraints
from .cost import CostBreakdown, evaluate_cost
from .editing import merge_condition_gate, pin_sizes, retarget_load, unpin_sizes
from .explore import (
    ParetoPoint,
    TradeoffCurve,
    TradeoffPoint,
    area_delay_curve,
    explore_topologies,
    pareto_frontier,
)
from .savings import SavingsResult, macro_savings, measure_and_resize
from .report import AdvisorReport, CandidateResult

__all__ = [
    "SmartAdvisor",
    "PRUNE_FACTOR",
    "DesignConstraints",
    "CostBreakdown",
    "evaluate_cost",
    "AdvisorReport",
    "CandidateResult",
    "TradeoffCurve",
    "TradeoffPoint",
    "ParetoPoint",
    "area_delay_curve",
    "explore_topologies",
    "pareto_frontier",
    "SavingsResult",
    "macro_savings",
    "measure_and_resize",
    "merge_condition_gate",
    "pin_sizes",
    "unpin_sizes",
    "retarget_load",
]
