"""Result containers and rendering for advisor runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..sizing.engine import SizingResult
from .cost import CostBreakdown


@dataclass
class CandidateResult:
    """One topology's outcome in an advisor run."""

    topology: str
    description: str
    feasible: bool
    sizing: Optional[SizingResult] = None
    cost: Optional[CostBreakdown] = None
    reason: str = ""
    #: Rejected by the interval-STA screen before any GP solve was attempted
    #: (a provably-infeasible certificate, not a solver failure).
    screened: bool = False
    #: Worst post-sizing electrical noise margin (NSA6xx, fraction of VDD)
    #: at the solved widths; ``None`` when the topology has no
    #: noise-sensitive nodes or sizing failed.  Negative means some node
    #: dips past its budget at the chosen sizing.
    noise_margin: Optional[float] = None
    #: Issued post-solve solution certificate payload
    #: (``smart-solution-certificate/1``) when the advisor runs with
    #: ``certify=True``; ``None`` when certification is off or was
    #: skipped defensively.
    certificate: Optional[dict] = None

    @property
    def converged(self) -> bool:
        return bool(self.sizing and self.sizing.converged)


@dataclass
class AdvisorReport:
    """Ranked comparison of every explored topology (the "Comparison Result"
    box of Figure 1)."""

    macro: str
    metric: str
    candidates: List[CandidateResult] = field(default_factory=list)

    @property
    def feasible(self) -> List[CandidateResult]:
        return [c for c in self.candidates if c.feasible and c.converged]

    @property
    def best(self) -> Optional[CandidateResult]:
        """Lowest-cost converged candidate; the designer may override."""
        ranked = self.feasible
        if not ranked:
            return None
        return min(ranked, key=lambda c: c.cost.scalar)

    def ranked(self) -> List[CandidateResult]:
        feasible = sorted(self.feasible, key=lambda c: c.cost.scalar)
        rest = [c for c in self.candidates if c not in feasible]
        return feasible + rest

    def render(self) -> str:
        """Plain-text comparison table."""
        lines = [
            f"SMART advisor report: {self.macro} (metric: {self.metric})",
            f"{'topology':<34} {'status':<12} {'area':>10} {'clock':>10} "
            f"{'power':>10} {'iters':>6} {'time s':>8} {'gp-fb':>5}",
        ]
        for cand in self.ranked():
            if cand.feasible and cand.sizing is not None and cand.cost is not None:
                status = "ok" if cand.converged else "no-conv"
                lines.append(
                    f"{cand.topology:<34} {status:<12} "
                    f"{cand.cost.area:>10.1f} {cand.cost.clock_load:>10.1f} "
                    f"{cand.cost.power:>10.1f} {cand.sizing.iterations:>6d} "
                    f"{cand.sizing.runtime_s:>8.3f} "
                    f"{cand.sizing.gp_fallback_count:>5d}"
                )
            else:
                lines.append(
                    f"{cand.topology:<34} {'infeasible':<12} "
                    f"{'-':>10} {'-':>10} {'-':>10} {'-':>6} {'-':>8} "
                    f"{'-':>5}  {cand.reason}"
                )
        screened = sum(1 for c in self.candidates if c.screened)
        if screened:
            lines.append(
                f"interval-STA screen: {screened} topolog"
                f"{'y' if screened == 1 else 'ies'} proven infeasible "
                "before any GP solve"
            )
        margins = [
            c for c in self.candidates if c.noise_margin is not None
        ]
        if margins:
            worst = min(margins, key=lambda c: c.noise_margin)
            lines.append(
                f"electrical margins (NSA6xx): worst {worst.noise_margin:+.1%}"
                f" of VDD on {worst.topology}"
                + ("" if worst.noise_margin >= 0 else " — budget exceeded")
            )
        best = self.best
        if best is not None:
            lines.append(f"best: {best.topology} (scalar {best.cost.scalar:.1f})")
        return "\n".join(lines)
