"""Design-space exploration sweeps.

Two published uses:

* **area-delay tradeoff** (Figure 6): re-size one topology across a range of
  delay targets and record the area at each — "the trade-off curve generated
  by SMART for this particular topology of the 64-bit adder";
* **topology exploration** (Figure 7): size every candidate topology at one
  constraint point and compare — "with SMART, the exploration at a different
  design constraint is very easy, but to do this manually is an extremely
  tedious job".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..macros.base import MacroSpec
from ..obs import trace
from ..obs.log import get_logger
from ..sizing.engine import SizingError, SmartSizer
from .advisor import SmartAdvisor
from .constraints import DesignConstraints
from .report import AdvisorReport

log = get_logger(__name__)


@dataclass
class TradeoffPoint:
    """One point of an area-delay curve."""

    delay_scale: float      # multiplier on the base delay budget
    spec_delay: float       # the actual budget, ps
    realized_delay: float   # worst realized constrained-path delay, ps
    area: float             # total transistor width, µm
    clock_load: float
    converged: bool

    def normalized(self, base: "TradeoffPoint") -> "TradeoffPoint":
        return TradeoffPoint(
            delay_scale=self.delay_scale,
            spec_delay=self.spec_delay / base.spec_delay,
            realized_delay=(
                self.realized_delay / base.realized_delay
                if base.realized_delay
                else 0.0
            ),
            area=self.area / base.area if base.area else 0.0,
            clock_load=(
                self.clock_load / base.clock_load if base.clock_load else 0.0
            ),
            converged=self.converged,
        )


@dataclass
class TradeoffCurve:
    topology: str
    points: List[TradeoffPoint] = field(default_factory=list)

    def normalized(self, reference_scale: float = 1.0) -> "TradeoffCurve":
        """Every point normalized to the point at ``reference_scale`` (the
        paper normalizes Figure 6 to the loosest-delay solution)."""
        base = min(
            (p for p in self.points if p.converged),
            key=lambda p: abs(p.delay_scale - reference_scale),
            default=None,
        )
        if base is None:
            return TradeoffCurve(self.topology, list(self.points))
        return TradeoffCurve(
            self.topology, [p.normalized(base) for p in self.points]
        )

    def is_monotone(self) -> bool:
        """Area should not increase as the delay budget loosens."""
        converged = [p for p in self.points if p.converged]
        ordered = sorted(converged, key=lambda p: p.spec_delay)
        return all(
            earlier.area >= later.area - 1e-6
            for earlier, later in zip(ordered, ordered[1:])
        )


def area_delay_curve(
    advisor: SmartAdvisor,
    topology: str,
    spec: MacroSpec,
    base_constraints: DesignConstraints,
    scales: Sequence[float] = (0.9, 1.0, 1.1, 1.2, 1.3),
    tolerance: float = 2.0,
) -> TradeoffCurve:
    """Figure-6 sweep: size ``topology`` at each scaled delay budget."""
    curve = TradeoffCurve(topology=topology)
    with trace.span(
        "area_delay_curve", topology=topology, points=len(scales)
    ):
        for scale in scales:
            constraints = base_constraints.scaled(scale)
            with trace.span("curve_point", scale=scale) as sp:
                try:
                    circuit, sizing = advisor.size_topology(
                        topology, spec, constraints, tolerance=tolerance
                    )
                except SizingError as exc:
                    log.debug(
                        "curve point scale=%.2f infeasible: %s", scale, exc
                    )
                    sp.set_attrs(converged=False)
                    curve.points.append(
                        TradeoffPoint(
                            delay_scale=scale,
                            spec_delay=constraints.delay,
                            realized_delay=0.0,
                            area=0.0,
                            clock_load=0.0,
                            converged=False,
                        )
                    )
                    continue
                worst = (
                    max(sizing.realized.values()) if sizing.realized else 0.0
                )
                sp.set_attrs(converged=sizing.converged, area=sizing.area)
                curve.points.append(
                    TradeoffPoint(
                        delay_scale=scale,
                        spec_delay=constraints.delay,
                        realized_delay=worst,
                        area=sizing.area,
                        clock_load=sizing.clock_load,
                        converged=sizing.converged,
                    )
                )
    return curve


def explore_topologies(
    advisor: SmartAdvisor,
    spec: MacroSpec,
    constraints: DesignConstraints,
    topologies: Optional[Sequence[str]] = None,
) -> AdvisorReport:
    """Figure-7 style exploration: all candidates at one constraint point."""
    return advisor.advise(spec, constraints, topologies=topologies)


@dataclass
class ParetoPoint:
    """One solution on an area-vs-clock frontier sweep."""

    topology: str
    clock_weight: float
    area: float
    clock_load: float
    converged: bool

    def dominates(self, other: "ParetoPoint") -> bool:
        return (
            self.area <= other.area
            and self.clock_load <= other.clock_load
            and (self.area < other.area or self.clock_load < other.clock_load)
        )


def pareto_frontier(
    advisor: SmartAdvisor,
    spec: MacroSpec,
    constraints: DesignConstraints,
    topologies: Optional[Sequence[str]] = None,
    clock_weights: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 5.0),
) -> List[ParetoPoint]:
    """Area-vs-clock-load frontier across topologies and objective weights.

    For each topology and each clock weight ``w``, the sizer minimizes
    ``area + w*clock`` at fixed timing; dominated points are filtered out.
    This generalizes Figure 7's two-metric comparison into the trade surface
    a designer would actually pick from.
    """
    from ..sizing.engine import SizingError, SmartSizer

    if topologies is None:
        topologies = [g.name for g in advisor.database.applicable(spec)]
    points: List[ParetoPoint] = []
    with trace.span(
        "pareto_frontier",
        topologies=len(topologies),
        weights=len(clock_weights),
    ):
        points.extend(
            _pareto_points(advisor, spec, constraints, topologies, clock_weights)
        )
    frontier = [
        p for p in points
        if p.converged and not any(q.dominates(p) for q in points if q.converged)
    ]
    frontier.sort(key=lambda p: (p.area, p.clock_load))
    return frontier


def _pareto_points(
    advisor: SmartAdvisor,
    spec: MacroSpec,
    constraints: DesignConstraints,
    topologies: Sequence[str],
    clock_weights: Sequence[float],
) -> List[ParetoPoint]:
    points: List[ParetoPoint] = []
    for topology in topologies:
        try:
            circuit = advisor.database.generator(topology).generate(
                spec, advisor.tech
            )
        except ValueError:
            continue
        for weight in clock_weights:
            if weight == 0.0:
                objective = "area"
            elif weight == 1.0:
                objective = "area+clock"
            else:
                objective = "area+clock"  # weight folded via clock scaling below
            sizer = SmartSizer(circuit, advisor.library, objective=objective)
            if weight not in (0.0, 1.0):
                # Weighted objective: area + w*clock as an explicit posynomial.
                area = circuit.area_posynomial()
                clock = circuit.clock_load_posynomial()
                combined = area + weight * clock if len(clock) else area
                sizer.objective_posynomial = lambda combined=combined: combined
            try:
                result = sizer.size(constraints.to_delay_spec())
            except SizingError:
                continue
            points.append(
                ParetoPoint(
                    topology=topology,
                    clock_weight=weight,
                    area=result.area,
                    clock_load=result.clock_load,
                    converged=result.converged,
                )
            )
    return points
