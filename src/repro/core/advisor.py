"""The SMART advisor — the Figure-1 flow end to end.

Given a macro instance (spec) and its local design constraints, the advisor:

1. pulls the topology choices from the design database;
2. applies *simple pruning of the design space*: a cheap feasibility screen
   (quick STA at nominal sizes) drops topologies that cannot come near the
   delay target at any size;
3. generates each surviving topology's netlist;
4. runs the automated sizer on each (objective = the designer's cost metric);
5. compares the sized solutions and reports — "it can automatically pick the
   best solution based on a specified cost function (area, power) or let the
   designer make his/her own choice".
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Optional

from ..cache.store import SizingCache
from ..macros.base import MacroDatabase, MacroGenerator, MacroSpec
from ..macros.registry import default_database
from ..models.gates import ModelLibrary
from ..models.technology import Technology
from ..obs import metrics, perf, trace
from ..obs.log import get_logger
from ..sim.timing import StaticTimingAnalyzer
from ..sizing.engine import SizingError, SmartSizer
from .constraints import DesignConstraints
from .cost import evaluate_cost
from .report import AdvisorReport, CandidateResult

log = get_logger(__name__)

#: A topology whose nominal-size delay exceeds the budget by this factor is
#: pruned without sizing (the Figure-1 "Simple Pruning of Design Space" box).
PRUNE_FACTOR = 4.0


class SmartAdvisor:
    """Top-level designer-facing entry point.

    ``cache`` (a :class:`repro.cache.SizingCache`) is threaded into every
    sizer the advisor creates: exact hits skip the GP loop after an STA
    re-verification (or a verified solution certificate), near hits
    warm-start it.  ``certify=True`` adds a post-solve gate: every sized
    candidate is audited by the OPT70x solution-certificate machinery
    and marked infeasible when the certificate is rejected — the solved
    point provably fails a constraint the solver claimed satisfied.
    """

    def __init__(
        self,
        database: Optional[MacroDatabase] = None,
        tech: Optional[Technology] = None,
        library: Optional[ModelLibrary] = None,
        cache: Optional[SizingCache] = None,
        certify: bool = False,
    ):
        self.database = database or default_database()
        self.library = library or ModelLibrary(tech or Technology())
        self.tech = self.library.tech
        self.cache = cache
        self.certify = certify
        #: Lazily created per-advisor incremental lint result cache.
        self._lint_cache = None

    # -- design-space pruning ---------------------------------------------------

    def quick_delay_estimate(self, circuit, constraints: DesignConstraints) -> float:
        """Worst output arrival at nominal (geometric-mid) sizes — a cheap
        upper-bound screen, not a promise."""
        analyzer = StaticTimingAnalyzer(circuit, self.library)
        report = analyzer.analyze(
            circuit.size_table.default_env(), input_slope=constraints.input_slope
        )
        return report.worst(circuit.primary_outputs)

    # -- the flow ------------------------------------------------------------------

    def advise(
        self,
        spec: MacroSpec,
        constraints: DesignConstraints,
        topologies: Optional[Iterable[str]] = None,
        sizing_tolerance: float = 2.0,
        workers: int = 1,
    ) -> AdvisorReport:
        """Run the full Figure-1 flow; returns the comparison report.

        ``workers > 1`` sizes the candidate topologies in a process pool
        (one task per topology, results in deterministic database order,
        worker trace spans grafted into this process's trace).  Falls back
        to the inline path when the inputs cannot cross a process boundary.
        """
        if topologies is None:
            generators = self.database.applicable(spec)
        else:
            generators = [self.database.generator(name) for name in topologies]
        report = AdvisorReport(
            macro=f"{spec.macro_type}[{spec.width}]", metric=constraints.cost
        )
        t_start = time.perf_counter()
        with trace.span(
            "advise",
            macro=report.macro,
            metric=constraints.cost,
            candidates=len(generators),
            workers=max(1, workers),
        ) as sp:
            candidates = None
            if workers > 1 and len(generators) > 1:
                candidates = self._advise_parallel(
                    generators, spec, constraints, sizing_tolerance, workers
                )
            if candidates is None:
                candidates = [
                    self._try_topology(
                        generator, spec, constraints, sizing_tolerance
                    )
                    for generator in generators
                ]
            report.candidates.extend(candidates)
            best = report.best
            sp.set_attrs(
                feasible=len(report.feasible),
                best=best.topology if best else None,
            )
        self._record_run(
            report, spec, constraints, sp,
            wall_s=time.perf_counter() - t_start,
            workers=max(1, workers),
        )
        log.info(
            "advise %s: %d/%d topologies feasible, best=%s",
            report.macro, len(report.feasible), len(report.candidates),
            best.topology if best else "none",
        )
        return report

    def size_topology(
        self,
        topology: str,
        spec: MacroSpec,
        constraints: DesignConstraints,
        tolerance: float = 2.0,
    ):
        """Size one named topology; returns ``(circuit, SizingResult)``."""
        with trace.span("size_topology", topology=topology):
            generator = self.database.generator(topology)
            circuit = generator.generate(spec, self.tech)
            self._apply_pins(circuit, constraints)
            lint_errors = self._lint_gate(circuit)
            if lint_errors:
                raise SizingError(f"{circuit.name}: {lint_errors}")
            sizer = SmartSizer(
                circuit,
                self.library,
                objective=constraints.cost,
                otb_borrow=constraints.otb_borrow,
                cache=self.cache,
            )
            result = sizer.size(constraints.to_delay_spec(), tolerance=tolerance)
        return circuit, result

    # -- internals --------------------------------------------------------------------

    def _record_run(
        self,
        report: AdvisorReport,
        spec: MacroSpec,
        constraints: DesignConstraints,
        advise_span,
        *,
        wall_s: float,
        workers: int,
    ) -> None:
        """Append one run-ledger record for this advise invocation.

        Everything here (fingerprints, span rollups) is only computed when a
        ledger is active — the default path pays one ``is None`` check.
        """
        if perf.get_ledger() is None:
            return
        tracer = trace.get_tracer()
        subtree = (
            perf.collect_subtree(tracer.spans, advise_span.span_id)
            if isinstance(tracer, trace.Tracer)
            and advise_span is not trace._NULL_SPAN
            else []
        )
        inner = [s for s in subtree if s.span_id != advise_span.span_id]
        best = report.best
        perf.record_run(
            "advise",
            report.macro,
            wall_s=wall_s,
            spans=subtree,
            spec_fp=perf.payload_digest(dataclasses.asdict(spec)),
            context_fp=perf.payload_digest(dataclasses.asdict(constraints)),
            cache=(
                self.cache.stats.as_dict() if self.cache is not None else None
            ),
            parallel=perf.parallel_rollup(
                [s for s in inner if s.name in ("topology", "advise")],
                workers,
                wall_s,
            ),
            extra={
                "metric": constraints.cost,
                "candidates": len(report.candidates),
                "feasible": len(report.feasible),
                "best": best.topology if best else None,
            },
        )

    def _advise_parallel(
        self,
        generators: List[MacroGenerator],
        spec: MacroSpec,
        constraints: DesignConstraints,
        tolerance: float,
        workers: int,
    ) -> Optional[List["CandidateResult"]]:
        """Fan candidate topologies across a process pool.

        Returns ``None`` when the pool cannot be used (unpicklable inputs,
        no fork support) — the caller then runs the inline path.  Imported
        lazily: :mod:`repro.parallel.pool` imports this module at top level.
        """
        from ..parallel.pool import (
            CandidateTask,
            absorb_outcomes,
            run_candidates,
        )

        tasks = [
            CandidateTask(
                topology=generator.name,
                spec=spec,
                constraints=constraints,
                tolerance=tolerance,
            )
            for generator in generators
        ]
        outcomes = run_candidates(
            tasks,
            workers=workers,
            database=self.database,
            tech=self.tech,
            cache=self.cache,
        )
        if outcomes is None:
            log.info(
                "advise %s: process pool unavailable, sizing inline",
                f"{spec.macro_type}[{spec.width}]",
            )
            return None
        return absorb_outcomes(outcomes, cache=self.cache)

    #: Symbolic-gate enumeration budgets: small enough that the switch-level
    #: check stays a few percent of one GP solve, large enough to catch the
    #: systematic wiring errors SVC401/SVC402 exist for.
    _SYMBOLIC_GATE_OPTIONS = {
        "symbolic_exact_budget": 8,
        "symbolic_samples": 12,
    }

    def _lint_gate(self, circuit) -> Optional[str]:
        """Pre-sizing lint gate: structural + family ERC rules, plus the
        switch-level SVC4xx group when the generator attached a golden
        functional spec.

        Returns a one-line failure reason when the circuit has lint errors
        (fail fast — an electrically broken candidate would only waste GP
        iterations), ``None`` when clean.  Warnings are logged through
        ``repro.obs`` and do not block sizing.

        The gate is incremental: an advisor-lifetime
        :class:`~repro.lint.incremental.RuleResultCache` replays rule
        results for candidates whose input facets are unchanged, so
        re-gating the same topology across widths/targets only pays for
        the rules an edit actually invalidated.
        """
        from ..lint.runner import ALL_CIRCUIT_GROUPS, CIRCUIT_GROUPS, lint_circuit

        if self._lint_cache is None:
            from ..lint.incremental import RuleResultCache

            self._lint_cache = RuleResultCache()
        groups = (
            ALL_CIRCUIT_GROUPS
            if getattr(circuit, "functional_spec", None) is not None
            else CIRCUIT_GROUPS
        )
        with trace.span("lint_gate", circuit=circuit.name) as sp:
            report = lint_circuit(
                circuit, groups=groups, options=self._SYMBOLIC_GATE_OPTIONS,
                cache=self._lint_cache,
            )
            sp.set_attrs(
                errors=len(report.errors), warnings=len(report.warnings)
            )
        for diag in report.warnings:
            log.debug("lint %s: %s", circuit.name, diag.format())
        if report.warnings:
            log.info(
                "lint %s: %d warning(s) (first: %s)",
                circuit.name, len(report.warnings),
                report.warnings[0].rule_id,
            )
        if report.ok:
            return None
        metrics.counter("advisor.topologies_lint_failed").inc()
        first = report.errors[0].format()
        more = len(report.errors) - 1
        return (
            f"lint failed: {first}" + (f" (+{more} more)" if more else "")
        )

    def _screen_gate(self, circuit, constraints: DesignConstraints) -> Optional[str]:
        """Interval-STA gate: prove the budget unreachable over the whole
        size box *before* path extraction or GP solving.

        Unlike :meth:`quick_delay_estimate` (a point heuristic with a 4x
        fudge factor), this is a certificate — it only rejects topologies
        whose first GP round is mathematically infeasible, so no topology
        the sizer could have sized is ever lost here.
        """
        from ..lint.dataflow.interval import screen_feasibility

        with trace.span("interval_screen_gate", circuit=circuit.name) as sp:
            screen = screen_feasibility(
                circuit,
                self.library,
                constraints.to_delay_spec(),
                otb_borrow=constraints.otb_borrow,
            )
            sp.set_attrs(verdict=screen.verdict)
        if not screen.infeasible:
            return None
        metrics.counter("advisor.topologies_screened_infeasible").inc()
        log.debug("screened %s: %s", circuit.name, screen.summary())
        return screen.summary()

    def _electrical_options(
        self, constraints: DesignConstraints
    ) -> Dict[str, float]:
        options: Dict[str, float] = {
            "electrical_input_slope": constraints.input_slope,
        }
        if constraints.charge_sharing_ratio is not None:
            options["electrical_charge_ratio"] = (
                constraints.charge_sharing_ratio
            )
        return options

    def _electrical_gate(
        self, circuit, constraints: DesignConstraints
    ) -> Optional[str]:
        """NSA6xx box pre-screen: prove the noise budgets unreachable over
        the whole size box *before* any GP is built.

        Runs only when the designer asked for a charge-sharing limit
        (``constraints.charge_sharing_ratio``); like :meth:`_screen_gate`
        it rejects on a box-wide certificate, never on a point estimate,
        so no topology the sizer could have saved is lost here.
        """
        if constraints.charge_sharing_ratio is None:
            return None
        from ..lint.electrical import screen_electrical

        with trace.span("electrical_screen_gate", circuit=circuit.name) as sp:
            screen = screen_electrical(
                circuit,
                self.library,
                options=self._electrical_options(constraints),
            )
            sp.set_attrs(verdict=screen.verdict)
        if not screen.infeasible:
            return None
        metrics.counter("advisor.topologies_noise_infeasible").inc()
        log.debug("noise-screened %s: %s", circuit.name, screen.summary())
        return screen.summary()

    def _noise_margin(
        self, circuit, constraints: DesignConstraints, sizing
    ) -> Optional[float]:
        """Worst NSA6xx margin at the solved widths (for the report)."""
        from ..lint.electrical import worst_noise_margin

        t_start = time.perf_counter()
        try:
            margin = worst_noise_margin(
                circuit,
                self.library,
                options=self._electrical_options(constraints),
                env=sizing.resolved,
            )
        except Exception as exc:  # never fail a sized candidate on this
            log.warning(
                "noise margin for %s skipped (%s)", circuit.name, exc
            )
            return None
        perf.record_run(
            "electrical",
            circuit.name,
            wall_s=time.perf_counter() - t_start,
            extra={"noise_margin": margin},
        )
        return margin

    def _certificate_gate(
        self, circuit, sizer, constraints: DesignConstraints, sizing,
        tolerance: float,
    ):
        """Post-solve OPT70x audit of a sized candidate (``certify=True``).

        Returns ``(certificate payload or None, rejection reason or "")``.
        Audit *infrastructure* failures never fail a sized candidate
        (same never-fail pattern as :meth:`_noise_margin`); a certificate
        that runs and comes back not-ok does — the point provably fails a
        constraint.
        """
        from ..lint.solution.audit import SolutionAudit

        t_start = time.perf_counter()
        try:
            audit = SolutionAudit(
                circuit,
                self.library,
                constraints.to_delay_spec(),
                tolerance=tolerance,
                otb_borrow=constraints.otb_borrow,
                objective=constraints.cost,
            )
            cert = audit.certify(
                sizing.widths,
                cache_key=sizer.cache_key(
                    constraints.to_delay_spec(), tolerance
                ).key,
                with_kkt=False,
            )
        except Exception as exc:  # never fail a sized candidate on this
            log.warning(
                "solution certificate for %s skipped (%s)",
                circuit.name, exc,
            )
            return None, ""
        perf.record_run(
            "certificate",
            circuit.name,
            wall_s=time.perf_counter() - t_start,
            extra={"ok": cert.ok, "gate": "advisor"},
        )
        if not cert.ok:
            failed = sorted(
                check for check, verdict in cert.checks.items()
                if not verdict.get("ok", True)
            )
            return cert.to_payload(), (
                f"solution certificate rejected ({', '.join(failed)}): "
                f"worst residual {cert.worst_residual_ps:.2f} ps vs "
                f"tolerance {cert.tolerance:.2f} ps"
            )
        return cert.to_payload(), ""

    def _apply_pins(self, circuit, constraints: DesignConstraints) -> None:
        for label, width in (constraints.pinned_sizes or {}).items():
            if label in circuit.size_table:
                circuit.size_table.pin(label, width)

    def _try_topology(
        self,
        generator: MacroGenerator,
        spec: MacroSpec,
        constraints: DesignConstraints,
        tolerance: float,
    ) -> CandidateResult:
        with trace.span("topology", topology=generator.name) as sp:
            candidate = self._size_candidate(
                generator, spec, constraints, tolerance
            )
            sp.set_attrs(feasible=candidate.feasible)
            if not candidate.feasible:
                sp.set_attrs(reason=candidate.reason)
        return candidate

    def _size_candidate(
        self,
        generator: MacroGenerator,
        spec: MacroSpec,
        constraints: DesignConstraints,
        tolerance: float,
    ) -> CandidateResult:
        try:
            circuit = generator.generate(spec, self.tech)
        except ValueError as exc:
            return CandidateResult(
                topology=generator.name,
                description=generator.description,
                feasible=False,
                reason=f"generation failed: {exc}",
            )
        self._apply_pins(circuit, constraints)

        lint_errors = self._lint_gate(circuit)
        if lint_errors:
            return CandidateResult(
                topology=generator.name,
                description=generator.description,
                feasible=False,
                reason=lint_errors,
            )

        screen_reason = self._screen_gate(circuit, constraints)
        if screen_reason:
            return CandidateResult(
                topology=generator.name,
                description=generator.description,
                feasible=False,
                reason=screen_reason,
                screened=True,
            )

        noise_reason = self._electrical_gate(circuit, constraints)
        if noise_reason:
            return CandidateResult(
                topology=generator.name,
                description=generator.description,
                feasible=False,
                reason=noise_reason,
                screened=True,
            )

        with trace.span("feasibility_screen"):
            estimate = self.quick_delay_estimate(circuit, constraints)
        if estimate > PRUNE_FACTOR * constraints.delay:
            metrics.counter("advisor.topologies_pruned").inc()
            log.debug(
                "pruned %s: nominal delay %.0f ps vs budget %.0f ps",
                generator.name, estimate, constraints.delay,
            )
            return CandidateResult(
                topology=generator.name,
                description=generator.description,
                feasible=False,
                reason=(
                    f"pruned: nominal-size delay {estimate:.0f} ps >> "
                    f"budget {constraints.delay:.0f} ps"
                ),
            )

        sizer = SmartSizer(
            circuit,
            self.library,
            objective=constraints.cost,
            otb_borrow=constraints.otb_borrow,
            pre_screen=False,  # the advisor already ran the interval screen
            cache=self.cache,
        )
        try:
            sizing = sizer.size(constraints.to_delay_spec(), tolerance=tolerance)
        except SizingError as exc:
            metrics.counter("advisor.topologies_infeasible").inc()
            return CandidateResult(
                topology=generator.name,
                description=generator.description,
                feasible=False,
                reason=str(exc),
            )
        metrics.counter("advisor.topologies_sized").inc()
        certificate = None
        if self.certify:
            certificate, reject_reason = self._certificate_gate(
                circuit, sizer, constraints, sizing, tolerance
            )
            if reject_reason:
                metrics.counter("advisor.certificates_rejected").inc()
                return CandidateResult(
                    topology=generator.name,
                    description=generator.description,
                    feasible=False,
                    sizing=sizing,
                    reason=reject_reason,
                    certificate=certificate,
                )
        cost = evaluate_cost(circuit, self.library, sizing.resolved, constraints.cost)
        return CandidateResult(
            topology=generator.name,
            description=generator.description,
            feasible=True,
            sizing=sizing,
            cost=cost,
            noise_margin=self._noise_margin(circuit, constraints, sizing),
            certificate=certificate,
        )
