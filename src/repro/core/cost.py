"""Cost metrics the advisor compares sized topologies with.

The paper's metrics: total transistor width (area, and a direct proxy for
power), clock load (domino topologies), and simulated power (PowerMill; our
substitute is :class:`~repro.sim.power.PowerEstimator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..models.gates import ModelLibrary
from ..netlist.circuit import Circuit
from ..sim.power import PowerEstimator


@dataclass(frozen=True)
class CostBreakdown:
    """All metrics for one sized candidate, plus the scalar used for
    ranking."""

    area: float          # total transistor width, µm
    clock_load: float    # gate width on clock nets, µm
    power: float         # estimated dynamic power, µW
    scalar: float        # the ranked value (depends on the chosen metric)

    def normalized_to(self, other: "CostBreakdown") -> "CostBreakdown":
        """This breakdown with every field divided by ``other``'s (for the
        paper-style normalized tables)."""
        def ratio(x: float, y: float) -> float:
            return x / y if y else float("inf") if x else 1.0

        return CostBreakdown(
            area=ratio(self.area, other.area),
            clock_load=ratio(self.clock_load, other.clock_load),
            power=ratio(self.power, other.power),
            scalar=ratio(self.scalar, other.scalar),
        )


def evaluate_cost(
    circuit: Circuit,
    library: ModelLibrary,
    widths: Mapping[str, float],
    metric: str = "area",
) -> CostBreakdown:
    """Compute every metric for a sized circuit and select the ranking
    scalar per ``metric``."""
    resolved = circuit.size_table.resolve(widths) if not all(
        n in widths for n in circuit.size_table.names()
    ) else dict(widths)
    area = circuit.total_width(resolved)
    clock_load = circuit.clock_load_width(resolved)
    power = PowerEstimator(circuit, library).estimate(resolved).total
    if metric == "area":
        scalar = area
    elif metric == "power":
        scalar = power
    elif metric == "clock":
        scalar = clock_load
    elif metric == "area+clock":
        scalar = area + clock_load
    else:
        raise ValueError(f"unknown cost metric {metric!r}")
    return CostBreakdown(area=area, clock_load=clock_load, power=power, scalar=scalar)
