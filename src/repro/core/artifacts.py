"""Persisting sized designs.

A sizing run's deliverable is the label-to-width assignment plus the
constraints it was produced under; teams check these in next to the
schematic.  The JSON schema is deliberately small and stable:

```json
{
  "format": "smart-sizing/1",
  "circuit": "mux8_unsplit_domino",
  "widths": {"P1": 3.25, "N1": 1.4, ...},
  "spec": {"data": 280.0, ...},
  "result": {"converged": true, "area": 96.1, ...}
}
```
"""

from __future__ import annotations

import json
import os
from typing import Dict, Mapping, Optional

from ..netlist.circuit import Circuit
from ..sizing.constraints import DelaySpec
from ..sizing.engine import SizingResult

FORMAT = "smart-sizing/1"


class ArtifactError(Exception):
    """Raised for malformed or mismatched sizing artifacts."""


def save_sizing(
    path: str,
    circuit: Circuit,
    result: SizingResult,
    spec: Optional[DelaySpec] = None,
) -> None:
    """Write a sized design to ``path`` (JSON)."""
    payload = {
        "format": FORMAT,
        "circuit": circuit.name,
        "widths": {k: float(v) for k, v in result.resolved.items()},
        "result": {
            "converged": result.converged,
            "iterations": result.iterations,
            "area": result.area,
            "clock_load": result.clock_load,
            "worst_violation": result.worst_violation,
        },
    }
    if spec is not None:
        payload["spec"] = {
            "data": spec.data,
            "control": spec.control,
            "evaluate": spec.evaluate,
            "precharge": spec.precharge,
            "phase_budget": spec.phase_budget,
            "input_slope": spec.input_slope,
            "max_output_slope": spec.max_output_slope,
            "max_internal_slope": spec.max_internal_slope,
            "charge_sharing_ratio": spec.charge_sharing_ratio,
        }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def load_sizing(path: str) -> Dict:
    """Read a sizing artifact; validates the format marker."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("format") != FORMAT:
        raise ArtifactError(
            f"{path}: not a {FORMAT} artifact "
            f"(found {payload.get('format')!r})"
        )
    if "widths" not in payload or not isinstance(payload["widths"], dict):
        raise ArtifactError(f"{path}: missing widths")
    return payload


def apply_sizing(circuit: Circuit, payload: Mapping) -> Dict[str, float]:
    """Bind an artifact's widths onto a circuit.

    Checks that every label of the circuit is covered and that no unknown
    labels sneak in (a changed generator would silently mis-size otherwise).
    Returns the resolved width mapping.
    """
    widths = {k: float(v) for k, v in payload["widths"].items()}
    circuit_labels = set(circuit.size_table.names())
    artifact_labels = set(widths)
    missing = circuit_labels - artifact_labels
    extra = artifact_labels - circuit_labels
    if missing:
        raise ArtifactError(
            f"artifact does not size labels: {sorted(missing)[:5]}"
        )
    if extra:
        raise ArtifactError(
            f"artifact has unknown labels: {sorted(extra)[:5]}"
        )
    for name, value in widths.items():
        var = circuit.size_table[name]
        if not (var.lower - 1e-9 <= value <= var.upper + 1e-9):
            raise ArtifactError(
                f"label {name}: width {value} outside bounds "
                f"[{var.lower}, {var.upper}]"
            )
    return widths


def spec_from_payload(payload: Mapping) -> Optional[DelaySpec]:
    """Reconstruct the DelaySpec stored in an artifact (None if absent)."""
    raw = payload.get("spec")
    if raw is None:
        return None
    return DelaySpec(
        data=raw["data"],
        control=raw.get("control"),
        evaluate=raw.get("evaluate"),
        precharge=raw.get("precharge"),
        phase_budget=raw.get("phase_budget"),
        input_slope=raw.get("input_slope", 30.0),
        max_output_slope=raw.get("max_output_slope", 150.0),
        max_internal_slope=raw.get("max_internal_slope", 350.0),
        charge_sharing_ratio=raw.get("charge_sharing_ratio"),
    )
