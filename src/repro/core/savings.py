"""The Section-6.1 savings protocol, packaged.

"In these experiments, we extracted each macro from the design and measured
its loading.  The delay through it was measured using PathMill.  We used the
SMART sizer to produce a design with the same topology and performance.  We
re-ran PathMill to verify the performance of the SMART solution."

Our rendition: the over-design baseline plays the extracted original; the
static timing analyzer plays PathMill; SMART re-sizes the same topology at
the baseline's measured per-class delays and slopes; savings are reductions
in total transistor width (area/power proxy) and clock load.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baseline.overdesign import BaselineResult, OverdesignSizer
from ..macros.base import MacroDatabase, MacroSpec
from ..models.gates import ModelLibrary
from ..netlist.circuit import Circuit
from ..sizing.engine import (
    SizingResult,
    SmartSizer,
    measure_class_delays,
    measure_slopes,
    spec_from_measurement,
)


@dataclass
class SavingsResult:
    """Original-vs-SMART comparison for one macro instance."""

    topology: str
    circuit_name: str
    baseline: BaselineResult
    smart: SizingResult

    @property
    def width_saving(self) -> float:
        """Fractional reduction in total transistor width (Fig 5 / Table 1)."""
        if self.baseline.area <= 0:
            return 0.0
        return 1.0 - self.smart.area / self.baseline.area

    @property
    def clock_saving(self) -> float:
        """Fractional reduction in clock load (Table 1, domino rows)."""
        if self.baseline.clock_load <= 0:
            return 0.0
        return 1.0 - self.smart.clock_load / self.baseline.clock_load

    @property
    def normalized_width(self) -> float:
        """SMART width / original width — the Figure-5 bar height."""
        return 1.0 - self.width_saving

    @property
    def timing_met(self) -> bool:
        """SMART met the original's timing ("within a few pico-seconds")."""
        return self.smart.converged


def measure_and_resize(
    circuit: Circuit,
    library: ModelLibrary,
    topology: str = "",
    margin: float = 1.5,
    objective: str = "area",
    input_slope: float = 30.0,
    precharge_slack: float = 2.5,
    timing_slack: float = 1.05,
    tolerance: float = 2.0,
) -> SavingsResult:
    """Run the full protocol on one macro circuit.

    ``timing_slack`` is the "same performance" equivalence band: the paper
    accepts solutions "within a few pico-seconds of the original design",
    which on a few-hundred-ps macro is a small percent; the default allows
    5%.
    """
    baseline = OverdesignSizer(circuit, library, margin=margin).size(
        input_slope=input_slope
    )
    classes = measure_class_delays(
        circuit, library, baseline.widths, input_slope=input_slope
    )
    out_slope, int_slope = measure_slopes(
        circuit, library, baseline.widths, input_slope=input_slope
    )
    spec = spec_from_measurement(
        classes,
        input_slope=input_slope,
        slack=timing_slack,
        max_output_slope=max(150.0, out_slope * 1.05),
        max_internal_slope=max(350.0, int_slope * 1.05),
        precharge_slack=precharge_slack,
    )
    smart = SmartSizer(circuit, library, objective=objective).size(
        spec, tolerance=tolerance
    )
    return SavingsResult(
        topology=topology or circuit.name,
        circuit_name=circuit.name,
        baseline=baseline,
        smart=smart,
    )


def macro_savings(
    database: MacroDatabase,
    topology: str,
    spec: MacroSpec,
    library: ModelLibrary,
    margin: float = 1.5,
    objective: str = "area",
    **kwargs,
) -> SavingsResult:
    """Generate a macro from the database and run the protocol."""
    circuit = database.generate(topology, spec, library.tech)
    return measure_and_resize(
        circuit, library, topology=topology, margin=margin,
        objective=objective, **kwargs,
    )
