"""Designer-facing constraint bundle for one macro instance.

Figure 1: SMART's inputs are a macro instance with "its local constraints
like delays, slopes and loads", a cost metric, and optional designer
overrides.  :class:`DesignConstraints` carries all of that and lowers to the
sizer's :class:`~repro.sizing.constraints.DelaySpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..sizing.constraints import DelaySpec


@dataclass(frozen=True)
class DesignConstraints:
    """What the designer hands SMART for one macro instance.

    Attributes
    ----------
    delay:
        Worst input-to-output delay budget, ps.
    control_delay / evaluate_delay / precharge_delay:
        Optional per-class budgets (select paths, domino evaluate/precharge);
        default to ``delay``.
    phase_budget:
        Per-phase budget for multi-phase domino paths, ps.
    otb_borrow:
        Opportunistic-time-borrowing window across domino phase boundaries,
        ps (0 disables).
    input_slope:
        Transition time assumed at the macro's inputs, ps.
    max_output_slope / max_internal_slope:
        Reliability slope limits, ps.
    cost:
        ``"area"``, ``"power"``, ``"clock"`` or ``"area+clock"`` — the metric
        the advisor minimizes and ranks topologies by.
    charge_sharing_ratio:
        Optional domino noise (charge-sharing) limit — see
        :class:`~repro.sizing.constraints.DelaySpec`.
    pinned_sizes:
        Designer-controlled labels: ``{label: width}`` fixed before sizing
        (e.g. upsizing a keeper in a noisy region).
    """

    delay: float
    control_delay: Optional[float] = None
    evaluate_delay: Optional[float] = None
    precharge_delay: Optional[float] = None
    phase_budget: Optional[float] = None
    otb_borrow: float = 0.0
    input_slope: float = 30.0
    max_output_slope: float = 150.0
    max_internal_slope: float = 350.0
    charge_sharing_ratio: Optional[float] = None
    cost: str = "area"
    pinned_sizes: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise ValueError("delay budget must be positive")
        if self.cost not in ("area", "power", "clock", "area+clock"):
            raise ValueError(f"unknown cost metric {self.cost!r}")

    def to_delay_spec(self) -> DelaySpec:
        return DelaySpec(
            data=self.delay,
            control=self.control_delay,
            evaluate=self.evaluate_delay,
            precharge=self.precharge_delay,
            phase_budget=self.phase_budget,
            input_slope=self.input_slope,
            max_output_slope=self.max_output_slope,
            max_internal_slope=self.max_internal_slope,
            charge_sharing_ratio=self.charge_sharing_ratio,
        )

    def scaled(self, factor: float) -> "DesignConstraints":
        """All delay budgets scaled by ``factor`` (tradeoff sweeps)."""
        maybe = lambda v: None if v is None else v * factor
        return replace(
            self,
            delay=self.delay * factor,
            control_delay=maybe(self.control_delay),
            evaluate_delay=maybe(self.evaluate_delay),
            precharge_delay=maybe(self.precharge_delay),
            phase_budget=maybe(self.phase_budget),
        )
