"""Macro editing — designer modifications to database schematics.

Section 2: "In a real design, a macro may not always be realized in exactly
the same way it exists in the database.  A few structural changes to the
schematic (e.g., merging in of a few gates of condition logic) may have to be
performed to match RTL ... the designer should be allowed to control
transistor sizes of portions of the macro while letting the automatic sizer
size the rest."

Supported edits:

* :func:`merge_condition_gate` — splice a condition gate (NAND/NOR/INV) in
  front of a macro input, replacing that primary input with the gate's new
  inputs;
* :func:`pin_sizes` / :func:`unpin_sizes` — designer size control per label;
* :func:`retarget_load` — change an output's external load in place.

Every edit re-validates the circuit.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.nets import Net, NetKind, Pin, PinClass
from ..netlist.stages import Stage, StageKind
from ..netlist.validate import validate_circuit

_CONDITION_KINDS = {
    "nand": StageKind.NAND,
    "nor": StageKind.NOR,
    "inv": StageKind.INV,
}


def merge_condition_gate(
    circuit: Circuit,
    input_net: str,
    kind: str,
    new_inputs: Sequence[str],
    pull_up_label: str,
    pull_down_label: str,
    stage_name: Optional[str] = None,
) -> Stage:
    """Drive former primary input ``input_net`` from a new condition gate.

    ``new_inputs`` become primary inputs; ``input_net`` becomes internal.
    Labels are declared with default bounds if new.
    """
    if input_net not in circuit.primary_inputs:
        raise ValueError(f"{input_net} is not a primary input of {circuit.name}")
    try:
        stage_kind = _CONDITION_KINDS[kind]
    except KeyError:
        raise ValueError(f"condition gate kind must be one of {sorted(_CONDITION_KINDS)}")
    if stage_kind is StageKind.INV and len(new_inputs) != 1:
        raise ValueError("an inverter condition gate takes exactly one input")
    if stage_kind is not StageKind.INV and len(new_inputs) < 2:
        raise ValueError(f"{kind} condition gate needs >= 2 inputs")

    circuit.primary_inputs.remove(input_net)
    pins = []
    for name in new_inputs:
        net = circuit.add_net(name, NetKind.SIGNAL)
        circuit.mark_input(name)
        pins.append(Pin(f"in{len(pins)}", net, PinClass.DATA))

    for label in (pull_up_label, pull_down_label):
        if label not in circuit.size_table:
            circuit.size_table.declare(label)

    stage = Stage(
        name=stage_name or f"cond_{input_net}",
        kind=stage_kind,
        inputs=pins,
        output=circuit.net(input_net),
        size_vars={"pull_up": pull_up_label, "pull_down": pull_down_label},
    )
    circuit.add_stage(stage)
    validate_circuit(circuit).raise_if_failed()
    return stage


def pin_sizes(circuit: Circuit, sizes: Mapping[str, float]) -> None:
    """Fix the given labels at designer-chosen widths (the sizer will not
    move them)."""
    for label, width in sizes.items():
        circuit.size_table.pin(label, width)


def unpin_sizes(circuit: Circuit, labels: Sequence[str]) -> None:
    """Return the given labels to the automatic sizer."""
    for label in labels:
        circuit.size_table.unpin(label)


def add_keeper(circuit: Circuit, stage_name: str, ratio: float = 0.1) -> None:
    """Retrofit a half-latch keeper onto a domino stage.

    The Section-2 noise-immunity knob: "on a particularly noisy portion of
    the chip, the designer may like to manually tune certain transistor
    sizes".  ``ratio`` is the keeper width as a fraction of the precharge
    device; the timing models automatically charge the evaluate path with
    the keeper's contention.
    """
    stage = circuit.stage(stage_name)
    if stage.kind is not StageKind.DOMINO:
        raise ValueError(f"{stage_name} is not a domino stage")
    if ratio < 0:
        raise ValueError("keeper ratio must be nonnegative")
    stage.params["keeper"] = float(ratio)
    validate_circuit(circuit).raise_if_failed()


def retarget_load(circuit: Circuit, output_net: str, new_load: float) -> None:
    """Change the external load on a primary output, fF."""
    if output_net not in circuit.primary_outputs:
        raise ValueError(f"{output_net} is not a primary output of {circuit.name}")
    old = circuit.net(output_net)
    replacement = Net(old.name, old.kind, old.wire_cap, new_load, old.wire_res)
    circuit.nets[output_net] = replacement
    circuit._rebind_net(replacement)
