"""Posynomial algebra.

The SMART sizer (Section 5 of the paper) models component delay and slope as
*posynomial* functions of device sizes so that the sizing problem becomes a
geometric program (GP), which is convex after a log transform.  This module
implements the two building blocks:

``Monomial``
    ``c * x1**a1 * x2**a2 * ...`` with ``c > 0`` and real exponents.

``Posynomial``
    A finite sum of monomials.

Both are immutable value types supporting ``+``, ``-`` (only when the result
stays posynomial, i.e. subtraction of like terms with a smaller coefficient),
``*``, ``/`` (division by a monomial or positive scalar) and ``**``.  They can
be evaluated at a positive assignment of their variables, differentiated, and
queried for their variables.

Everything downstream of the model library — constraint generation, the GP
solver, the convergence loop — manipulates these objects, so they are written
to be cheap: a posynomial is a dict from exponent signatures to coefficients.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

Number = Union[int, float]

#: An exponent signature: sorted tuple of (variable, exponent) pairs with no
#: zero exponents.  Used as the dict key that merges like monomial terms.
Signature = Tuple[Tuple[str, float], ...]

_COEFF_EPS = 1e-300


def _make_signature(exponents: Mapping[str, float]) -> Signature:
    """Normalize an exponent mapping into a canonical hashable signature."""
    return tuple(sorted((v, float(e)) for v, e in exponents.items() if e != 0.0))


class Monomial:
    """A positive-coefficient monomial ``c * prod(x_i ** a_i)``.

    Parameters
    ----------
    coefficient:
        Strictly positive multiplier ``c``.
    exponents:
        Mapping from variable name to real exponent.  Zero exponents are
        dropped.
    """

    __slots__ = ("coefficient", "_signature")

    def __init__(self, coefficient: Number, exponents: Mapping[str, float] = ()):
        coefficient = float(coefficient)
        if not coefficient > 0.0:
            raise ValueError(f"monomial coefficient must be > 0, got {coefficient}")
        if not math.isfinite(coefficient):
            raise ValueError(f"monomial coefficient must be finite, got {coefficient}")
        self.coefficient = coefficient
        self._signature = _make_signature(dict(exponents))

    # -- constructors ------------------------------------------------------

    @classmethod
    def variable(cls, name: str) -> "Monomial":
        """The monomial consisting of a single variable ``x``."""
        return cls(1.0, {name: 1.0})

    @classmethod
    def constant(cls, value: Number) -> "Monomial":
        """A constant monomial (no variables)."""
        return cls(value, {})

    @classmethod
    def _from_signature(cls, coefficient: float, signature: Signature) -> "Monomial":
        mono = cls.__new__(cls)
        mono.coefficient = coefficient
        mono._signature = signature
        return mono

    # -- introspection -----------------------------------------------------

    @property
    def exponents(self) -> Dict[str, float]:
        """Exponent mapping (a fresh dict; the monomial itself is immutable)."""
        return dict(self._signature)

    @property
    def signature(self) -> Signature:
        return self._signature

    def variables(self) -> frozenset:
        """The set of variable names appearing with nonzero exponent."""
        return frozenset(v for v, _ in self._signature)

    def is_constant(self) -> bool:
        return not self._signature

    def degree(self, variable: str) -> float:
        """Exponent of ``variable`` in this monomial (0 if absent)."""
        for var, exp in self._signature:
            if var == variable:
                return exp
        return 0.0

    # -- evaluation --------------------------------------------------------

    def evaluate(self, env: Mapping[str, float]) -> float:
        """Evaluate at a positive assignment ``env`` of all variables."""
        value = self.coefficient
        for var, exp in self._signature:
            x = env[var]
            if x <= 0.0:
                raise ValueError(f"variable {var!r} must be positive, got {x}")
            value *= x ** exp
        return value

    def partial(self, variable: str) -> "Monomial":
        """``d(self)/d(variable)`` — only valid when the result is a monomial.

        Requires the exponent of ``variable`` to be positive (so the derivative
        keeps a positive coefficient).  Raises ``ValueError`` otherwise; for
        general derivatives evaluate :meth:`grad` numerically instead.
        """
        exp = self.degree(variable)
        if exp <= 0.0:
            raise ValueError(
                f"partial w.r.t. {variable!r} of {self!r} is not a monomial"
            )
        exponents = self.exponents
        exponents[variable] = exp - 1.0
        return Monomial(self.coefficient * exp, exponents)

    def grad(self, env: Mapping[str, float]) -> Dict[str, float]:
        """Gradient at ``env`` as ``{variable: d/dx}`` (only own variables)."""
        value = self.evaluate(env)
        return {var: value * exp / env[var] for var, exp in self._signature}

    # -- arithmetic --------------------------------------------------------

    def __mul__(self, other: Union["Monomial", Number]) -> "Monomial":
        if isinstance(other, Monomial):
            exponents = self.exponents
            for var, exp in other._signature:
                exponents[var] = exponents.get(var, 0.0) + exp
            return Monomial(self.coefficient * other.coefficient, exponents)
        if isinstance(other, (int, float)):
            return Monomial(self.coefficient * other, self.exponents)
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Monomial", Number]) -> "Monomial":
        if isinstance(other, Monomial):
            return self * other ** -1
        if isinstance(other, (int, float)):
            return Monomial(self.coefficient / other, self.exponents)
        return NotImplemented

    def __rtruediv__(self, other: Number) -> "Monomial":
        if isinstance(other, (int, float)):
            return Monomial.constant(other) / self
        return NotImplemented

    def __pow__(self, power: Number) -> "Monomial":
        power = float(power)
        exponents = {var: exp * power for var, exp in self._signature}
        return Monomial(self.coefficient ** power, exponents)

    def __add__(self, other) -> "Posynomial":
        return Posynomial.from_terms([self]) + other

    __radd__ = __add__

    def __eq__(self, other) -> bool:
        if isinstance(other, Monomial):
            return (
                self._signature == other._signature
                and math.isclose(self.coefficient, other.coefficient, rel_tol=1e-12)
            )
        if isinstance(other, (int, float)):
            return self.is_constant() and math.isclose(self.coefficient, other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((round(self.coefficient, 12), self._signature))

    def __repr__(self) -> str:
        if self.is_constant():
            return f"{self.coefficient:g}"
        parts = [f"{self.coefficient:g}"] if self.coefficient != 1.0 else []
        for var, exp in self._signature:
            parts.append(var if exp == 1.0 else f"{var}^{exp:g}")
        return "*".join(parts) if parts else "1"

    def as_posynomial(self) -> "Posynomial":
        return Posynomial.from_terms([self])


class Posynomial:
    """A sum of :class:`Monomial` terms with like terms merged.

    Construct via :meth:`from_terms`, arithmetic on monomials, or the helpers
    in :mod:`repro.posy.express`.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Signature, float]):
        # Internal constructor; assumes coefficients positive & merged.
        self._terms: Dict[Signature, float] = dict(terms)

    @classmethod
    def from_terms(cls, monomials: Iterable[Union[Monomial, Number]]) -> "Posynomial":
        terms: Dict[Signature, float] = {}
        for mono in monomials:
            if isinstance(mono, (int, float)):
                if mono == 0:
                    continue
                mono = Monomial.constant(mono)
            terms[mono.signature] = terms.get(mono.signature, 0.0) + mono.coefficient
        return cls({sig: c for sig, c in terms.items() if c > _COEFF_EPS})

    @classmethod
    def zero(cls) -> "Posynomial":
        """The empty sum.  Valid as an additive identity only — a GP constraint
        body must be nonempty."""
        return cls({})

    # -- introspection -----------------------------------------------------

    @property
    def terms(self) -> Tuple[Monomial, ...]:
        return tuple(
            Monomial._from_signature(c, sig) for sig, c in sorted(self._terms.items())
        )

    def __iter__(self) -> Iterator[Monomial]:
        return iter(self.terms)

    def __len__(self) -> int:
        return len(self._terms)

    def variables(self) -> frozenset:
        names = set()
        for sig in self._terms:
            names.update(v for v, _ in sig)
        return frozenset(names)

    def is_monomial(self) -> bool:
        return len(self._terms) == 1

    def is_constant(self) -> bool:
        return not self._terms or (len(self._terms) == 1 and () in self._terms)

    def as_monomial(self) -> Monomial:
        if not self.is_monomial():
            raise ValueError(f"{self!r} is not a monomial")
        ((sig, coeff),) = self._terms.items()
        return Monomial._from_signature(coeff, sig)

    def constant_part(self) -> float:
        """Coefficient of the constant term (0 if none)."""
        return self._terms.get((), 0.0)

    # -- evaluation --------------------------------------------------------

    def evaluate(self, env: Mapping[str, float]) -> float:
        total = 0.0
        for sig, coeff in self._terms.items():
            value = coeff
            for var, exp in sig:
                value *= env[var] ** exp
            total += value
        return total

    def grad(self, env: Mapping[str, float]) -> Dict[str, float]:
        """Gradient at ``env`` over this posynomial's own variables."""
        grad: Dict[str, float] = {}
        for sig, coeff in self._terms.items():
            value = coeff
            for var, exp in sig:
                value *= env[var] ** exp
            for var, exp in sig:
                grad[var] = grad.get(var, 0.0) + value * exp / env[var]
        return grad

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other) -> "Posynomial":
        if isinstance(other, Posynomial):
            terms = dict(self._terms)
            for sig, coeff in other._terms.items():
                terms[sig] = terms.get(sig, 0.0) + coeff
            return Posynomial(terms)
        if isinstance(other, Monomial):
            terms = dict(self._terms)
            terms[other.signature] = terms.get(other.signature, 0.0) + other.coefficient
            return Posynomial(terms)
        if isinstance(other, (int, float)):
            if other == 0:
                return self
            return self + Monomial.constant(other)
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other) -> "Posynomial":
        """Subtraction is allowed only when every resulting coefficient stays
        positive (or cancels exactly) — i.e. the result is still posynomial."""
        if isinstance(other, (int, float)):
            other = Monomial.constant(other).as_posynomial() if other else Posynomial.zero()
        elif isinstance(other, Monomial):
            other = other.as_posynomial()
        if not isinstance(other, Posynomial):
            return NotImplemented
        terms = dict(self._terms)
        for sig, coeff in other._terms.items():
            remaining = terms.get(sig, 0.0) - coeff
            if remaining < -1e-9:
                raise ValueError(
                    "subtraction would produce a negative coefficient; "
                    "result would not be posynomial"
                )
            if remaining <= _COEFF_EPS:
                terms.pop(sig, None)
            else:
                terms[sig] = remaining
        return Posynomial(terms)

    def __mul__(self, other) -> "Posynomial":
        if isinstance(other, (int, float)):
            if other == 0:
                return Posynomial.zero()
            if other < 0:
                raise ValueError("cannot scale a posynomial by a negative number")
            return Posynomial({sig: c * other for sig, c in self._terms.items()})
        if isinstance(other, Monomial):
            return Posynomial.from_terms(term * other for term in self.terms)
        if isinstance(other, Posynomial):
            product = Posynomial.zero()
            for term in other.terms:
                product = product + self * term
            return product
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Posynomial":
        if isinstance(other, (int, float)):
            return self * (1.0 / other)
        if isinstance(other, Monomial):
            return self * other ** -1
        if isinstance(other, Posynomial) and other.is_monomial():
            return self / other.as_monomial()
        return NotImplemented

    def __pow__(self, power: int) -> "Posynomial":
        if not isinstance(power, int) or power < 0:
            raise ValueError("posynomial powers must be nonnegative integers")
        result = Monomial.constant(1.0).as_posynomial()
        for _ in range(power):
            result = result * self
        return result

    def __eq__(self, other) -> bool:
        if isinstance(other, Posynomial):
            if set(self._terms) != set(other._terms):
                return False
            return all(
                math.isclose(c, other._terms[sig], rel_tol=1e-9, abs_tol=1e-12)
                for sig, c in self._terms.items()
            )
        if isinstance(other, (Monomial, int, float)):
            if isinstance(other, (int, float)):
                if other == 0:
                    return not self._terms
                other = Monomial.constant(other)
            return self.is_monomial() and self.as_monomial() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset((sig, round(c, 9)) for sig, c in self._terms.items()))

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        return " + ".join(repr(t) for t in self.terms)
