"""Posynomial algebra substrate for the SMART geometric-programming sizer."""

from .express import (
    as_monomial,
    as_posynomial,
    const,
    is_posynomial_in,
    posy_max_bound,
    posy_sum,
    scale_env,
    var,
)
from .terms import Monomial, Posynomial

__all__ = [
    "Monomial",
    "Posynomial",
    "var",
    "const",
    "as_monomial",
    "as_posynomial",
    "posy_sum",
    "posy_max_bound",
    "scale_env",
    "is_posynomial_in",
]
