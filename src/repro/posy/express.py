"""Convenience constructors and checks for posynomial expressions.

These helpers keep model templates (:mod:`repro.models.gates`) and constraint
generation (:mod:`repro.sizing.constraints`) readable: ``var("N1")`` instead of
``Monomial.variable("N1")``, plus structural validation used by tests.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Union

from .terms import Monomial, Posynomial

Expression = Union[Monomial, Posynomial, int, float]


def var(name: str) -> Monomial:
    """The size variable ``name`` as a monomial."""
    return Monomial.variable(name)


def const(value: float) -> Monomial:
    """A positive constant as a monomial."""
    return Monomial.constant(value)


def as_posynomial(expr: Expression) -> Posynomial:
    """Coerce a monomial / scalar / posynomial into a :class:`Posynomial`."""
    if isinstance(expr, Posynomial):
        return expr
    if isinstance(expr, Monomial):
        return expr.as_posynomial()
    if isinstance(expr, (int, float)):
        if expr == 0:
            return Posynomial.zero()
        return Monomial.constant(expr).as_posynomial()
    raise TypeError(f"cannot interpret {expr!r} as a posynomial")


def as_monomial(expr: Expression) -> Monomial:
    """Coerce into a :class:`Monomial`; raises if the expression has >1 term."""
    if isinstance(expr, Monomial):
        return expr
    if isinstance(expr, (int, float)):
        return Monomial.constant(expr)
    if isinstance(expr, Posynomial):
        return expr.as_monomial()
    raise TypeError(f"cannot interpret {expr!r} as a monomial")


def posy_sum(exprs: Iterable[Expression]) -> Posynomial:
    """Sum of expressions, coerced posynomial (empty sum -> zero)."""
    total = Posynomial.zero()
    for expr in exprs:
        total = total + as_posynomial(expr)
    return total


def posy_max_bound(exprs: Iterable[Expression]) -> Posynomial:
    """A posynomial upper bound for ``max(exprs)``: their sum.

    ``max`` itself is not posynomial; in GP practice a shared slack variable is
    used instead.  The sum is a safe (conservative) bound used where a quick
    scalar bound suffices, e.g. problem-size estimation.
    """
    return posy_sum(exprs)


def scale_env(env: Mapping[str, float], factor: float) -> dict:
    """Scale every entry of a positive assignment by ``factor`` (> 0)."""
    if factor <= 0:
        raise ValueError("scale factor must be positive")
    return {name: value * factor for name, value in env.items()}


def is_posynomial_in(expr: Expression, allowed: Iterable[str]) -> bool:
    """True when ``expr`` is a valid posynomial over a subset of ``allowed``.

    Used by model-library self checks: Section 5.1 requires every delay/slope
    template to be posynomial in the size variables it declares.
    """
    try:
        posy = as_posynomial(expr)
    except (TypeError, ValueError):
        return False
    return posy.variables() <= frozenset(allowed)
