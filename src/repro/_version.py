"""Single source of truth for the package version.

Lives in its own leaf module so low-level packages (e.g. the lint
reporters, which stamp ``tool_version`` into JSON/SARIF output) can import
it without pulling in :mod:`repro`'s top-level re-exports — those reach
down into ``core``/``lint`` and would form an import cycle.
"""

__version__ = "1.9.0"
