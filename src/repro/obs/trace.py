"""Hierarchical span tracing for the SMART advisor flow.

The Figure-4 loop's dynamics — how many GP⇄STA round-trips a macro needs,
where the wall-time goes between path extraction, pruning, the convex solve
and the timing analysis — are operational claims of the paper, so they must
be observable.  This module provides:

* :class:`Tracer` — records nested :class:`SpanRecord` spans (wall-time,
  depth, arbitrary attributes) plus point-in-time :class:`EventRecord`
  events, exportable as JSONL and as a rendered tree;
* :class:`NullTracer` — the default, whose every operation is a no-op so
  that un-traced runs pay (benchmarked) negligible overhead;
* module-level :func:`span` / :func:`event` / :func:`add_attrs` that
  dispatch to the process-global active tracer, and :func:`tracing_scope`
  for temporary activation (tests, CLI ``--trace`` / ``--profile``).

JSONL schema (one object per line)::

    {"type": "trace", "version": 1, "unix_time": ...}        # header
    {"type": "span", "id": 2, "parent": 1, "name": "gp_solve",
     "depth": 2, "t0": 0.0123, "t1": 0.0456, "dur": 0.0333,
     "attrs": {...}}
    {"type": "event", "span": 2, "name": "iteration_record",
     "t": 0.034, "attrs": {"iteration": 0, "residual": 1.2}}

Spans are written in *completion* order (children before parents); readers
reconstruct the hierarchy from ``parent`` ids.

Live observation: a :class:`Tracer` accepts *subscribers* (see
:mod:`repro.obs.stream`) whose callbacks fire as spans open/close and events
land — the same records, delivered incrementally instead of after exit.
The JSONL stream a subscriber writes is byte-identical to the post-hoc
:meth:`Tracer.write_jsonl` export because both routes serialize through
:func:`record_line`.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union


def json_sanitize(obj: Any) -> Any:
    """Replace non-finite floats with string sentinels, recursively.

    ``json.dumps`` happily emits ``Infinity``/``NaN``, which are *not* JSON —
    strict parsers (``json.loads(..., parse_constant=...)``, ``jq``, most
    non-Python consumers) reject them.  Engine telemetry legitimately carries
    such values (``worst_violation=inf`` before the first measurement,
    ``gp_objective=nan`` on an infeasible retarget), so every JSON export
    boundary routes through this sanitizer.  Sentinels are strings — the sign
    and NaN-ness survive a round trip — and finite payloads pass unchanged.
    """
    if isinstance(obj, float):
        if math.isnan(obj):
            return "NaN"
        if obj == math.inf:
            return "Infinity"
        if obj == -math.inf:
            return "-Infinity"
        return obj
    if isinstance(obj, dict):
        return {key: json_sanitize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [json_sanitize(value) for value in obj]
    return obj


@dataclass
class SpanRecord:
    """One completed (or in-flight) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    depth: int
    t_start: float                     # seconds since the tracer's epoch
    t_end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return (self.t_end - self.t_start) if self.t_end is not None else 0.0

    def set_attrs(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def to_json(self) -> Dict[str, Any]:
        # ``dur`` is derived from the *rounded* endpoints (not the raw
        # duration) so that export -> load -> re-export is byte-identical:
        # a loaded record carries the rounded times, and rounding is
        # idempotent.
        t0 = round(self.t_start, 6)
        t1 = round(self.t_end, 6) if self.t_end is not None else None
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "t0": t0,
            "t1": t1,
            "dur": round(t1 - t0, 6) if t1 is not None else 0.0,
            "attrs": self.attrs,
        }


@dataclass
class EventRecord:
    """A point-in-time event attached to the span active when it fired."""

    name: str
    t: float
    span_id: Optional[int]
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "event",
            "span": self.span_id,
            "name": self.name,
            "t": round(self.t, 6),
            "attrs": self.attrs,
        }


def header_line(unix_time: float) -> str:
    """The JSONL header record (shared by export and streaming)."""
    return json.dumps(
        {"type": "trace", "version": 1, "unix_time": unix_time}
    )


def record_line(record: Union[SpanRecord, EventRecord]) -> str:
    """One JSONL line for a span/event record.

    Both the post-hoc exporter (:meth:`Tracer.jsonl_lines`) and the live
    stream writer (:class:`repro.obs.stream.JsonlStreamWriter`) serialize
    through this function, which is what makes streamed output byte-identical
    to the after-the-fact export.
    """
    return json.dumps(json_sanitize(record.to_json()), default=str)


class _NullSpan:
    """Shared no-op span: context manager + attribute sink."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set_attrs(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer — every call returns immediately.

    ``span()`` hands back one shared singleton context manager, so a
    disabled trace point costs one method call and nothing else (the
    ≤2 %-overhead budget of the convergence benchmark).
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def add_attrs(self, **attrs: Any) -> None:
        return None

    def graft(
        self,
        spans: Sequence["SpanRecord"],
        events: Sequence["EventRecord"] = (),
        epoch_unix: Optional[float] = None,
    ) -> None:
        return None

    def current(self) -> _NullSpan:
        return _NULL_SPAN

    def subscribe(self, subscriber: Any) -> Any:
        return subscriber

    def unsubscribe(self, subscriber: Any) -> None:
        return None


class _SpanContext:
    """Context manager tying a :class:`SpanRecord` to the tracer's stack."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self.record = record

    def __enter__(self) -> SpanRecord:
        return self.record

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.record.attrs.setdefault("error", repr(exc))
        self._tracer._close(self.record)


class Tracer:
    """Records hierarchical spans and events against a perf-counter epoch."""

    enabled = True

    def __init__(self) -> None:
        self.epoch_unix = time.time()
        self._epoch = time.perf_counter()
        self._next_id = 1
        self._stack: List[SpanRecord] = []
        #: spans in completion order + events in firing order
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []
        self._order: List[Union[SpanRecord, EventRecord]] = []
        self._subscribers: List[Any] = []

    # -- subscribers -------------------------------------------------------

    def subscribe(self, subscriber: Any) -> Any:
        """Attach a live subscriber (see :mod:`repro.obs.stream`).

        The subscriber's ``on_span_open`` / ``on_span_close`` / ``on_event``
        callbacks fire synchronously as the run executes; any of them may be
        absent.  A subscriber exception is logged and detaches nothing —
        observability must never sink the run it observes.  Returns the
        subscriber (for ``writer = tracer.subscribe(JsonlStreamWriter(p))``
        one-liners).
        """
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Any) -> None:
        """Detach a subscriber; unknown subscribers are ignored."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass

    def _notify(self, callback: str, record: Any) -> None:
        for subscriber in self._subscribers:
            hook = getattr(subscriber, callback, None)
            if hook is None:
                continue
            try:
                hook(record)
            except Exception:  # pragma: no cover - defensive
                import logging

                logging.getLogger("repro.obs.trace").exception(
                    "trace subscriber %r failed in %s", subscriber, callback
                )

    # -- recording ---------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            name=name,
            depth=len(self._stack),
            t_start=self._now(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(record)
        if self._subscribers:
            self._notify("on_span_open", record)
        return _SpanContext(self, record)

    def _close(self, record: SpanRecord) -> None:
        record.t_end = self._now()
        # Pop through abandoned children so an exception cannot corrupt
        # sibling nesting.
        while self._stack:
            top = self._stack.pop()
            if top is record:
                break
        self.spans.append(record)
        self._order.append(record)
        if self._subscribers:
            self._notify("on_span_close", record)

    def event(self, name: str, **attrs: Any) -> None:
        record = EventRecord(
            name=name,
            t=self._now(),
            span_id=self._stack[-1].span_id if self._stack else None,
            attrs=dict(attrs),
        )
        self.events.append(record)
        self._order.append(record)
        if self._subscribers:
            self._notify("on_event", record)

    def add_attrs(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op at root)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def current(self) -> Union[SpanRecord, _NullSpan]:
        return self._stack[-1] if self._stack else _NULL_SPAN

    def graft(
        self,
        spans: Sequence[SpanRecord],
        events: Sequence[EventRecord] = (),
        epoch_unix: Optional[float] = None,
    ) -> None:
        """Merge a subtrace recorded by *another* tracer (typically a worker
        process) under the innermost open span.

        Span ids are re-numbered into this tracer's id space; subtrace roots
        are re-parented onto the current span; depths are offset to nest
        correctly.

        Worker spans carry times relative to *their own* perf-counter epoch,
        so they must be re-based onto the parent's axis.  When the caller
        supplies the worker tracer's ``epoch_unix``, the shift is the
        wall-clock skew between the two epochs — fork/join skew is recovered
        exactly and concurrent workers land at their true positions.  Without
        it, the legacy approximation applies: the subtrace is placed so it
        *ends* at this tracer's current clock (worker wall-time stays
        truthful, placement is approximate).
        """
        spans = list(spans)
        events = list(events)
        if not spans and not events:
            return
        anchor = self._stack[-1] if self._stack else None
        anchor_id = anchor.span_id if anchor else None
        depth0 = len(self._stack)
        offset = self._next_id
        ids = {s.span_id for s in spans}
        if epoch_unix is not None:
            shift = epoch_unix - self.epoch_unix
        else:
            t_max = max(
                [s.t_end if s.t_end is not None else s.t_start for s in spans]
                + [e.t for e in events]
            )
            shift = self._now() - t_max
        for s in spans:
            record = SpanRecord(
                span_id=s.span_id + offset,
                parent_id=(
                    s.parent_id + offset if s.parent_id in ids else anchor_id
                ),
                name=s.name,
                depth=s.depth + depth0,
                t_start=s.t_start + shift,
                t_end=s.t_end + shift if s.t_end is not None else None,
                attrs=dict(s.attrs),
            )
            self.spans.append(record)
            self._order.append(record)
            if self._subscribers:
                self._notify("on_span_close", record)
        for e in events:
            record = EventRecord(
                name=e.name,
                t=e.t + shift,
                span_id=(
                    e.span_id + offset if e.span_id in ids else anchor_id
                ),
                attrs=dict(e.attrs),
            )
            self.events.append(record)
            self._order.append(record)
            if self._subscribers:
                self._notify("on_event", record)
        self._next_id = offset + (max(ids) + 1 if ids else 0)

    # -- export ------------------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        yield header_line(self.epoch_unix)
        for record in self._order:
            yield record_line(record)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for line in self.jsonl_lines():
                fh.write(line + "\n")

    def render_tree(self) -> str:
        return render_span_tree(self.spans)

    def profile_summary(self) -> str:
        return profile_summary(self.spans)


# ---------------------------------------------------------------------------
# process-global active tracer
# ---------------------------------------------------------------------------

NULL_TRACER = NullTracer()
_active: Union[Tracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[Tracer, NullTracer]:
    """The currently active tracer (the shared null tracer when disabled)."""
    return _active


def install(tracer: Optional[Tracer]) -> Union[Tracer, NullTracer]:
    """Install ``tracer`` as the process-global tracer (``None`` disables).

    Returns the now-active tracer.
    """
    global _active
    _active = tracer if tracer is not None else NULL_TRACER
    return _active


@contextmanager
def tracing_scope(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Activate a tracer for the duration of a ``with`` block.

    The previous tracer (usually the null tracer) is restored on exit, so
    tests cannot leak tracing state into each other.
    """
    global _active
    previous = _active
    active = tracer or Tracer()
    _active = active
    try:
        yield active
    finally:
        _active = previous


def span(name: str, **attrs: Any):
    """Open a span on the active tracer (no-op when tracing is disabled)."""
    return _active.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a point event on the active tracer."""
    _active.event(name, **attrs)


def add_attrs(**attrs: Any) -> None:
    """Attach attributes to the innermost open span of the active tracer."""
    _active.add_attrs(**attrs)


def enabled() -> bool:
    return _active.enabled


# ---------------------------------------------------------------------------
# JSONL loading + rendering (shared by the tracer and ``smart-advisor
# inspect``, which replays a file written by an earlier process)
# ---------------------------------------------------------------------------


def load_jsonl(path: str) -> "TraceDump":
    """Parse a trace JSONL file back into span/event records.

    The dump preserves the file's record interleaving (``records``), so a
    replayed trace re-exports byte-identically via
    :meth:`TraceDump.jsonl_lines`.
    """
    spans: List[SpanRecord] = []
    events: List[EventRecord] = []
    records: List[Union[SpanRecord, EventRecord]] = []
    unix_time: Optional[float] = None
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not valid JSON ({exc})")
            kind = obj.get("type")
            if kind == "trace":
                unix_time = obj.get("unix_time")
            elif kind == "span":
                record = SpanRecord(
                    span_id=obj["id"],
                    parent_id=obj.get("parent"),
                    name=obj["name"],
                    depth=obj.get("depth", 0),
                    t_start=obj["t0"],
                    t_end=obj.get("t1"),
                    attrs=obj.get("attrs", {}),
                )
                spans.append(record)
                records.append(record)
            elif kind == "event":
                record = EventRecord(
                    name=obj["name"],
                    t=obj["t"],
                    span_id=obj.get("span"),
                    attrs=obj.get("attrs", {}),
                )
                events.append(record)
                records.append(record)
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown record type {kind!r}"
                )
    return TraceDump(
        spans=spans, events=events, unix_time=unix_time, records=records
    )


@dataclass
class TraceDump:
    """A trace loaded from JSONL (what ``smart-advisor inspect`` replays)."""

    spans: List[SpanRecord]
    events: List[EventRecord]
    unix_time: Optional[float] = None
    #: spans + events in original file order (completion/firing order);
    #: ``None`` for hand-built dumps, in which case re-export emits spans
    #: then events.
    records: Optional[List[Union[SpanRecord, EventRecord]]] = None

    def render_tree(self) -> str:
        return render_span_tree(self.spans)

    def profile_summary(self) -> str:
        return profile_summary(self.spans)

    def jsonl_lines(self) -> Iterator[str]:
        """Re-export the dump in the exact format :class:`Tracer` writes."""
        yield header_line(
            self.unix_time if self.unix_time is not None else 0.0
        )
        ordered: Sequence[Union[SpanRecord, EventRecord]] = (
            self.records
            if self.records is not None
            else [*self.spans, *self.events]
        )
        for record in ordered:
            yield record_line(record)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for line in self.jsonl_lines():
                fh.write(line + "\n")


def _format_attrs(attrs: Dict[str, Any], limit: int = 5) -> str:
    parts = []
    for key, value in list(attrs.items())[:limit]:
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    if len(attrs) > limit:
        parts.append("...")
    return " ".join(parts)


def render_span_tree(spans: Sequence[SpanRecord]) -> str:
    """Indented tree of spans in start order, with durations and attrs."""
    if not spans:
        return "(empty trace)"
    children: Dict[Optional[int], List[SpanRecord]] = {}
    by_id = {s.span_id: s for s in spans}
    for s in spans:
        parent = s.parent_id if s.parent_id in by_id else None
        children.setdefault(parent, []).append(s)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.t_start)

    lines: List[str] = []

    def walk(span: SpanRecord, indent: int) -> None:
        attrs = _format_attrs(span.attrs)
        label = "  " * indent + span.name
        lines.append(
            f"{label:<44} {span.duration_s * 1e3:>10.2f} ms"
            + (f"  {attrs}" if attrs else "")
        )
        for child in children.get(span.span_id, []):
            walk(child, indent + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


def profile_summary(spans: Sequence[SpanRecord]) -> str:
    """Aggregate spans by name: calls, total/mean/max wall-time, share.

    The "profile summary table" behind ``--profile``; formatted in the
    plain aligned style of :mod:`repro.sim.report_fmt`.
    """
    if not spans:
        return "profile: (no spans recorded)"
    totals: Dict[str, List[float]] = {}
    for s in spans:
        totals.setdefault(s.name, []).append(s.duration_s)
    # Share is measured against root spans only, so nested spans do not
    # double-count the denominator.
    wall = sum(s.duration_s for s in spans if s.parent_id is None) or sum(
        s.duration_s for s in spans
    )
    rows = sorted(
        (
            (name, len(ds), sum(ds), sum(ds) / len(ds), max(ds))
            for name, ds in totals.items()
        ),
        key=lambda r: -r[2],
    )
    lines = [
        "profile summary:",
        f"{'span':<28} {'calls':>6} {'total ms':>10} {'mean ms':>9} "
        f"{'max ms':>9} {'share':>7}",
    ]
    for name, calls, total, mean, worst in rows:
        share = total / wall if wall else 0.0
        lines.append(
            f"{name:<28} {calls:>6d} {total * 1e3:>10.2f} {mean * 1e3:>9.2f} "
            f"{worst * 1e3:>9.2f} {share:>6.1%}"
        )
    return "\n".join(lines)
