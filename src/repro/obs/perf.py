"""The performance observatory: run ledger, attribution, regression gate.

Whole-benchmark numbers ("per-bit sizing takes 2.6 s") say *that* a kernel
is hot, not *why*; and without a durable record of what each run cost, no PR
can prove it didn't regress.  This module closes both gaps with four layers:

1. **Run ledger** (:class:`RunLedger`, :func:`record_run`) — every advisor /
   sizer / sweep / lint invocation appends one machine-readable record to an
   append-only JSONL store, keyed the same way as :mod:`repro.cache`
   (``circuit_fp`` / ``context_fp`` / ``spec_fp``): per-phase wall/self
   times derived from the span tree, GP iteration counts and residuals,
   cache hit/near-hit/miss stats, parallel worker utilization.

2. **Attribution** (:func:`attribution`, :func:`kernel_hotspots`,
   :func:`critical_path`) — span-tree analysis at function granularity:
   self-time rollups (a span's wall minus its children's), per-kernel
   hot-spot tables (what dominates *inside* each sizing run), and the
   critical path through the trace.  Self-times are an exact partition of
   the tree: for a sequential trace they sum to the root wall-time, which is
   the reconciliation invariant ``repro perf report`` prints and tests
   assert to within 1 %.

3. **Flame-graph exports** (:func:`to_chrome_trace`, :func:`to_speedscope`)
   — the same span tree as Chrome ``trace_event`` JSON (load in
   ``chrome://tracing`` / Perfetto) and as a speedscope evented profile
   (https://speedscope.app).

4. **Regression engine** (:func:`diff_sources`, :class:`PerfDiff`) — noise-
   aware comparison of two ledgers or bench trajectories: median-of-N per
   key, a minimum-effect floor (absolute seconds) AND a relative threshold
   both required before anything is called a regression.  Backs the
   ``repro perf diff`` CLI and the CI perf gate over ``BENCH_*.json``.

The ledger is process-global and opt-in, mirroring the tracer:
:func:`install_ledger` / :func:`ledger_scope` activate it; instrumented
entry points call :func:`record_run`, which is a no-op when no ledger is
active (so un-observed runs pay one ``is None`` check).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .log import get_logger
from .trace import SpanRecord, json_sanitize

log = get_logger(__name__)

LEDGER_FORMAT = "smart-perf-ledger/1"
TRAJECTORY_FORMAT = "smart-bench-trajectory/1"

#: Minimal shape a ledger line must have to be accepted on load.
_REQUIRED_FIELDS = ("format", "kind", "name", "wall_s")


def payload_digest(payload: Any) -> str:
    """Canonical sha256 of a JSON-serializable payload (sanitized first)."""
    blob = json.dumps(
        json_sanitize(payload),
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Attribution: self-time rollups, kernels, critical path
# ---------------------------------------------------------------------------


def _closed(spans: Sequence[SpanRecord]) -> List[SpanRecord]:
    return [s for s in spans if s.t_end is not None]


def self_times(spans: Sequence[SpanRecord]) -> Dict[int, float]:
    """Per-span self time: duration minus the duration of direct children.

    The values partition the tree — for a sequential trace they sum exactly
    to the total root wall-time.  Spans grafted from *concurrent* workers
    can overlap their anchor, driving the anchor's self time negative; it is
    floored at zero (and utilization > 1 shows up in the parallel block of
    the run record instead).
    """
    closed = _closed(spans)
    child_sum: Dict[Optional[int], float] = {}
    for s in closed:
        child_sum[s.parent_id] = child_sum.get(s.parent_id, 0.0) + s.duration_s
    return {
        s.span_id: max(0.0, s.duration_s - child_sum.get(s.span_id, 0.0))
        for s in closed
    }


def root_wall(spans: Sequence[SpanRecord]) -> float:
    """Total wall-time of the trace's root spans (parent outside the set)."""
    closed = _closed(spans)
    ids = {s.span_id for s in closed}
    return sum(s.duration_s for s in closed if s.parent_id not in ids)


@dataclass
class AttributionRow:
    """One span name's aggregate in the self-time rollup."""

    name: str
    calls: int
    total_s: float      # inclusive wall (children included)
    self_s: float       # exclusive wall (children excluded)
    share: float        # self_s / root wall

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": round(self.total_s, 6),
            "self_s": round(self.self_s, 6),
            "share": round(self.share, 6),
        }


def attribution(spans: Sequence[SpanRecord]) -> List[AttributionRow]:
    """Self-time rollup by span name, heaviest self-time first."""
    closed = _closed(spans)
    selfs = self_times(closed)
    wall = root_wall(closed)
    totals: Dict[str, List[float]] = {}
    for s in closed:
        bucket = totals.setdefault(s.name, [0.0, 0.0, 0.0])
        bucket[0] += 1
        bucket[1] += s.duration_s
        bucket[2] += selfs[s.span_id]
    rows = [
        AttributionRow(
            name=name,
            calls=int(calls),
            total_s=total,
            self_s=self_s,
            share=(self_s / wall) if wall else 0.0,
        )
        for name, (calls, total, self_s) in totals.items()
    ]
    rows.sort(key=lambda r: (-r.self_s, r.name))
    return rows


def reconcile(spans: Sequence[SpanRecord]) -> Tuple[float, float]:
    """``(root_wall, sum_of_self_times)`` — equal for a sequential trace.

    ``repro perf report`` prints the pair; tests assert agreement to within
    1 %.  Disagreement beyond that means either clock skew in a graft or
    genuinely concurrent subtrees (utilization > 1).
    """
    closed = _closed(spans)
    return root_wall(closed), sum(self_times(closed).values())


def collect_subtree(
    spans: Sequence[SpanRecord], root_id: int, include_root: bool = True
) -> List[SpanRecord]:
    """All spans at/under ``root_id``, in the order they appear in ``spans``."""
    children: Dict[Optional[int], List[SpanRecord]] = {}
    for s in spans:
        children.setdefault(s.parent_id, []).append(s)
    keep: set = set()
    stack = [root_id]
    while stack:
        node = stack.pop()
        keep.add(node)
        stack.extend(c.span_id for c in children.get(node, ()))
    return [
        s
        for s in spans
        if s.span_id in keep and (include_root or s.span_id != root_id)
    ]


#: The span names that mark a sizing kernel's root in the trace.
KERNEL_SPAN_NAMES = ("size",)


@dataclass
class KernelRow:
    """One sizing kernel's aggregate across a trace."""

    kernel: str                      # circuit name (the kernel identity)
    calls: int
    wall_s: float
    hotspots: List[AttributionRow] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "kernel": self.kernel,
            "calls": self.calls,
            "wall_s": round(self.wall_s, 6),
            "hotspots": [r.to_json() for r in self.hotspots],
        }


def kernel_hotspots(
    spans: Sequence[SpanRecord], top: int = 8
) -> List[KernelRow]:
    """Per-kernel hot-spot tables: what dominates *inside* each sizing run.

    A kernel is one circuit's ``size`` span; multiple sizings of the same
    circuit aggregate.  Each row carries the kernel's inner self-time
    rollup, answering "what dominates per-bit sizing" at function (span
    name) granularity.
    """
    closed = _closed(spans)
    by_kernel: Dict[str, List[SpanRecord]] = {}
    calls: Dict[str, int] = {}
    wall: Dict[str, float] = {}
    for s in closed:
        if s.name not in KERNEL_SPAN_NAMES:
            continue
        kernel = str(s.attrs.get("circuit", s.name))
        calls[kernel] = calls.get(kernel, 0) + 1
        wall[kernel] = wall.get(kernel, 0.0) + s.duration_s
        by_kernel.setdefault(kernel, []).extend(
            collect_subtree(closed, s.span_id)
        )
    rows = [
        KernelRow(
            kernel=kernel,
            calls=calls[kernel],
            wall_s=wall[kernel],
            hotspots=attribution(subtree)[:top],
        )
        for kernel, subtree in by_kernel.items()
    ]
    rows.sort(key=lambda r: -r.wall_s)
    return rows


def critical_path(spans: Sequence[SpanRecord]) -> List[SpanRecord]:
    """The heaviest chain root -> leaf: at each level, the child with the
    largest inclusive duration.  "Where does the time actually go" in one
    list instead of a tree."""
    closed = _closed(spans)
    if not closed:
        return []
    ids = {s.span_id for s in closed}
    children: Dict[Optional[int], List[SpanRecord]] = {}
    for s in closed:
        parent = s.parent_id if s.parent_id in ids else None
        children.setdefault(parent, []).append(s)
    path: List[SpanRecord] = []
    node = max(children.get(None, []), key=lambda s: s.duration_s, default=None)
    while node is not None:
        path.append(node)
        node = max(
            children.get(node.span_id, []),
            key=lambda s: s.duration_s,
            default=None,
        )
    return path


def render_attribution_report(spans: Sequence[SpanRecord]) -> str:
    """The ``repro perf report`` body for a trace: rollup, kernels, path."""
    closed = _closed(spans)
    if not closed:
        return "perf report: (no completed spans)"
    lines: List[str] = []
    wall, self_sum = reconcile(closed)
    rows = attribution(closed)

    lines.append("self-time attribution (exclusive of children):")
    lines.append(
        f"{'span':<28} {'calls':>6} {'total ms':>10} {'self ms':>10} "
        f"{'share':>7}"
    )
    for row in rows:
        lines.append(
            f"{row.name:<28} {row.calls:>6d} {row.total_s * 1e3:>10.2f} "
            f"{row.self_s * 1e3:>10.2f} {row.share:>6.1%}"
        )
    reconciled = (self_sum / wall) if wall else 1.0
    lines.append(
        f"self-time total {self_sum * 1e3:.2f} ms vs root wall "
        f"{wall * 1e3:.2f} ms ({reconciled:.1%} reconciled)"
    )

    kernels = kernel_hotspots(closed)
    if kernels:
        lines.append("")
        lines.append("kernel hot-spots (per sized circuit):")
        for row in kernels:
            lines.append(
                f"  {row.kernel}  x{row.calls}  {row.wall_s * 1e3:.2f} ms"
            )
            for hot in row.hotspots[:5]:
                lines.append(
                    f"    {hot.name:<26} {hot.self_s * 1e3:>10.2f} ms "
                    f"{hot.share:>6.1%}"
                )

    path = critical_path(closed)
    if path:
        lines.append("")
        lines.append("critical path (heaviest chain):")
        for depth, s in enumerate(path):
            lines.append(
                f"  {'  ' * depth}{s.name:<30} {s.duration_s * 1e3:>10.2f} ms"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Flame-graph exports
# ---------------------------------------------------------------------------


def to_chrome_trace(
    spans: Sequence[SpanRecord],
    events: Sequence[Any] = (),
    unix_time: Optional[float] = None,
) -> Dict[str, Any]:
    """Chrome ``trace_event`` JSON (``chrome://tracing`` / Perfetto).

    Spans become complete (``ph: "X"``) events with microsecond timestamps;
    point events become instant (``ph: "i"``) events.
    """
    trace_events: List[Dict[str, Any]] = []
    for s in _closed(spans):
        trace_events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": "span",
                "ts": round(s.t_start * 1e6, 3),
                "dur": round(s.duration_s * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": json_sanitize(s.attrs),
            }
        )
    for e in events:
        trace_events.append(
            {
                "ph": "i",
                "name": e.name,
                "cat": "event",
                "ts": round(e.t * 1e6, 3),
                "s": "t",
                "pid": 1,
                "tid": 1,
                "args": json_sanitize(e.attrs),
            }
        )
    trace_events.sort(key=lambda ev: (ev["ts"], -ev.get("dur", 0.0)))
    payload: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if unix_time is not None:
        payload["otherData"] = {"unix_time": unix_time}
    return payload


def to_speedscope(
    spans: Sequence[SpanRecord], name: str = "repro trace"
) -> Dict[str, Any]:
    """Speedscope "evented" profile of the span tree (speedscope.app).

    Open/close events must nest exactly, so children are clamped into their
    parent's interval (grafted worker spans can overhang by clock skew).
    """
    closed = _closed(spans)
    frames: List[Dict[str, str]] = []
    frame_index: Dict[str, int] = {}

    def frame(frame_name: str) -> int:
        if frame_name not in frame_index:
            frame_index[frame_name] = len(frames)
            frames.append({"name": frame_name})
        return frame_index[frame_name]

    ids = {s.span_id for s in closed}
    children: Dict[Optional[int], List[SpanRecord]] = {}
    for s in closed:
        parent = s.parent_id if s.parent_id in ids else None
        children.setdefault(parent, []).append(s)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.t_start)

    profile_events: List[Dict[str, Any]] = []
    end_value = 0.0

    def walk(span: SpanRecord, lo: float, hi: float) -> None:
        nonlocal end_value
        t0 = min(max(span.t_start, lo), hi)
        t1 = min(max(span.t_end or t0, t0), hi)
        profile_events.append(
            {"type": "O", "frame": frame(span.name), "at": t0}
        )
        cursor = t0
        for child in children.get(span.span_id, []):
            walk(child, cursor, t1)
            cursor = max(cursor, min(max(child.t_end or cursor, cursor), t1))
        profile_events.append(
            {"type": "C", "frame": frame_index[span.name], "at": t1}
        )
        end_value = max(end_value, t1)

    for root in children.get(None, []):
        walk(root, root.t_start, root.t_end or root.t_start)

    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": name,
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": end_value,
                "events": profile_events,
            }
        ],
        "name": name,
        "exporter": "repro.obs.perf",
    }


# ---------------------------------------------------------------------------
# Run ledger
# ---------------------------------------------------------------------------


class RunLedger:
    """Append-only JSONL store of run records.

    Mirrors :class:`repro.cache.SizingCache`'s file discipline: one JSON
    object per line, tolerant loading (corrupt/foreign lines are skipped and
    counted), append-on-write.  ``path=None`` keeps records in memory only
    (tests, ephemeral gating).
    """

    def __init__(self, path: Optional[str] = None, autosync: bool = True):
        self.path = path
        self.autosync = autosync
        self.records: List[dict] = []
        self.skipped_lines = 0
        if path and os.path.exists(path):
            self.records = self._load(path)

    def _load(self, path: str) -> List[dict]:
        records: List[dict] = []
        with open(path) as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.skipped_lines += 1
                    log.warning(
                        "%s:%d: skipping corrupt ledger line", path, line_no
                    )
                    continue
                if not isinstance(record, dict) or any(
                    f not in record for f in _REQUIRED_FIELDS
                ):
                    self.skipped_lines += 1
                    log.warning(
                        "%s:%d: skipping foreign ledger line", path, line_no
                    )
                    continue
                records.append(record)
        return records

    @classmethod
    def load(cls, path: str) -> "RunLedger":
        """Open an existing ledger read-only-ish (no autosync surprises)."""
        return cls(path=path, autosync=False)

    def append(self, record: dict) -> None:
        if any(f not in record for f in _REQUIRED_FIELDS):
            raise ValueError(
                f"ledger record missing required fields {_REQUIRED_FIELDS}"
            )
        self.records.append(record)
        if self.autosync and self.path:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            with open(self.path, "a") as fh:
                fh.write(
                    json.dumps(
                        json_sanitize(record),
                        sort_keys=True,
                        separators=(",", ":"),
                        default=str,
                    )
                    + "\n"
                )

    def digest(self) -> str:
        """Content digest of every record — ties a ``BENCH_*.json``
        trajectory stamp to the exact ledger that produced it."""
        return payload_digest(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        backing = self.path or "<memory>"
        return f"RunLedger({backing!r}, records={len(self.records)})"


_active_ledger: Optional[RunLedger] = None


def get_ledger() -> Optional[RunLedger]:
    """The process-global run ledger, or ``None`` when observation is off."""
    return _active_ledger


def install_ledger(ledger: Optional[RunLedger]) -> Optional[RunLedger]:
    """Install ``ledger`` as the process-global ledger (``None`` disables)."""
    global _active_ledger
    _active_ledger = ledger
    return _active_ledger


class ledger_scope:
    """Activate a ledger for a ``with`` block (tests, CLI commands)."""

    def __init__(self, ledger: Optional[Union[RunLedger, str]] = None):
        if isinstance(ledger, str):
            ledger = RunLedger(ledger)
        # NOT ``ledger or RunLedger()`` — an empty ledger is falsy via
        # ``__len__`` and must still be honored.
        self.ledger = ledger if ledger is not None else RunLedger()
        self._previous: Optional[RunLedger] = None

    def __enter__(self) -> RunLedger:
        self._previous = get_ledger()
        install_ledger(self.ledger)
        return self.ledger

    def __exit__(self, *exc: Any) -> None:
        install_ledger(self._previous)


def phase_rollup(
    spans: Sequence[SpanRecord], wall_s: Optional[float] = None
) -> Dict[str, Dict[str, float]]:
    """Per-phase (span-name) wall/self aggregates for a run record."""
    rollup: Dict[str, Dict[str, float]] = {}
    for row in attribution(spans):
        rollup[row.name] = {
            "calls": row.calls,
            "wall_s": round(row.total_s, 6),
            "self_s": round(row.self_s, 6),
        }
    if wall_s is not None and spans:
        accounted = sum(v["wall_s"] for v in rollup.values() if True)
        top_level = root_wall(spans)
        leftover = max(0.0, wall_s - top_level)
        if leftover > 0:
            rollup["(untraced)"] = {
                "calls": 1,
                "wall_s": round(leftover, 6),
                "self_s": round(leftover, 6),
            }
        del accounted
    return rollup


def gp_rollup(spans: Sequence[SpanRecord]) -> Dict[str, Any]:
    """GP work derived from the span tree: solves, iterations, residuals."""
    solves = 0
    iterations = 0
    fallbacks = 0
    residual: Optional[float] = None
    for s in _closed(spans):
        if s.name == "gp_solve":
            solves += 1
        elif s.name == "iteration":
            iterations += 1
            if s.attrs.get("gp_status") == "infeasible-retarget":
                fallbacks += 1
            value = s.attrs.get("residual")
            if isinstance(value, (int, float)) and math.isfinite(value):
                residual = float(value)
    return {
        "solves": solves,
        "iterations": iterations,
        "fallbacks": fallbacks,
        "final_residual_ps": residual,
    }


def parallel_rollup(
    spans: Sequence[SpanRecord], workers: int, wall_s: float
) -> Dict[str, Any]:
    """Worker utilization: grafted worker busy-time over the worker-slots
    budget.  ``busy_s`` sums the *root* spans of grafted subtrees (the
    per-task worker wall), so utilization is busy / (workers x wall)."""
    busy = root_wall(spans)
    budget = max(1, workers) * wall_s
    return {
        "workers": max(1, workers),
        "busy_s": round(busy, 6),
        "utilization": round(busy / budget, 6) if budget > 0 else 0.0,
    }


def build_run_record(
    kind: str,
    name: str,
    *,
    wall_s: float,
    spans: Sequence[SpanRecord] = (),
    circuit_fp: Optional[str] = None,
    context_fp: Optional[str] = None,
    spec_fp: Optional[str] = None,
    gp: Optional[Mapping[str, Any]] = None,
    cache: Optional[Mapping[str, Any]] = None,
    parallel: Optional[Mapping[str, Any]] = None,
    instruments: Optional[Mapping[str, Any]] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> dict:
    """One ledger record.  ``spans`` (this run's subtree) drives the phase
    and GP rollups; fingerprints key the record like a cache entry."""
    spans = _closed(spans)
    record: Dict[str, Any] = {
        "format": LEDGER_FORMAT,
        "kind": kind,
        "name": name,
        "unix_time": time.time(),
        "wall_s": round(float(wall_s), 6),
        "circuit_fp": circuit_fp,
        "context_fp": context_fp,
        "spec_fp": spec_fp,
        "phases": phase_rollup(spans, wall_s=wall_s),
        "gp": dict(gp) if gp is not None else gp_rollup(spans),
    }
    if cache is not None:
        record["cache"] = json_sanitize(dict(cache))
    if parallel is not None:
        record["parallel"] = json_sanitize(dict(parallel))
    if instruments is not None:
        record["instruments"] = json_sanitize(dict(instruments))
    if extra:
        for key, value in extra.items():
            record.setdefault(key, json_sanitize(value))
    return json_sanitize(record)


def record_run(kind: str, name: str, **kwargs: Any) -> Optional[dict]:
    """Build a run record and append it to the active ledger.

    No-op (returns ``None``) when no ledger is installed — the instrumented
    entry points call this unconditionally and un-observed runs pay one
    ``is None`` check.
    """
    ledger = get_ledger()
    if ledger is None:
        return None
    record = build_run_record(kind, name, **kwargs)
    ledger.append(record)
    return record


def rule_rollup(
    records: Sequence[Mapping[str, Any]], top: int = 10
) -> List[Dict[str, Any]]:
    """Aggregate ``kind="rule"`` ledger records into a slowest-rules table.

    One row per rule ID: total/max wall over fresh executions, plus how
    often the incremental engine replayed it instead.  Sorted by total
    wall descending — the "which rule is eating lint time" answer.
    """
    totals: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("kind") != "rule":
            continue
        rule_id = str(record.get("name", "?"))
        row = totals.setdefault(
            rule_id,
            {"rule": rule_id, "wall_s": 0.0, "max_s": 0.0,
             "executed": 0, "replayed": 0},
        )
        wall = float(record.get("wall_s", 0.0))
        status = (record.get("extra") or {}).get("status", "executed")
        if status == "replayed":
            row["replayed"] += 1
        else:
            row["executed"] += 1
            row["wall_s"] += wall
            row["max_s"] = max(row["max_s"], wall)
    ranked = sorted(
        totals.values(), key=lambda r: (-r["wall_s"], r["rule"])
    )
    return ranked[:top]


def render_ledger_summary(records: Sequence[Mapping[str, Any]]) -> str:
    """The ``repro perf report`` body for a ledger file."""
    if not records:
        return "ledger: (no run records)"
    rule_records = [r for r in records if r.get("kind") == "rule"]
    elec_records = [r for r in records if r.get("kind") == "electrical"]
    main_records = [
        r for r in records if r.get("kind") not in ("rule", "electrical")
    ]
    lines = [
        f"run ledger: {len(records)} records"
        + (f" ({len(rule_records)} per-rule)" if rule_records else ""),
        f"{'kind':<8} {'name':<34} {'wall s':>9} {'gp it':>6} "
        f"{'residual':>9} {'cache':<12}",
    ]
    for record in main_records:
        gp = record.get("gp") or {}
        residual = gp.get("final_residual_ps")
        rendered_residual = (
            f"{residual:9.2f}"
            if isinstance(residual, (int, float))
            else f"{'-':>9}"
        )
        cache = record.get("cache") or {}
        hit = cache.get("hit") or cache.get("hit_rate")
        cache_txt = f"{hit}" if hit not in (None, "") else "-"
        lines.append(
            f"{str(record.get('kind', '?')):<8} "
            f"{str(record.get('name', '?')):<34} "
            f"{float(record.get('wall_s', 0.0)):>9.3f} "
            f"{int(gp.get('iterations', 0) or 0):>6d} "
            f"{rendered_residual} {cache_txt:<12}"
        )
    if rule_records:
        lines.append("")
        lines.append("slowest lint rules (fresh executions):")
        lines.append(
            f"{'rule':<8} {'total s':>9} {'max s':>9} "
            f"{'runs':>6} {'replayed':>9}"
        )
        for row in rule_rollup(rule_records):
            lines.append(
                f"{row['rule']:<8} {row['wall_s']:>9.4f} "
                f"{row['max_s']:>9.4f} {row['executed']:>6d} "
                f"{row['replayed']:>9d}"
            )
    if elec_records:
        lines.append("")
        lines.append("electrical noise margins (NSA6xx, post-sizing):")
        lines.append(f"{'circuit':<34} {'margin':>9} {'wall s':>9}")
        for record in elec_records:
            margin = record.get("noise_margin")
            rendered = (
                f"{margin:+9.1%}"
                if isinstance(margin, (int, float))
                else f"{'-':>9}"
            )
            lines.append(
                f"{str(record.get('name', '?')):<34} {rendered} "
                f"{float(record.get('wall_s', 0.0)):>9.3f}"
            )
    total = sum(float(r.get("wall_s", 0.0)) for r in main_records)
    lines.append(f"total recorded wall {total:.3f} s")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Regression engine
# ---------------------------------------------------------------------------


def median(samples: Sequence[float]) -> float:
    ordered = sorted(samples)
    n = len(ordered)
    if n == 0:
        raise ValueError("median of empty series")
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass
class DiffRow:
    """One key's base-vs-new comparison."""

    key: str
    base_median: Optional[float]
    new_median: Optional[float]
    n_base: int
    n_new: int
    verdict: str          # "ok" | "regression" | "improvement" | "added" | "removed"

    @property
    def delta_s(self) -> Optional[float]:
        if self.base_median is None or self.new_median is None:
            return None
        return self.new_median - self.base_median

    @property
    def ratio(self) -> Optional[float]:
        if not self.base_median or self.new_median is None:
            return None
        return self.new_median / self.base_median

    def to_json(self) -> Dict[str, Any]:
        return json_sanitize(
            {
                "key": self.key,
                "base_median_s": self.base_median,
                "new_median_s": self.new_median,
                "n_base": self.n_base,
                "n_new": self.n_new,
                "delta_s": self.delta_s,
                "ratio": self.ratio,
                "verdict": self.verdict,
            }
        )


@dataclass
class PerfDiff:
    """Outcome of comparing two perf sources."""

    rows: List[DiffRow]
    rel_threshold: float
    min_effect_s: float

    @property
    def regressions(self) -> List[DiffRow]:
        return [r for r in self.rows if r.verdict == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_json(self) -> Dict[str, Any]:
        return {
            "format": "smart-perf-diff/1",
            "rel_threshold": self.rel_threshold,
            "min_effect_s": self.min_effect_s,
            "ok": self.ok,
            "rows": [r.to_json() for r in self.rows],
        }

    def render(self) -> str:
        lines = [
            f"perf diff (threshold: +{self.rel_threshold:.0%} and "
            f">= {self.min_effect_s * 1e3:.0f} ms):",
            f"{'key':<44} {'base s':>9} {'new s':>9} {'delta':>8} "
            f"{'ratio':>6}  verdict",
        ]
        for row in self.rows:
            base = (
                f"{row.base_median:9.3f}"
                if row.base_median is not None
                else f"{'-':>9}"
            )
            new = (
                f"{row.new_median:9.3f}"
                if row.new_median is not None
                else f"{'-':>9}"
            )
            delta = (
                f"{row.delta_s:+8.3f}" if row.delta_s is not None else f"{'-':>8}"
            )
            ratio = (
                f"{row.ratio:6.2f}" if row.ratio is not None else f"{'-':>6}"
            )
            lines.append(
                f"{row.key:<44} {base} {new} {delta} {ratio}  {row.verdict}"
            )
        lines.append(
            "verdict: "
            + (
                "OK (no statistically meaningful regression)"
                if self.ok
                else f"REGRESSION in {len(self.regressions)} key(s): "
                + ", ".join(r.key for r in self.regressions)
            )
        )
        return "\n".join(lines)


def diff_samples(
    base: Mapping[str, Sequence[float]],
    new: Mapping[str, Sequence[float]],
    *,
    rel_threshold: float = 0.25,
    min_effect_s: float = 0.05,
) -> PerfDiff:
    """Noise-aware comparison of per-key wall-time samples.

    Median-of-N per key; a key regresses only when the median grew by more
    than ``rel_threshold`` relatively AND ``min_effect_s`` absolutely — the
    minimum-effect floor keeps micro-kernels (where scheduler jitter is a
    large fraction) from tripping the gate, the relative threshold keeps
    slow kernels from hiding real slowdowns under a small percentage.
    """
    rows: List[DiffRow] = []
    for key in sorted(set(base) | set(new)):
        base_samples = [float(v) for v in base.get(key, ())]
        new_samples = [float(v) for v in new.get(key, ())]
        if base_samples and new_samples:
            base_med = median(base_samples)
            new_med = median(new_samples)
            delta = new_med - base_med
            if delta > min_effect_s and (
                base_med == 0.0 or delta / base_med > rel_threshold
            ):
                verdict = "regression"
            elif -delta > min_effect_s and (
                base_med > 0.0 and -delta / base_med > rel_threshold
            ):
                verdict = "improvement"
            else:
                verdict = "ok"
            rows.append(
                DiffRow(
                    key=key,
                    base_median=base_med,
                    new_median=new_med,
                    n_base=len(base_samples),
                    n_new=len(new_samples),
                    verdict=verdict,
                )
            )
        elif new_samples:
            rows.append(
                DiffRow(
                    key=key,
                    base_median=None,
                    new_median=median(new_samples),
                    n_base=0,
                    n_new=len(new_samples),
                    verdict="added",
                )
            )
        else:
            rows.append(
                DiffRow(
                    key=key,
                    base_median=median(base_samples),
                    new_median=None,
                    n_base=len(base_samples),
                    n_new=0,
                    verdict="removed",
                )
            )
    return PerfDiff(
        rows=rows, rel_threshold=rel_threshold, min_effect_s=min_effect_s
    )


def ledger_samples(
    records: Iterable[Mapping[str, Any]],
) -> Dict[str, List[float]]:
    """``kind:name -> [wall_s, ...]`` samples from ledger records."""
    samples: Dict[str, List[float]] = {}
    for record in records:
        key = f"{record.get('kind', '?')}:{record.get('name', '?')}"
        try:
            samples.setdefault(key, []).append(float(record["wall_s"]))
        except (KeyError, TypeError, ValueError):
            continue
    return samples


def trajectory_samples(
    payload: Mapping[str, Any],
) -> Dict[str, List[float]]:
    """Per-kernel samples from a ``smart-bench-trajectory/1`` stamp."""
    samples: Dict[str, List[float]] = {}
    for kernel, data in (payload.get("kernels") or {}).items():
        if isinstance(data, Mapping):
            value = data.get("wall_s")
        else:
            value = data
        values = value if isinstance(value, (list, tuple)) else [value]
        cleaned = [
            float(v) for v in values if isinstance(v, (int, float))
        ]
        if cleaned:
            samples[str(kernel)] = cleaned
    return samples


def load_perf_source(path: str) -> Dict[str, List[float]]:
    """Samples from a perf source file, sniffing the format.

    Accepts a run-ledger JSONL (``smart-perf-ledger/1`` records) or a
    ``BENCH_*.json`` trajectory stamp (``smart-bench-trajectory/1``).
    """
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty perf source")
    first_line = stripped.splitlines()[0]
    try:
        first = json.loads(first_line)
    except json.JSONDecodeError:
        first = None
    if isinstance(first, dict) and first.get("format") == LEDGER_FORMAT:
        ledger = RunLedger.load(path)
        return ledger_samples(ledger.records)
    payload = json.loads(text)
    if (
        isinstance(payload, dict)
        and payload.get("format") == TRAJECTORY_FORMAT
    ):
        return trajectory_samples(payload)
    raise ValueError(
        f"{path}: not a run ledger ({LEDGER_FORMAT}) or bench trajectory "
        f"({TRAJECTORY_FORMAT})"
    )


def try_load_perf_source(path: str) -> Optional[Dict[str, List[float]]]:
    """Like :func:`load_perf_source`, but ``None`` when there is no baseline.

    "No baseline" covers the honest empty cases a fresh checkout or a
    first-ever benchmark run produces: a missing file, an empty file, a
    bare ``[]``/``{}`` stamp, or a well-formed source with zero samples.
    Anything else (a present-but-malformed source) still raises, so typos
    fail loudly instead of silently passing a perf gate.
    """
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError:
        return None
    stripped = text.strip()
    if not stripped or stripped in ("[]", "{}"):
        return None
    samples = load_perf_source(path)
    return samples or None


def diff_paths(
    base_path: str,
    new_path: str,
    *,
    rel_threshold: float = 0.25,
    min_effect_s: float = 0.05,
) -> PerfDiff:
    """``repro perf diff`` core: load two sources and compare."""
    return diff_samples(
        load_perf_source(base_path),
        load_perf_source(new_path),
        rel_threshold=rel_threshold,
        min_effect_s=min_effect_s,
    )


def make_trajectory(
    kernels: Mapping[str, Union[float, Sequence[float]]],
    *,
    pr: Optional[int] = None,
    ledger_digest: Optional[str] = None,
    tracked: Optional[Sequence[str]] = None,
) -> dict:
    """A ``smart-bench-trajectory/1`` stamp (what ``BENCH_PR*.json`` holds)."""
    rendered: Dict[str, Any] = {}
    for kernel, value in kernels.items():
        values = value if isinstance(value, (list, tuple)) else [value]
        cleaned = [round(float(v), 6) for v in values]
        rendered[str(kernel)] = {
            "wall_s": cleaned if len(cleaned) > 1 else cleaned[0],
            "n": len(cleaned),
        }
    payload: Dict[str, Any] = {
        "format": TRAJECTORY_FORMAT,
        "created_unix": time.time(),
        "kernels": rendered,
    }
    if pr is not None:
        payload["pr"] = int(pr)
    if ledger_digest is not None:
        payload["ledger_digest"] = ledger_digest
    if tracked is not None:
        payload["tracked"] = list(tracked)
    return payload
