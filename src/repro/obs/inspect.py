"""Replay a JSONL trace into a human-readable report.

Backs ``smart-advisor inspect TRACE``: loads a trace written by a previous
run's ``--trace FILE`` and renders, in the plain aligned-text style of
:mod:`repro.sim.report_fmt`:

* the span tree with wall-times and attributes;
* a Figure-4 convergence table per sizing run (one row per GP⇄STA
  refinement iteration, with GP status/objective and the realized
  residual);
* the profile summary (per-span-name call counts and wall-time shares).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .trace import EventRecord, SpanRecord, TraceDump, load_jsonl


def _enclosing_sizing(
    event: EventRecord, by_id: Dict[int, SpanRecord]
) -> Optional[SpanRecord]:
    """The nearest ancestor span that is a sizing run (``size`` span)."""
    span = by_id.get(event.span_id) if event.span_id is not None else None
    while span is not None:
        if span.name == "size":
            return span
        span = by_id.get(span.parent_id) if span.parent_id else None
    return None


def render_convergence(dump: TraceDump) -> str:
    """Per-sizing-run iteration tables from ``iteration_record`` events."""
    by_id = {s.span_id: s for s in dump.spans}
    runs: Dict[Optional[int], List[EventRecord]] = {}
    for event in dump.events:
        if event.name != "iteration_record":
            continue
        owner = _enclosing_sizing(event, by_id)
        runs.setdefault(owner.span_id if owner else None, []).append(event)
    if not runs:
        return "convergence: (no iteration records in trace)"

    lines: List[str] = ["convergence:"]
    for owner_id, events in runs.items():
        owner = by_id.get(owner_id) if owner_id is not None else None
        circuit = owner.attrs.get("circuit", "?") if owner else "?"
        header = f"  sizing run: {circuit}"
        if owner is not None:
            header += f"  ({owner.duration_s * 1e3:.1f} ms)"
        lines.append(header)
        lines.append(
            f"  {'iter':>4} {'gp status':<20} {'objective':>12} "
            f"{'residual ps':>12}  worst constraint"
        )
        for event in sorted(events, key=lambda e: e.t):
            attrs = event.attrs
            objective = attrs.get("gp_objective")
            rendered_obj = (
                f"{objective:12.2f}"
                if isinstance(objective, (int, float))
                and objective == objective  # filter NaN
                else f"{'-':>12}"
            )
            residual = attrs.get("residual")
            rendered_res = (
                f"{residual:12.2f}"
                if isinstance(residual, (int, float))
                else f"{'-':>12}"
            )
            lines.append(
                f"  {attrs.get('iteration', '?'):>4} "
                f"{str(attrs.get('gp_status', '?')):<20} "
                f"{rendered_obj} {rendered_res}  "
                f"{attrs.get('worst_constraint', '')}"
            )
    return "\n".join(lines)


def render_trace_report(dump: TraceDump, path: str = "") -> str:
    """The full ``smart-advisor inspect`` report."""
    lines: List[str] = []
    title = f"trace report: {path}" if path else "trace report"
    if dump.unix_time:
        recorded = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(dump.unix_time)
        )
        title += f"  (recorded {recorded})"
    lines.append(title)
    lines.append(
        f"{len(dump.spans)} spans, {len(dump.events)} events"
    )
    lines.append("")
    lines.append("span tree:")
    lines.append(dump.render_tree())
    lines.append("")
    lines.append(render_convergence(dump))
    lines.append("")
    lines.append(dump.profile_summary())
    return "\n".join(lines)


def inspect_file(path: str) -> str:
    """Load ``path`` and render the full report (CLI entry)."""
    return render_trace_report(load_jsonl(path), path=path)
