"""Live trace streaming: subscribers, incremental JSONL, and tail views.

Until now a trace only became visible after the run exited
(:meth:`Tracer.write_jsonl`).  The advisor-as-a-service direction needs the
opposite: progress observable *while* a run executes.  This module provides
the three pieces:

* :class:`TraceSubscriber` — the callback interface a :class:`Tracer`
  notifies synchronously as spans open/close and events fire
  (``tracer.subscribe(sub)`` / ``tracer.unsubscribe(sub)``);
* :class:`JsonlStreamWriter` — a subscriber that appends each completed
  record to a JSONL file the moment it lands.  Because both it and the
  post-hoc exporter serialize through :func:`repro.obs.trace.record_line`,
  the streamed file is **byte-identical** to what ``write_jsonl`` would have
  produced for the same run — a consumer tailing the stream and a consumer
  replaying the export see the same trace;
* :func:`tail_records` / :func:`render_tail_line` — the ``repro perf watch``
  view: follow a (possibly still-growing) stream file and render one line
  per completed span / event.

Spans stream in *completion* order (children before parents), exactly like
the export format; ``on_span_open`` exists so interactive consumers can show
in-flight work, but open records are deliberately not written to the JSONL
stream (the export schema has no "open" record, and equality with the
post-hoc export is the contract).
"""

from __future__ import annotations

import json
import time
from typing import IO, Any, Callable, Iterator, List, Optional, Union

from .trace import (
    EventRecord,
    SpanRecord,
    Tracer,
    header_line,
    record_line,
)


class TraceSubscriber:
    """Base class for live trace consumers — every callback is optional.

    Subclass and override what you need; the tracer looks callbacks up by
    name, so any object with matching methods works too (structural typing).
    """

    def on_span_open(self, span: SpanRecord) -> None:
        """A span just opened (it has ``t_start`` but no ``t_end`` yet)."""

    def on_span_close(self, span: SpanRecord) -> None:
        """A span completed (including spans grafted from workers)."""

    def on_event(self, event: EventRecord) -> None:
        """A point event fired."""


class CollectingSubscriber(TraceSubscriber):
    """Records every callback in arrival order — test/inspection helper.

    ``calls`` is a list of ``(kind, record)`` pairs with kind one of
    ``"open"`` / ``"close"`` / ``"event"``.
    """

    def __init__(self) -> None:
        self.calls: List[tuple] = []

    def on_span_open(self, span: SpanRecord) -> None:
        self.calls.append(("open", span))

    def on_span_close(self, span: SpanRecord) -> None:
        self.calls.append(("close", span))

    def on_event(self, event: EventRecord) -> None:
        self.calls.append(("event", event))

    def opened(self) -> List[SpanRecord]:
        return [r for kind, r in self.calls if kind == "open"]

    def closed(self) -> List[SpanRecord]:
        return [r for kind, r in self.calls if kind == "close"]

    def events(self) -> List[EventRecord]:
        return [r for kind, r in self.calls if kind == "event"]


class JsonlStreamWriter(TraceSubscriber):
    """Incrementally writes the trace JSONL stream as records complete.

    Usage::

        tracer = Tracer()
        writer = JsonlStreamWriter(path).attach(tracer)
        with trace.tracing_scope(tracer):
            advisor.advise(spec, constraints)
        writer.close()          # detaches and flushes

    Every line is flushed on write, so a tail consumer (``repro perf
    watch --follow``) sees each span as it closes.  The resulting file is
    byte-identical to ``tracer.write_jsonl`` output for the same run.
    """

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w")
            self._owns_fh = True
            self.path: Optional[str] = target
        else:
            self._fh = target
            self._owns_fh = False
            self.path = getattr(target, "name", None)
        self._tracer: Optional[Tracer] = None
        self._wrote_header = False
        self.lines_written = 0

    def attach(self, tracer: Tracer) -> "JsonlStreamWriter":
        """Subscribe to ``tracer`` and emit the stream header immediately."""
        self._tracer = tracer
        self._write_header(tracer.epoch_unix)
        tracer.subscribe(self)
        return self

    def _write_header(self, unix_time: float) -> None:
        if not self._wrote_header:
            self._write(header_line(unix_time))
            self._wrote_header = True

    def _write(self, line: str) -> None:
        self._fh.write(line + "\n")
        self._fh.flush()
        self.lines_written += 1

    def on_span_close(self, span: SpanRecord) -> None:
        self._write(record_line(span))

    def on_event(self, event: EventRecord) -> None:
        self._write(record_line(event))

    def close(self) -> None:
        """Detach from the tracer and close the file (if we opened it)."""
        if self._tracer is not None:
            self._tracer.unsubscribe(self)
            self._tracer = None
        if self._owns_fh and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlStreamWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Tail view (``repro perf watch``)
# ---------------------------------------------------------------------------


def tail_records(
    path: str,
    follow: bool = False,
    poll_s: float = 0.2,
    stop: Optional[Callable[[], bool]] = None,
    timeout_s: Optional[float] = None,
) -> Iterator[dict]:
    """Yield parsed records from a trace JSONL stream, oldest first.

    With ``follow=True`` the generator keeps polling the file for new lines
    (like ``tail -f``) until ``stop()`` returns true or ``timeout_s``
    elapses; otherwise it yields what is currently in the file and returns.
    Partial trailing lines (a writer mid-append) are held back until their
    newline arrives.  Corrupt lines are skipped — a live stream must stay
    tail-able even across a torn write.
    """
    t0 = time.monotonic()
    buffer = ""
    with open(path) as fh:
        while True:
            chunk = fh.read()
            if chunk:
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        obj = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(obj, dict):
                        yield obj
                continue
            if not follow:
                return
            if stop is not None and stop():
                return
            if timeout_s is not None and time.monotonic() - t0 > timeout_s:
                return
            time.sleep(poll_s)


def render_tail_line(record: dict) -> Optional[str]:
    """One ``repro perf watch`` line for a parsed stream record.

    Returns ``None`` for records the tail view does not display.
    """
    kind = record.get("type")
    if kind == "trace":
        recorded = record.get("unix_time")
        stamp = (
            time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(recorded))
            if isinstance(recorded, (int, float))
            else "?"
        )
        return f"-- trace stream (recorded {stamp}) --"
    if kind == "span":
        depth = int(record.get("depth", 0) or 0)
        dur = record.get("dur")
        dur_ms = (
            f"{dur * 1e3:9.2f} ms" if isinstance(dur, (int, float)) else "?"
        )
        attrs = record.get("attrs") or {}
        rendered_attrs = " ".join(
            f"{k}={v}" for k, v in list(attrs.items())[:4]
        )
        label = "  " * depth + str(record.get("name", "?"))
        line = f"[{record.get('t1', 0.0):>9.3f}s] {label:<44} {dur_ms}"
        return line + (f"  {rendered_attrs}" if rendered_attrs else "")
    if kind == "event":
        attrs = record.get("attrs") or {}
        rendered_attrs = " ".join(
            f"{k}={v}" for k, v in list(attrs.items())[:4]
        )
        return (
            f"[{record.get('t', 0.0):>9.3f}s] * {record.get('name', '?')}"
            + (f"  {rendered_attrs}" if rendered_attrs else "")
        )
    return None


def watch(
    path: str,
    emit: Callable[[str], None],
    follow: bool = False,
    poll_s: float = 0.2,
    stop: Optional[Callable[[], bool]] = None,
    timeout_s: Optional[float] = None,
) -> int:
    """Render a stream file through ``emit``; returns records displayed."""
    shown = 0
    for record in tail_records(
        path, follow=follow, poll_s=poll_s, stop=stop, timeout_s=timeout_s
    ):
        line = render_tail_line(record)
        if line is not None:
            emit(line)
            shown += 1
    return shown
