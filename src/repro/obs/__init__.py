"""Observability for the SMART advisor stack.

Three cooperating pieces:

* :mod:`repro.obs.trace` — hierarchical wall-time spans and point events
  (``span("advise") > span("size") > span("gp_solve")``), JSONL export and
  tree/profile rendering.  Disabled by default with a no-op null tracer.
* :mod:`repro.obs.metrics` — a process-global registry of counters, gauges
  and histograms (GP solves, STA node visits, path counts per pruning pass,
  refinement residuals), with :func:`~repro.obs.metrics.metrics_scope` for
  test isolation.
* :mod:`repro.obs.log` — ``logging`` under the ``repro`` namespace:
  diagnostics on stderr (``-v`` / ``-vv``), CLI-facing output on stdout via
  :func:`~repro.obs.log.emit`.
* :mod:`repro.obs.stream` — live trace streaming: the
  :class:`~repro.obs.stream.TraceSubscriber` callback interface, an
  incremental JSONL stream writer, and the ``repro perf watch`` tail view.
* :mod:`repro.obs.perf` — the performance observatory: append-only run
  ledger, span-tree attribution (self-time rollups, kernel hot-spots,
  critical path), Chrome/speedscope flame-graph exports, and the
  noise-aware ``repro perf diff`` regression engine.

Typical instrumented call-site::

    from repro.obs import metrics, trace

    with trace.span("gp_solve", method=self.gp_method) as sp:
        solution = gp.solve(...)
        sp.set_attrs(status=solution.status)
    metrics.counter("gp.solves").inc()

and typical test::

    with trace.tracing_scope() as tracer, metrics.metrics_scope() as reg:
        run()
        assert [s.name for s in tracer.spans].count("gp_solve") == reg.counter("gp.solves").value
"""

from . import metrics, perf, stream, trace
from .inspect import inspect_file, render_trace_report
from .perf import (
    PerfDiff,
    RunLedger,
    attribution,
    diff_samples,
    get_ledger,
    install_ledger,
    ledger_scope,
    record_run,
)
from .stream import CollectingSubscriber, JsonlStreamWriter, TraceSubscriber
from .log import configure_logging, emit, get_logger, log
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_scope,
)
from .trace import (
    EventRecord,
    NullTracer,
    SpanRecord,
    TraceDump,
    Tracer,
    add_attrs,
    event,
    get_tracer,
    json_sanitize,
    load_jsonl,
    span,
    tracing_scope,
)

__all__ = [
    "trace",
    "metrics",
    "perf",
    "stream",
    "TraceSubscriber",
    "CollectingSubscriber",
    "JsonlStreamWriter",
    "RunLedger",
    "PerfDiff",
    "attribution",
    "diff_samples",
    "get_ledger",
    "install_ledger",
    "ledger_scope",
    "record_run",
    "Tracer",
    "NullTracer",
    "SpanRecord",
    "EventRecord",
    "TraceDump",
    "span",
    "event",
    "add_attrs",
    "get_tracer",
    "tracing_scope",
    "json_sanitize",
    "load_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_scope",
    "configure_logging",
    "emit",
    "get_logger",
    "log",
    "inspect_file",
    "render_trace_report",
]
