"""Counters, gauges and histograms for the advisor stack.

A process-global :class:`MetricsRegistry` collects the quantities the paper
reports as evidence — GP solves and their inner iterations, phase-1
feasibility fallbacks, STA node visits, path counts before/after each
pruning pass, per-iteration refinement residuals — without requiring any
caller to thread a registry object through eight layers of code.

Instrumented code fetches instruments at call time::

    from repro.obs import metrics
    metrics.counter("gp.solves").inc()
    metrics.histogram("engine.residual_ps").observe(worst_violation)

Tests isolate themselves with :func:`metrics_scope`, which swaps in a fresh
registry for the duration of a ``with`` block::

    with metrics.metrics_scope() as reg:
        run_the_thing()
        assert reg.counter("gp.solves").value == 3

Instruments are deliberately tiny (an attribute update per operation) so the
always-on registry stays within the observability layer's ≤2 % overhead
budget on the convergence benchmark.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .trace import json_sanitize


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON-safe serialization (the run-ledger schema)."""
        return {
            "kind": "counter",
            "name": self.name,
            "value": json_sanitize(self.value),
        }


class Gauge:
    """Last-written value (path counts, areas, residuals-at-exit)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> Optional[float]:
        return self.value

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON-safe serialization (the run-ledger schema)."""
        return {
            "kind": "gauge",
            "name": self.name,
            "value": json_sanitize(self.value),
        }


class Histogram:
    """Streaming distribution: count/sum/min/max plus the raw series.

    The raw series is kept because convergence analyses need the *sequence*
    of residuals, not just their envelope; at advisor scales (tens of
    observations per run) the memory cost is irrelevant.
    """

    __slots__ = ("name", "count", "total", "min", "max", "values")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the *finite* observations.

        Non-finite observations (the engine's ``worst_violation=inf`` before
        the first measurement, ``nan`` on an infeasible retarget) are
        excluded — a quantile over a series containing NaN is meaningless
        and ``sorted()`` silently mis-orders it.  Returns ``None`` when no
        finite observation exists.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {q}")
        finite = sorted(v for v in self.values if math.isfinite(v))
        if not finite:
            return None
        rank = max(0, min(len(finite) - 1, math.ceil(q * len(finite)) - 1))
        return finite[rank]

    @property
    def p50(self) -> Optional[float]:
        return self.quantile(0.50)

    @property
    def p90(self) -> Optional[float]:
        return self.quantile(0.90)

    @property
    def p99(self) -> Optional[float]:
        return self.quantile(0.99)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON-safe serialization (the run-ledger schema).

        Unlike :meth:`snapshot` (an in-process view that keeps raw floats),
        this routes through :func:`repro.obs.trace.json_sanitize`, so a
        histogram that observed ``inf``/``nan`` serializes to strict JSON
        sentinels instead of the invalid ``Infinity``/``NaN`` tokens
        ``json.dumps`` would otherwise emit.
        """
        return json_sanitize(
            {
                "kind": "histogram",
                "name": self.name,
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.mean,
                "p50": self.p50,
                "p90": self.p90,
                "p99": self.p99,
            }
        )


class MetricsRegistry:
    """Named instruments, created on first touch."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every instrument."""
        return {
            "counters": {n: c.snapshot() for n, c in self.counters.items()},
            "gauges": {n: g.snapshot() for n, g in self.gauges.items()},
            "histograms": {
                n: h.snapshot() for n, h in self.histograms.items()
            },
        }

    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON dump of every instrument via its ``to_dict()``.

        This is the serialization the run ledger embeds: stable key order
        (sorted by instrument name within each kind) and non-finite floats
        already replaced by sentinels.
        """
        return {
            "counters": {
                n: self.counters[n].to_dict() for n in sorted(self.counters)
            },
            "gauges": {
                n: self.gauges[n].to_dict() for n in sorted(self.gauges)
            },
            "histograms": {
                n: self.histograms[n].to_dict()
                for n in sorted(self.histograms)
            },
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def render(self) -> str:
        """Plain-text dump in report_fmt style (for ``--profile`` output)."""
        lines = ["metrics:"]
        for name in sorted(self.counters):
            lines.append(f"  {name:<36} {self.counters[name].value:>12g}")
        for name in sorted(self.gauges):
            value = self.gauges[name].value
            rendered = f"{value:g}" if value is not None else "-"
            lines.append(f"  {name:<36} {rendered:>12}")
        for name in sorted(self.histograms):
            h = self.histograms[name]
            lines.append(
                f"  {name:<36} n={h.count} mean={h.mean:.3g} "
                f"min={h.min if h.min is not None else '-'} "
                f"max={h.max if h.max is not None else '-'}"
            )
        if len(lines) == 1:
            lines.append("  (no metrics recorded)")
        return "\n".join(lines)


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The currently active (process-global) registry."""
    return _registry


def counter(name: str) -> Counter:
    return _registry.counter(name)


def gauge(name: str) -> Gauge:
    return _registry.gauge(name)


def histogram(name: str) -> Histogram:
    return _registry.histogram(name)


def snapshot() -> Dict[str, Any]:
    return _registry.snapshot()


def reset() -> None:
    _registry.reset()


@contextmanager
def metrics_scope(
    fresh: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Swap in a fresh registry for a ``with`` block (test isolation).

    Instrumented code looks the registry up at call time, so everything
    recorded inside the block lands in the scoped registry and the previous
    registry is restored untouched on exit.
    """
    global _registry
    previous = _registry
    _registry = fresh or MetricsRegistry()
    try:
        yield _registry
    finally:
        _registry = previous
