"""Logging for the reproduction: diagnostics on stderr, CLI output on stdout.

Two channels, deliberately separate:

* :func:`get_logger` — standard :mod:`logging` loggers under the ``repro``
  namespace for *diagnostics* (what the sizer decided, why a topology was
  pruned).  Silent by default; :func:`configure_logging` attaches a stderr
  handler at WARNING/INFO/DEBUG for the CLI's ``-v`` / ``-vv``.
* :func:`emit` — *CLI-facing output* (tables, results).  It still lands on
  ``sys.stdout`` — scripts pipe it — but flows through a dedicated
  ``repro.out`` logger so the output path is uniform, capturable, and
  redirectable like any other logging target.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

ROOT_LOGGER_NAME = "repro"

#: Handlers this module attached (so reconfiguration is idempotent).
_OBS_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A diagnostics logger under the ``repro`` namespace.

    Call with ``__name__`` from inside the package (already namespaced) or
    with a short suffix from outside.
    """
    if name is None:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


#: Module-level diagnostics logger, importable as ``from repro.obs import log``
#: (the satellite-task "repro.obs.log" module-level logger).
log = get_logger()


class _DynamicStreamHandler(logging.Handler):
    """Writes to the *current* ``sys.stdout``/``sys.stderr`` at emit time.

    Resolving the stream lazily keeps pytest's capsys and shell redirection
    working — a handler that captured the stream object at configure time
    would bypass later replacement.
    """

    def __init__(self, stream_name: str = "stderr"):
        super().__init__()
        self._stream_name = stream_name

    def emit(self, record: logging.LogRecord) -> None:
        try:
            stream = getattr(sys, self._stream_name)
            stream.write(self.format(record) + "\n")
        except BrokenPipeError:
            # Reader hung up (e.g. ``smart-advisor perf watch | head``):
            # drop the line silently — the classic pipe contract.
            pass
        except Exception:  # pragma: no cover - mirror logging's resilience
            self.handleError(record)


def configure_logging(verbosity: int = 0) -> None:
    """Route ``repro.*`` diagnostics to stderr.

    ``verbosity`` 0 → WARNING, 1 (``-v``) → INFO, ≥2 (``-vv``) → DEBUG.
    Idempotent: reconfiguring replaces the handler this module installed
    and leaves any user-attached handlers alone.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _OBS_HANDLER_FLAG, False):
            root.removeHandler(handler)
    handler = _DynamicStreamHandler("stderr")
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    setattr(handler, _OBS_HANDLER_FLAG, True)
    root.addHandler(handler)
    if verbosity <= 0:
        root.setLevel(logging.WARNING)
    elif verbosity == 1:
        root.setLevel(logging.INFO)
    else:
        root.setLevel(logging.DEBUG)


def _out_logger() -> logging.Logger:
    logger = logging.getLogger(f"{ROOT_LOGGER_NAME}.out")
    if not any(
        getattr(h, _OBS_HANDLER_FLAG, False) for h in logger.handlers
    ):
        handler = _DynamicStreamHandler("stdout")
        handler.setFormatter(logging.Formatter("%(message)s"))
        setattr(handler, _OBS_HANDLER_FLAG, True)
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
    return logger


def emit(message: str = "") -> None:
    """CLI-facing output line on stdout (the replacement for ``print``)."""
    _out_logger().info(message)
