"""Static timing analysis over the stage graph — the PathMill substitute.

The paper measures every design with PathMill before and after sizing and
closes the Figure-4 loop on the measured/spec mismatch.  This analyzer plays
that role: it propagates arrival times *and transition times (slopes)* through
the stage graph using the same component equations as the model library, but —
unlike the GP, which freezes input slopes — with real slope propagation, so GP
predictions and STA measurements genuinely differ and the refinement loop has
work to do.

Timing graph nodes are ``(net, transition)`` pairs.  Stage arcs:

* static inverting gates: input FALL -> output RISE and vice versa;
* pass gates: non-inverting data arcs, select-RISE -> both output transitions;
* tri-states: inverting data arcs, select-RISE -> both output transitions;
* domino nodes: data-RISE -> node FALL (evaluate), clock RISE -> node FALL
  (D1 evaluate via the foot), clock FALL -> node RISE (precharge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..models.gates import ModelLibrary, Transition
from ..netlist.circuit import Circuit
from ..netlist.nets import NetKind, Pin, PinClass
from ..netlist.stages import Stage, StageKind
from ..obs import metrics, trace

#: A hop along a timing path: (stage name, input pin name, output transition).
Hop = Tuple[str, str, Transition]


@dataclass(frozen=True)
class ArrivalEvent:
    """Latest arrival of a transition at a net."""

    net: str
    transition: Transition
    time: float
    slope: float
    from_stage: Optional[str] = None
    from_pin: Optional[str] = None
    #: timing-graph key of the predecessor event (net, transition)
    src_key: Optional[Tuple[str, Transition]] = None


@dataclass
class TimingReport:
    """Full result of one STA run."""

    arrivals: Dict[Tuple[str, Transition], ArrivalEvent]
    circuit_name: str

    def arrival(self, net: str, transition: Transition) -> Optional[ArrivalEvent]:
        return self.arrivals.get((net, transition))

    def net_delay(self, net: str) -> float:
        """Worst arrival over both transitions at ``net`` (0 if never reached)."""
        times = [
            event.time
            for (n, _), event in self.arrivals.items()
            if n == net
        ]
        return max(times) if times else 0.0

    def worst(self, nets: Sequence[str]) -> float:
        """Worst arrival over a set of nets (the realized circuit delay)."""
        return max((self.net_delay(n) for n in nets), default=0.0)

    def critical_path(self, net: str) -> List[ArrivalEvent]:
        """Chain of arrival events ending at the worst transition of ``net``."""
        candidates = [
            event for (n, _), event in self.arrivals.items() if n == net
        ]
        if not candidates:
            return []
        event = max(candidates, key=lambda e: e.time)
        chain = [event]
        while event.src_key is not None:
            prev = self.arrivals.get(event.src_key)
            if prev is None or prev is event:
                break
            chain.append(prev)
            event = prev
        chain.reverse()
        return chain


def arc_input_transition(
    stage: Stage, pin: Pin, out_transition: Transition, library: ModelLibrary
) -> Transition:
    """The input transition that causes ``out_transition`` through ``pin``.

    Unique for every arc our stage kinds define (select pins always fire on
    their rising edge).  Raises ``KeyError`` when no such arc exists.
    """
    for in_trans, out_trans in stage_arcs(stage, pin, library):
        if out_trans is out_transition:
            return in_trans
    raise KeyError(
        f"stage {stage.name} pin {pin.name}: no arc producing "
        f"{out_transition.value}"
    )


def stage_arcs(stage: Stage, pin: Pin, library: ModelLibrary) -> List[Tuple[Transition, Transition]]:
    """(input transition, output transition) arcs through ``pin``."""
    arcs: List[Tuple[Transition, Transition]] = []
    if stage.kind is StageKind.DOMINO:
        if pin.pin_class is PinClass.CLOCK:
            if stage.clocked:
                arcs.append((Transition.RISE, Transition.FALL))  # evaluate
            arcs.append((Transition.FALL, Transition.RISE))      # precharge
        else:
            arcs.append((Transition.RISE, Transition.FALL))      # evaluate
        return arcs
    if pin.pin_class is PinClass.SELECT:
        # Turning the gate on (select rising) can launch either output edge
        # — the paper's four control-port constraints (Section 5.3).
        return [(Transition.RISE, Transition.RISE), (Transition.RISE, Transition.FALL)]
    if stage.inverting:
        return [
            (Transition.FALL, Transition.RISE),
            (Transition.RISE, Transition.FALL),
        ]
    return [
        (Transition.RISE, Transition.RISE),
        (Transition.FALL, Transition.FALL),
    ]


class StaticTimingAnalyzer:
    """Propagates arrivals/slopes through a circuit at concrete widths."""

    def __init__(self, circuit: Circuit, library: ModelLibrary):
        self.circuit = circuit
        self.library = library

    # -- loads ---------------------------------------------------------------

    def net_load(self, net_name: str, widths: Mapping[str, float]) -> float:
        """Total capacitance on a net at concrete widths, fF: fanout gate
        caps + wire/external + every driver's own output diffusion (so shared
        pass-gate/tri-state merge nodes count all their parasitics)."""
        net = self.circuit.net(net_name)
        total = net.fixed_cap
        table = self.circuit.size_table
        for stage, pin in self.circuit.fanout_of(net_name):
            total += self.library.input_cap(stage, pin, table).evaluate(widths)
        for driver in self.circuit.drivers_of(net_name):
            total += self.library.output_parasitic(driver, table).evaluate(widths)
        return total

    def load_posynomial(self, net_name: str):
        """Same total load as a posynomial (used by the constraint
        generator)."""
        from ..posy import posy_sum

        net = self.circuit.net(net_name)
        table = self.circuit.size_table
        parts = [
            self.library.input_cap(stage, pin, table)
            for stage, pin in self.circuit.fanout_of(net_name)
        ]
        parts.extend(
            self.library.output_parasitic(driver, table)
            for driver in self.circuit.drivers_of(net_name)
        )
        total = posy_sum(parts)
        if net.fixed_cap > 0:
            total = total + net.fixed_cap
        return total

    def far_cap(self, net_name: str, widths: Mapping[str, float]) -> float:
        """Capacitance on the *far* side of a net's wire resistance, fF:
        fanout gates, external load, and half the distributed wire cap."""
        net = self.circuit.net(net_name)
        table = self.circuit.size_table
        total = net.external_load + net.wire_cap / 2.0
        for stage, pin in self.circuit.fanout_of(net_name):
            total += self.library.input_cap(stage, pin, table).evaluate(widths)
        return total

    def far_cap_posynomial(self, net_name: str):
        from ..posy import posy_sum

        net = self.circuit.net(net_name)
        table = self.circuit.size_table
        parts = [
            self.library.input_cap(stage, pin, table)
            for stage, pin in self.circuit.fanout_of(net_name)
        ]
        total = posy_sum(parts)
        fixed = net.external_load + net.wire_cap / 2.0
        if fixed > 0:
            total = total + fixed
        return total

    def wire_delay(self, net_name: str, widths: Mapping[str, float]) -> float:
        """Elmore delay of the net's interconnect, ps (0 for short wires)."""
        net = self.circuit.net(net_name)
        if net.wire_res <= 0.0:
            return 0.0
        from ..models.gates import LN2

        return LN2 * net.wire_res * self.far_cap(net_name, widths)

    # -- analysis --------------------------------------------------------------

    def analyze(
        self,
        widths: Mapping[str, float],
        input_arrivals: Optional[Mapping[str, float]] = None,
        input_slope: float = 30.0,
        clock_arrival: float = 0.0,
    ) -> TimingReport:
        """Run STA.

        Parameters
        ----------
        widths:
            Free-variable assignment or full label->width mapping.
        input_arrivals:
            Arrival time per primary input net (default 0 for all, both
            transitions).
        input_slope:
            Transition time assumed at primary inputs, ps.
        clock_arrival:
            Arrival of both clock edges.
        """
        resolved = self.circuit.size_table.resolve(widths) if not all(
            n in widths for n in self.circuit.size_table.names()
        ) else dict(widths)
        arrivals: Dict[Tuple[str, Transition], ArrivalEvent] = {}

        input_arrivals = dict(input_arrivals or {})
        for net_name in self.circuit.primary_inputs:
            t0 = input_arrivals.get(net_name, 0.0)
            for trans in Transition:
                arrivals[(net_name, trans)] = ArrivalEvent(
                    net_name, trans, t0, input_slope
                )
        for clk in self.circuit.clock_nets():
            for trans in Transition:
                arrivals[(clk, trans)] = ArrivalEvent(
                    clk, trans, clock_arrival, input_slope * 0.5
                )

        table = self.circuit.size_table
        # Arc relaxations are counted locally and flushed to the metrics
        # registry once per run, keeping the inner loop free of lookups.
        visits = 0
        for stage in self.circuit.topological_stages():
            out = stage.output.name
            load = self.net_load(out, resolved)
            wire_extra = self.wire_delay(out, resolved)
            wire_slope = 0.0
            if stage.output.wire_res > 0.0:
                wire_slope = (
                    self.library.tech.slope_gain
                    * stage.output.wire_res
                    * self.far_cap(out, resolved)
                )
            for pin in stage.inputs:
                for in_trans, out_trans in stage_arcs(stage, pin, self.library):
                    src = arrivals.get((pin.net.name, in_trans))
                    if src is None:
                        continue
                    visits += 1
                    delay = wire_extra + self.library.delay(
                        stage, pin, out_trans, load, table, input_slope=src.slope
                    ).evaluate(resolved)
                    slope = wire_slope + self.library.output_slope(
                        stage, pin, out_trans, load, table, input_slope=src.slope
                    ).evaluate(resolved)
                    time = src.time + delay
                    key = (out, out_trans)
                    existing = arrivals.get(key)
                    if existing is None or time > existing.time:
                        arrivals[key] = ArrivalEvent(
                            out,
                            out_trans,
                            time,
                            slope,
                            stage.name,
                            pin.name,
                            src_key=(pin.net.name, in_trans),
                        )
        metrics.counter("sta.analyses").inc()
        metrics.counter("sta.node_visits").inc(visits)
        trace.add_attrs(sta_node_visits=visits)
        return TimingReport(arrivals=arrivals, circuit_name=self.circuit.name)

    def path_delay(
        self,
        hops: Sequence[Hop],
        widths: Mapping[str, float],
        input_slope: float = 30.0,
        net_slopes: Optional[Mapping[Tuple[str, Transition], float]] = None,
    ) -> float:
        """Realized delay along one explicit path.

        Slopes propagate along the path; when ``net_slopes`` (worst slope per
        ``(net, transition)`` from a full analysis) is supplied, each hop
        instead sees the *worst* of the chained and recorded slopes for the
        edge it actually receives — a slow sibling path can degrade the edge
        this path sees at a merge point, the effect the GP's per-path chaining
        cannot see, and the reason the Figure-4 loop has residual mismatch to
        close.  Keying by transition matters: a domino buffer's lazy
        precharge edge must not poison its critical evaluate edge.
        """
        metrics.counter("sta.path_delays").inc()
        resolved = self.circuit.size_table.resolve(widths) if not all(
            n in widths for n in self.circuit.size_table.names()
        ) else dict(widths)
        table = self.circuit.size_table
        total = 0.0
        chained = input_slope
        if hops:
            first_pin = self.circuit.stage(hops[0][0]).pin(hops[0][1])
            if first_pin.net.kind is NetKind.CLOCK:
                chained = input_slope * 0.5
        for stage_name, pin_name, out_trans in hops:
            stage = self.circuit.stage(stage_name)
            pin = stage.pin(pin_name)
            out = stage.output.name
            load = self.net_load(out, resolved)
            slope_in = chained
            if net_slopes is not None:
                in_trans = arc_input_transition(stage, pin, out_trans, self.library)
                recorded = net_slopes.get((pin.net.name, in_trans))
                if recorded is not None:
                    slope_in = max(recorded, chained)
            total += self.wire_delay(out, resolved) + self.library.delay(
                stage, pin, out_trans, load, table, input_slope=slope_in
            ).evaluate(resolved)
            chained = self.library.output_slope(
                stage, pin, out_trans, load, table, input_slope=slope_in
            ).evaluate(resolved)
            if stage.output.wire_res > 0.0:
                chained += (
                    self.library.tech.slope_gain
                    * stage.output.wire_res
                    * self.far_cap(out, resolved)
                )
        return total
