"""Switch-level RC transient simulator — the SPICE substitute.

The paper verifies every SMART solution with transistor-level simulation; we
verify with this simulator.  Model:

* every non-supply net is a node with a lumped capacitance (gate caps of
  devices it gates, diffusion caps of devices it touches, wire/external);
* every transistor is a voltage-controlled switch in series with its
  effective resistance ``r / W`` — NMOS conducts when its gate is above
  ``vdd/2``, PMOS below — with a smooth conductance ramp around threshold to
  keep integration well behaved;
* stimuli are piecewise-linear voltage sources bound to input nets;
* integration is backward Euler on ``C dV/dt = -G(V) V + b``, uncondition-
  ally stable, with conductances frozen at the previous step's voltages.

This captures what SMART's flow needs from SPICE: realistic RC delays through
arbitrary pass/dynamic/static topologies, including charge sharing between
internal nodes — while staying dependency-free and fast enough for tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..models.technology import Technology
from ..netlist.devices import Polarity, Transistor
from .waveforms import PiecewiseLinear, measure_delay, measure_transition

_SUPPLIES = ("vdd", "vss")
#: Width of the smooth switch transition region around vdd/2, as a fraction
#: of vdd.  Keeps dG/dV finite so backward Euler with lagged conductances
#: converges.
_SWITCH_WINDOW = 0.2
#: Leakage conductance to ground on every node, 1/kΩ.  Prevents singular
#: systems on temporarily floating (dynamic) nodes and models droop.
_G_LEAK = 1e-7


@dataclass
class TransientResult:
    """Sampled waveforms of one run."""

    times: np.ndarray
    voltages: Dict[str, np.ndarray]
    vdd: float

    def v(self, net: str) -> np.ndarray:
        return self.voltages[net]

    def delay(
        self, in_net: str, out_net: str, in_rising: bool, out_rising: bool,
        after: float = 0.0,
    ) -> Optional[float]:
        return measure_delay(
            self.times, self.v(in_net), self.v(out_net), self.vdd,
            in_rising, out_rising, after,
        )

    def transition(self, net: str, rising: bool, after: float = 0.0) -> Optional[float]:
        return measure_transition(self.times, self.v(net), self.vdd, rising, after)

    def final(self, net: str) -> float:
        return float(self.v(net)[-1])


class TransientSimulator:
    """Simulates a flat transistor netlist with PWL sources on input nets."""

    def __init__(
        self,
        transistors: Sequence[Transistor],
        tech: Technology,
        extra_caps: Optional[Mapping[str, float]] = None,
    ):
        self.tech = tech
        self.devices = list(transistors)
        self._nodes: List[str] = []
        self._index: Dict[str, int] = {}
        self._collect_nodes()
        self._caps = self._node_capacitance(dict(extra_caps or {}))

    # -- construction ----------------------------------------------------------

    def _collect_nodes(self) -> None:
        seen = []
        for device in self.devices:
            for net in (device.drain, device.gate, device.source):
                if net not in _SUPPLIES and net not in self._index:
                    self._index[net] = len(seen)
                    seen.append(net)
        self._nodes = seen

    def _node_capacitance(self, extra: Dict[str, float]) -> np.ndarray:
        caps = np.full(len(self._nodes), 0.05)  # floor keeps C nonsingular
        for device in self.devices:
            if device.gate in self._index:
                caps[self._index[device.gate]] += self.tech.c_gate * device.width
            for terminal in (device.drain, device.source):
                if terminal in self._index:
                    caps[self._index[terminal]] += self.tech.c_diff * device.width
        for net, cap in extra.items():
            if net in self._index:
                caps[self._index[net]] += cap
        return caps

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    # -- device conductance ------------------------------------------------------

    def _conductance(self, device: Transistor, v_gate: float) -> float:
        """Smoothly switched conductance of one device, 1/kΩ."""
        vdd = self.tech.vdd
        half = vdd / 2.0
        window = _SWITCH_WINDOW * vdd
        if device.polarity is Polarity.NMOS:
            drive = (v_gate - (half - window / 2.0)) / window
            r_unit = self.tech.r_nmos
        else:
            drive = ((half + window / 2.0) - v_gate) / window
            r_unit = self.tech.r_pmos
        drive = min(1.0, max(0.0, drive))
        g_on = device.width / r_unit
        return g_on * drive + 1e-9

    # -- simulation ----------------------------------------------------------------

    def run(
        self,
        stimuli: Mapping[str, PiecewiseLinear],
        duration: float,
        dt: float = 1.0,
        initial: Optional[Mapping[str, float]] = None,
    ) -> TransientResult:
        """Integrate for ``duration`` ps with step ``dt`` ps.

        ``stimuli`` binds input nets to PWL sources (those nodes are forced);
        ``initial`` optionally sets starting voltages of free nodes (default:
        sources at t=0, everything else 0 V — callers settling dynamic nodes
        should precharge explicitly or simulate a precharge phase).
        """
        n = len(self._nodes)
        steps = int(round(duration / dt)) + 1
        times = np.arange(steps) * dt

        forced = {net: src for net, src in stimuli.items() if net in self._index}
        forced_idx = np.array(
            sorted(self._index[net] for net in forced), dtype=int
        )
        free_idx = np.array(
            [i for i in range(n) if i not in set(forced_idx)], dtype=int
        )
        pos_of_free = {int(i): k for k, i in enumerate(free_idx)}

        volt = np.zeros(n)
        for net, src in forced.items():
            volt[self._index[net]] = src.value(0.0)
        if initial:
            for net, value in initial.items():
                if net in self._index:
                    volt[self._index[net]] = value

        waveforms = np.zeros((steps, n))
        waveforms[0] = volt
        vdd = self.tech.vdd

        for k in range(1, steps):
            t = times[k]
            for net, src in forced.items():
                volt[self._index[net]] = src.value(t)
            if len(free_idx):
                A = np.zeros((len(free_idx), len(free_idx)))
                b = np.zeros(len(free_idx))
                inv_dt = 1.0 / dt
                for j, i in enumerate(free_idx):
                    A[j, j] += self._caps[i] * inv_dt + _G_LEAK
                    b[j] += self._caps[i] * inv_dt * volt[i]
                for device in self.devices:
                    v_gate = self._terminal_voltage(device.gate, volt, vdd)
                    g = self._conductance(device, v_gate)
                    self._stamp(device, g, volt, vdd, A, b, pos_of_free)
                solution = np.linalg.solve(A, b)
                for j, i in enumerate(free_idx):
                    volt[i] = min(max(solution[j], -0.2 * vdd), 1.2 * vdd)
            waveforms[k] = volt

        voltages = {
            net: waveforms[:, self._index[net]].copy() for net in self._nodes
        }
        voltages["vdd"] = np.full(steps, vdd)
        voltages["vss"] = np.zeros(steps)
        return TransientResult(times=times, voltages=voltages, vdd=vdd)

    def _terminal_voltage(self, net: str, volt: np.ndarray, vdd: float) -> float:
        if net == "vdd":
            return vdd
        if net == "vss":
            return 0.0
        return float(volt[self._index[net]])

    def _stamp(
        self,
        device: Transistor,
        g: float,
        volt: np.ndarray,
        vdd: float,
        A: np.ndarray,
        b: np.ndarray,
        pos_of_free: Mapping[int, int],
    ) -> None:
        """Stamp the device's channel conductance into the backward-Euler
        system (standard two-terminal conductance stamp between drain and
        source, with supply/forced terminals moved to the RHS)."""
        d, s = device.drain, device.source
        di = self._index.get(d) if d not in _SUPPLIES else None
        si = self._index.get(s) if s not in _SUPPLIES else None
        d_free = di is not None and di in pos_of_free
        s_free = si is not None and si in pos_of_free
        v_d = self._terminal_voltage(d, volt, vdd)
        v_s = self._terminal_voltage(s, volt, vdd)
        if d_free:
            j = pos_of_free[di]
            A[j, j] += g
            if s_free:
                A[j, pos_of_free[si]] -= g
            else:
                b[j] += g * v_s
        if s_free:
            j = pos_of_free[si]
            A[j, j] += g
            if d_free:
                A[j, pos_of_free[di]] -= g
            else:
                b[j] += g * v_d
