"""Dynamic power estimation — the PowerMill substitute.

Section 6 reports power with PowerMill; SMART's own cost metrics are total
transistor width and clock load.  This estimator computes activity-weighted
CV²f power over the flat netlist so block-level experiments (Table 2, §6.4)
can report power the way the paper does: switched capacitance per net times
activity, plus the clock network, which switches every cycle.

Domino nodes precharge each cycle, so their activity is much higher than a
static node's — that is why Table 1 shows domino topologies with the largest
savings and why clock load is a first-class metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..models.gates import ModelLibrary
from ..netlist.circuit import Circuit
from ..netlist.nets import NetKind
from ..netlist.stages import StageKind

#: Activity of a clock net: one rise + one fall per cycle.
CLOCK_ACTIVITY = 1.0
#: Activity of a dynamic (domino) node: precharges every cycle; evaluates with
#: data probability ~0.5 -> about one full swing per cycle on average.
DOMINO_ACTIVITY = 0.5


@dataclass
class PowerReport:
    """Breakdown of estimated dynamic power, µW."""

    total: float
    clock: float
    by_net: Dict[str, float] = field(default_factory=dict)

    @property
    def signal(self) -> float:
        return self.total - self.clock

    def fraction_of(self, nets) -> float:
        """Fraction of total power dissipated on the given nets."""
        if self.total <= 0:
            return 0.0
        return sum(self.by_net.get(n, 0.0) for n in nets) / self.total


class PowerEstimator:
    """Activity-based dynamic power over a circuit at concrete widths."""

    def __init__(self, circuit: Circuit, library: ModelLibrary):
        self.circuit = circuit
        self.library = library
        self.tech = library.tech

    def net_capacitance(self, widths: Mapping[str, float]) -> Dict[str, float]:
        """Total capacitance per net, fF: fanout gate caps + driver diffusion
        + wire/external."""
        resolved = self._resolve(widths)
        caps: Dict[str, float] = {}
        for net in self.circuit.nets.values():
            if net.kind in (NetKind.SUPPLY, NetKind.GROUND):
                continue
            caps[net.name] = net.fixed_cap
        table = self.circuit.size_table
        for net_name in list(caps):
            for stage, pin in self.circuit.fanout_of(net_name):
                caps[net_name] += self.library.input_cap(stage, pin, table).evaluate(
                    resolved
                )
        for stage in self.circuit.stages:
            out = stage.output.name
            if out in caps:
                caps[out] += self.library.output_parasitic(
                    stage, table
                ).evaluate(resolved)
        return caps

    def net_activity(self, net_name: str) -> float:
        """Switching activity of a net (full swings per cycle)."""
        net = self.circuit.net(net_name)
        if net.kind is NetKind.CLOCK:
            return CLOCK_ACTIVITY
        driver = self.circuit.driver_of(net_name)
        if driver is not None and driver.kind is StageKind.DOMINO:
            return DOMINO_ACTIVITY
        if driver is not None:
            # A static gate fed by a domino node follows its activity.
            for pin in driver.inputs:
                upstream = self.circuit.driver_of(pin.net.name)
                if upstream is not None and upstream.kind is StageKind.DOMINO:
                    return DOMINO_ACTIVITY
        return self.tech.activity

    def estimate(
        self,
        widths: Mapping[str, float],
        activity_overrides: Optional[Mapping[str, float]] = None,
    ) -> PowerReport:
        """Estimate dynamic power at the given sizes, µW."""
        overrides = dict(activity_overrides or {})
        caps = self.net_capacitance(widths)
        by_net: Dict[str, float] = {}
        clock = 0.0
        clock_nets = set(self.circuit.clock_nets())
        for net_name, cap in caps.items():
            activity = overrides.get(net_name, self.net_activity(net_name))
            power = self.tech.dynamic_power(cap, activity)
            by_net[net_name] = power
            if net_name in clock_nets:
                clock += power
        total = sum(by_net.values())
        return PowerReport(total=total, clock=clock, by_net=by_net)

    def _resolve(self, widths: Mapping[str, float]) -> Dict[str, float]:
        names = self.circuit.size_table.names()
        if all(n in widths for n in names):
            return dict(widths)
        return self.circuit.size_table.resolve(widths)
