"""Stimulus construction and waveform measurement for the transient simulator.

Delay numbers throughout the package follow the usual convention: delay is
measured between 50% crossings, transition time between 20% and 80% crossings
scaled by 1/0.6 to a full-swing equivalent.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PiecewiseLinear:
    """A piecewise-linear voltage source: sorted ``(time, voltage)`` points,
    held constant before the first and after the last point."""

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        times = [t for t, _ in self.points]
        if not times:
            raise ValueError("piecewise-linear source needs at least one point")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("piecewise-linear times must be strictly increasing")

    def value(self, t: float) -> float:
        points = self.points
        if t <= points[0][0]:
            return points[0][1]
        if t >= points[-1][0]:
            return points[-1][1]
        times = [p[0] for p in points]
        i = bisect.bisect_right(times, t)
        t0, v0 = points[i - 1]
        t1, v1 = points[i]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def sample(self, times: np.ndarray) -> np.ndarray:
        return np.array([self.value(float(t)) for t in times])


def constant(voltage: float) -> PiecewiseLinear:
    return PiecewiseLinear(((0.0, voltage),))


def step(
    vdd: float, at: float = 100.0, rise: float = 20.0, falling: bool = False
) -> PiecewiseLinear:
    """A 0->vdd (or vdd->0) ramp starting at ``at`` with transition ``rise``."""
    lo, hi = (vdd, 0.0) if falling else (0.0, vdd)
    return PiecewiseLinear(((0.0, lo), (at, lo), (at + rise, hi)))


def clock(
    vdd: float,
    period: float,
    cycles: int = 2,
    rise: float = 15.0,
    start_low: float = 100.0,
) -> PiecewiseLinear:
    """A square clock: low until ``start_low``, then ``cycles`` full periods."""
    points: List[Tuple[float, float]] = [(0.0, 0.0)]
    t = start_low
    for _ in range(cycles):
        points.append((t, 0.0))
        points.append((t + rise, vdd))
        points.append((t + period / 2.0, vdd))
        points.append((t + period / 2.0 + rise, 0.0))
        t += period
    return PiecewiseLinear(tuple(points))


def crossing_time(
    times: Sequence[float],
    values: Sequence[float],
    threshold: float,
    rising: bool,
    after: float = 0.0,
) -> Optional[float]:
    """First time ``values`` crosses ``threshold`` in the given direction at or
    after ``after`` (linear interpolation); None when it never does."""
    times = np.asarray(times)
    values = np.asarray(values)
    for i in range(1, len(times)):
        if times[i] < after:
            continue
        v0, v1 = values[i - 1], values[i]
        if rising and v0 < threshold <= v1:
            frac = (threshold - v0) / (v1 - v0)
            return float(times[i - 1] + frac * (times[i] - times[i - 1]))
        if not rising and v0 > threshold >= v1:
            frac = (v0 - threshold) / (v0 - v1)
            return float(times[i - 1] + frac * (times[i] - times[i - 1]))
    return None


def measure_delay(
    times: Sequence[float],
    v_in: Sequence[float],
    v_out: Sequence[float],
    vdd: float,
    in_rising: bool,
    out_rising: bool,
    after: float = 0.0,
) -> Optional[float]:
    """50%-to-50% delay from an input edge to the next output edge."""
    t_in = crossing_time(times, v_in, vdd / 2.0, in_rising, after)
    if t_in is None:
        return None
    t_out = crossing_time(times, v_out, vdd / 2.0, out_rising, t_in)
    if t_out is None:
        return None
    return t_out - t_in


def measure_transition(
    times: Sequence[float],
    values: Sequence[float],
    vdd: float,
    rising: bool,
    after: float = 0.0,
) -> Optional[float]:
    """20%-80% transition time scaled to full swing (divide by 0.6)."""
    lo, hi = 0.2 * vdd, 0.8 * vdd
    first, second = (lo, hi) if rising else (hi, lo)
    t0 = crossing_time(times, values, first, rising, after)
    if t0 is None:
        return None
    t1 = crossing_time(times, values, second, rising, t0)
    if t1 is None:
        return None
    return (t1 - t0) / 0.6
