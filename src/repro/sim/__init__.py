"""Simulation substrates: static timing (PathMill substitute), transient
switch-level RC (SPICE substitute), and power estimation (PowerMill
substitute)."""

from .power import PowerEstimator, PowerReport
from .report_fmt import format_timing_report
from .timing import ArrivalEvent, StaticTimingAnalyzer, TimingReport, stage_arcs
from .transient import TransientResult, TransientSimulator
from .waveforms import (
    PiecewiseLinear,
    clock,
    constant,
    crossing_time,
    measure_delay,
    measure_transition,
    step,
)

__all__ = [
    "StaticTimingAnalyzer",
    "TimingReport",
    "ArrivalEvent",
    "stage_arcs",
    "TransientSimulator",
    "TransientResult",
    "PowerEstimator",
    "PowerReport",
    "format_timing_report",
    "PiecewiseLinear",
    "constant",
    "step",
    "clock",
    "crossing_time",
    "measure_delay",
    "measure_transition",
]
