"""Human-readable timing/slack reporting.

What a designer reads after a sizing run: per-output arrivals with slack
against the spec, the critical path hop by hop, and per-net slopes against
the reliability limits — the PathMill-style text report for our STA.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from ..models.gates import ModelLibrary, Transition
from ..netlist.circuit import Circuit
from ..sizing.constraints import DelaySpec
from .timing import StaticTimingAnalyzer


def format_timing_report(
    circuit: Circuit,
    library: ModelLibrary,
    widths: Mapping[str, float],
    spec: Optional[DelaySpec] = None,
    input_slope: float = 30.0,
) -> str:
    """Render arrivals, slacks, the critical path and slope checks."""
    analyzer = StaticTimingAnalyzer(circuit, library)
    slope = spec.input_slope if spec is not None else input_slope
    report = analyzer.analyze(widths, input_slope=slope)
    lines: List[str] = [f"timing report: {circuit.name}"]

    lines.append("")
    lines.append(f"{'output':<16} {'rise ps':>9} {'fall ps':>9} {'slack ps':>9}")
    worst_net = None
    worst_time = -1.0
    for net in circuit.primary_outputs:
        rise = report.arrival(net, Transition.RISE)
        fall = report.arrival(net, Transition.FALL)
        t = report.net_delay(net)
        if t > worst_time:
            worst_time, worst_net = t, net
        slack = f"{spec.data - t:>9.1f}" if spec is not None else f"{'-':>9}"
        lines.append(
            f"{net:<16} "
            f"{rise.time if rise else 0.0:>9.1f} "
            f"{fall.time if fall else 0.0:>9.1f} "
            f"{slack}"
        )

    if worst_net is not None:
        lines.append("")
        lines.append(f"critical path (to {worst_net}):")
        chain = report.critical_path(worst_net)
        prev_time = 0.0
        for event in chain:
            incr = event.time - prev_time
            prev_time = event.time
            via = (
                f"via {event.from_stage}/{event.from_pin}"
                if event.from_stage
                else "launch"
            )
            lines.append(
                f"  {event.net:<20} {event.transition.value:<5} "
                f"t={event.time:8.1f}  +{incr:7.1f}  slope={event.slope:6.1f}  {via}"
            )

    if spec is not None:
        lines.append("")
        lines.append("slope checks:")
        outputs = set(circuit.primary_outputs)
        violations = 0
        for (net, trans), event in sorted(
            report.arrivals.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
        ):
            if net in circuit.primary_inputs or net in circuit.clock_nets():
                continue
            limit = (
                spec.max_output_slope if net in outputs else spec.max_internal_slope
            )
            if event.slope > limit:
                violations += 1
                lines.append(
                    f"  VIOLATION {net} ({trans.value}): "
                    f"{event.slope:.1f} ps > {limit:.1f} ps"
                )
        if violations == 0:
            lines.append("  all nets within limits")
    return "\n".join(lines)
