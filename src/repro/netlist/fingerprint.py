"""Content-addressed circuit fingerprinting.

A fingerprint is a stable SHA-256 digest of everything that determines a
circuit's *sizing problem*: the stage graph (kinds, pin wiring and
classification, structural params), the nets (kinds, fixed caps, wire
resistance), the size table (bounds, pins, ratio ties) and the declared
interface (primary inputs/outputs, input phases, clock).  Two circuits with
the same fingerprint produce byte-identical constraint sets, so a sizing
result computed for one is valid for the other — the foundation of the
persistent sizing cache in :mod:`repro.cache`.

Properties:

* **order-independent** — stages and nets are serialized sorted by name, so
  the digest does not depend on construction order (pin order *within* a
  stage is kept: it is semantic — domino leg grouping, NAND stack order);
* **name-blind at the circuit level** — ``circuit.name`` is excluded, so a
  regenerated macro with a cosmetic rename still hits the cache;
* **name-blind for internal nets** — wires are serialized under canonical
  names derived from their driver stages (``~`` + sorted driver names), so
  renaming an internal wire cannot change the digest.  Interface nets
  (primary inputs/outputs, clock) keep their concrete names: they *are* the
  macro's contract;
* **canonical floats** — values pass through ``repr`` via JSON, which is
  deterministic for a given Python build.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List

from .circuit import Circuit

#: Bump when the serialized form below changes shape, so stale cache entries
#: from older builds can never alias a new fingerprint.
#: 2: internal nets serialized under driver-derived canonical names.
FINGERPRINT_VERSION = 2


def canonical_net_names(circuit: Circuit) -> Dict[str, str]:
    """Map every net name to its canonical (rename-invariant) form.

    Interface nets map to themselves.  Internal wires map to ``~`` plus the
    sorted names of their driving stages — injective because a stage drives
    exactly one output net, so distinct nets have disjoint driver sets.  An
    undriven internal wire (an ERC002 violation) keeps its concrete name.
    """
    interface = set(circuit.primary_inputs) | set(circuit.primary_outputs)
    interface.update(circuit.clock_nets())
    mapping: Dict[str, str] = {}
    for name in circuit.nets:
        if name in interface:
            mapping[name] = name
            continue
        drivers = sorted(s.name for s in circuit.drivers_of(name))
        mapping[name] = "~" + "+".join(drivers) if drivers else name
    return mapping


def _canonical_param(value: Any) -> Any:
    """Normalize a stage param into a JSON-stable shape."""
    if isinstance(value, (list, tuple)):
        return [_canonical_param(v) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    return repr(value)


def circuit_payload(circuit: Circuit) -> Dict[str, Any]:
    """The canonical (JSON-ready) form the fingerprint hashes.

    Exposed separately so tests and debugging tools can diff two payloads
    when fingerprints unexpectedly disagree.
    """
    canon = canonical_net_names(circuit)
    stages: List[Dict[str, Any]] = []
    for stage in sorted(circuit.stages, key=lambda s: s.name):
        stages.append(
            {
                "name": stage.name,
                "kind": stage.kind.value,
                "inputs": [
                    [
                        pin.name,
                        canon[pin.net.name],
                        pin.pin_class.value,
                        pin.speed.value if pin.speed is not None else None,
                        bool(pin.inverted),
                    ]
                    for pin in stage.inputs
                ],
                "output": canon[stage.output.name],
                "size_vars": {
                    role: stage.size_vars[role]
                    for role in sorted(stage.size_vars)
                },
                "params": {
                    key: _canonical_param(stage.params[key])
                    for key in sorted(stage.params)
                },
            }
        )
    nets = sorted(
        [
            canon[net.name],
            net.kind.value,
            net.wire_cap,
            net.external_load,
            net.wire_res,
        ]
        for net in circuit.nets.values()
    )
    size_vars = [
        [
            var.name,
            var.lower,
            var.upper,
            var.pinned,
            list(var.ratio_of) if var.ratio_of is not None else None,
        ]
        for var in sorted(circuit.size_table, key=lambda v: v.name)
    ]
    return {
        "version": FINGERPRINT_VERSION,
        "stages": stages,
        "nets": nets,
        "size_vars": size_vars,
        "primary_inputs": sorted(circuit.primary_inputs),
        "primary_outputs": sorted(circuit.primary_outputs),
        "input_phases": {
            net: circuit.input_phases[net]
            for net in sorted(circuit.input_phases)
        },
        "clock": circuit.clock,
    }


def circuit_fingerprint(circuit: Circuit) -> str:
    """Stable, order-independent SHA-256 hex digest of a circuit."""
    blob = json.dumps(
        circuit_payload(circuit),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
