"""Content-addressed circuit fingerprinting.

A fingerprint is a stable SHA-256 digest of everything that determines a
circuit's *sizing problem*: the stage graph (kinds, pin wiring and
classification, structural params), the nets (kinds, fixed caps, wire
resistance), the size table (bounds, pins, ratio ties) and the declared
interface (primary inputs/outputs, input phases, clock).  Two circuits with
the same fingerprint produce byte-identical constraint sets, so a sizing
result computed for one is valid for the other — the foundation of the
persistent sizing cache in :mod:`repro.cache`.

Properties:

* **order-independent** — stages and nets are serialized sorted by name, so
  the digest does not depend on construction order (pin order *within* a
  stage is kept: it is semantic — domino leg grouping, NAND stack order);
* **name-blind at the circuit level** — ``circuit.name`` is excluded, so a
  regenerated macro with a cosmetic rename still hits the cache;
* **name-blind for internal nets** — wires are serialized under canonical
  names derived from their driver stages (``~`` + sorted driver names), so
  renaming an internal wire cannot change the digest.  Interface nets
  (primary inputs/outputs, clock) keep their concrete names: they *are* the
  macro's contract;
* **canonical floats** — values pass through ``repr`` via JSON, which is
  deterministic for a given Python build.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Dict, List

from .circuit import Circuit

#: Bump when the serialized form below changes shape, so stale cache entries
#: from older builds can never alias a new fingerprint.
#: 2: internal nets serialized under driver-derived canonical names.
FINGERPRINT_VERSION = 2

#: The independent *facets* of a circuit that lint rules declare as inputs
#: (see ``Rule.facets``).  A rule result is invalidated only when one of its
#: declared facets' fingerprints changed:
#:
#: * ``topology`` — stage graph, pin wiring/classification, structural
#:   params, net kinds, interface (PI/PO/clock).  No widths, no caps.
#: * ``sizing``  — the size table (bounds, pins, ratio ties), the
#:   stage-to-size-var binding, and every fixed electrical value on nets
#:   (wire cap, external load, wire resistance).
#: * ``phases``  — declared input clock-phase relationships plus the clock
#:   binding (what DFA301/DFA302 seed their lattices from).
#: * ``funcspec`` — a semantic digest of the attached golden
#:   :class:`~repro.netlist.funcspec.FunctionalSpec` (truth-table sample,
#:   not object identity, so re-constructed but equivalent specs hash equal).
FACET_NAMES = ("topology", "sizing", "phases", "funcspec")

#: Bump when any facet payload below changes shape.
FACET_VERSION = 1

#: Exact truth-table enumeration limit for the funcspec digest; above this
#: many (non-clock) inputs the digest falls back to seeded sampling.
_FUNCSPEC_EXACT_INPUTS = 10
_FUNCSPEC_SAMPLES = 64
_FUNCSPEC_SEED = 20260806


def canonical_net_names(circuit: Circuit) -> Dict[str, str]:
    """Map every net name to its canonical (rename-invariant) form.

    Interface nets map to themselves.  Internal wires map to ``~`` plus the
    sorted names of their driving stages — injective because a stage drives
    exactly one output net, so distinct nets have disjoint driver sets.  An
    undriven internal wire (an ERC002 violation) keeps its concrete name.
    """
    interface = set(circuit.primary_inputs) | set(circuit.primary_outputs)
    interface.update(circuit.clock_nets())
    mapping: Dict[str, str] = {}
    for name in circuit.nets:
        if name in interface:
            mapping[name] = name
            continue
        drivers = sorted(s.name for s in circuit.drivers_of(name))
        mapping[name] = "~" + "+".join(drivers) if drivers else name
    return mapping


def _canonical_param(value: Any) -> Any:
    """Normalize a stage param into a JSON-stable shape."""
    if isinstance(value, (list, tuple)):
        return [_canonical_param(v) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    return repr(value)


def circuit_payload(circuit: Circuit) -> Dict[str, Any]:
    """The canonical (JSON-ready) form the fingerprint hashes.

    Exposed separately so tests and debugging tools can diff two payloads
    when fingerprints unexpectedly disagree.
    """
    canon = canonical_net_names(circuit)
    stages: List[Dict[str, Any]] = []
    for stage in sorted(circuit.stages, key=lambda s: s.name):
        stages.append(
            {
                "name": stage.name,
                "kind": stage.kind.value,
                "inputs": [
                    [
                        pin.name,
                        canon[pin.net.name],
                        pin.pin_class.value,
                        pin.speed.value if pin.speed is not None else None,
                        bool(pin.inverted),
                    ]
                    for pin in stage.inputs
                ],
                "output": canon[stage.output.name],
                "size_vars": {
                    role: stage.size_vars[role]
                    for role in sorted(stage.size_vars)
                },
                "params": {
                    key: _canonical_param(stage.params[key])
                    for key in sorted(stage.params)
                },
            }
        )
    nets = sorted(
        [
            canon[net.name],
            net.kind.value,
            net.wire_cap,
            net.external_load,
            net.wire_res,
        ]
        for net in circuit.nets.values()
    )
    size_vars = [
        [
            var.name,
            var.lower,
            var.upper,
            var.pinned,
            list(var.ratio_of) if var.ratio_of is not None else None,
        ]
        for var in sorted(circuit.size_table, key=lambda v: v.name)
    ]
    return {
        "version": FINGERPRINT_VERSION,
        "stages": stages,
        "nets": nets,
        "size_vars": size_vars,
        "primary_inputs": sorted(circuit.primary_inputs),
        "primary_outputs": sorted(circuit.primary_outputs),
        "input_phases": {
            net: circuit.input_phases[net]
            for net in sorted(circuit.input_phases)
        },
        "clock": circuit.clock,
    }


def circuit_fingerprint(circuit: Circuit) -> str:
    """Stable, order-independent SHA-256 hex digest of a circuit."""
    blob = json.dumps(
        circuit_payload(circuit),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- facet fingerprints (incremental lint) ---------------------------------


def funcspec_digest(circuit: Circuit) -> str:
    """Semantic digest of the circuit's golden functional spec.

    Hashes a deterministic truth-table sample (exact below
    ``_FUNCSPEC_EXACT_INPUTS`` non-clock inputs, seeded random beyond;
    constrained specs additionally contribute sampler-drawn valid vectors),
    so two independently constructed but extensionally equal specs digest
    identically, while any behavioral edit — a changed output function, a
    widened/narrowed valid space, a renamed port — changes the digest.
    Returns ``"none"`` when no spec is attached.
    """
    spec = getattr(circuit, "functional_spec", None)
    if spec is None:
        return "none"
    outputs = sorted(getattr(spec, "outputs", {}) or {})
    if not outputs:
        return "opaque:" + type(spec).__name__
    clocks = set(circuit.clock_nets())
    inputs = sorted(n for n in circuit.primary_inputs if n not in clocks)
    envs: List[Dict[str, bool]] = []
    if len(inputs) <= _FUNCSPEC_EXACT_INPUTS:
        for bits in range(1 << len(inputs)):
            envs.append(
                {name: bool((bits >> i) & 1) for i, name in enumerate(inputs)}
            )
    else:
        rng = random.Random(_FUNCSPEC_SEED)
        for _ in range(_FUNCSPEC_SAMPLES):
            envs.append({name: bool(rng.getrandbits(1)) for name in inputs})
    sampler = getattr(spec, "sampler", None)
    if sampler is not None:
        # Sparse valid spaces (one-hot selects) would otherwise contribute
        # almost no valid rows; fold in constrained samples too.
        rng = random.Random(_FUNCSPEC_SEED + 1)
        for _ in range(_FUNCSPEC_SAMPLES):
            drawn = dict(sampler(rng))
            env = {name: bool(drawn.get(name, False)) for name in inputs}
            envs.append(env)
    rows: List[List[int]] = []
    for env in envs:
        bits = [1 if env[name] else 0 for name in inputs]
        try:
            valid = spec.is_valid(env)
        except Exception:
            valid = False
        row = bits + [1 if valid else 0]
        if valid:
            for out in outputs:
                try:
                    row.append(1 if spec.expected(out, env) else 0)
                except Exception:
                    row.append(-1)
        rows.append(row)
    payload = {
        "golden": getattr(spec, "golden", ""),
        "inputs": inputs,
        "outputs": outputs,
        "rows": rows,
    }
    return _facet_digest(payload)


def facet_payloads(circuit: Circuit) -> Dict[str, Dict[str, Any]]:
    """The four facet payloads (JSON-ready) behind :func:`facet_fingerprints`.

    Facets partition :func:`circuit_payload` (plus the funcspec, which the
    sizing fingerprint deliberately ignores) so that an edit invalidates
    only the facets it actually touches: resizing a transistor changes
    ``sizing`` but not ``topology``; redeclaring an input phase changes only
    ``phases``; editing the golden function changes only ``funcspec``.
    """
    canon = canonical_net_names(circuit)
    topo_stages: List[Dict[str, Any]] = []
    sizing_stages: List[List[Any]] = []
    for stage in sorted(circuit.stages, key=lambda s: s.name):
        topo_stages.append(
            {
                "name": stage.name,
                "kind": stage.kind.value,
                "inputs": [
                    [
                        pin.name,
                        canon[pin.net.name],
                        pin.pin_class.value,
                        pin.speed.value if pin.speed is not None else None,
                        bool(pin.inverted),
                    ]
                    for pin in stage.inputs
                ],
                "output": canon[stage.output.name],
                "params": {
                    key: _canonical_param(stage.params[key])
                    for key in sorted(stage.params)
                },
            }
        )
        sizing_stages.append(
            [
                stage.name,
                {role: stage.size_vars[role] for role in sorted(stage.size_vars)},
            ]
        )
    version = [FINGERPRINT_VERSION, FACET_VERSION]
    return {
        "topology": {
            "version": version,
            "stages": topo_stages,
            "nets": sorted(
                [canon[net.name], net.kind.value]
                for net in circuit.nets.values()
            ),
            "primary_inputs": sorted(circuit.primary_inputs),
            "primary_outputs": sorted(circuit.primary_outputs),
            "clock": circuit.clock,
        },
        "sizing": {
            "version": version,
            "stages": sizing_stages,
            "nets": sorted(
                [canon[net.name], net.wire_cap, net.external_load, net.wire_res]
                for net in circuit.nets.values()
            ),
            "size_vars": [
                [
                    var.name,
                    var.lower,
                    var.upper,
                    var.pinned,
                    list(var.ratio_of) if var.ratio_of is not None else None,
                ]
                for var in sorted(circuit.size_table, key=lambda v: v.name)
            ],
        },
        "phases": {
            "version": version,
            "input_phases": {
                net: circuit.input_phases[net]
                for net in sorted(circuit.input_phases)
            },
            "clock": circuit.clock,
        },
        "funcspec": {
            "version": version,
            "digest": funcspec_digest(circuit),
        },
    }


def _facet_digest(payload: Any) -> str:
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def facet_fingerprints(circuit: Circuit) -> Dict[str, str]:
    """SHA-256 digest per facet — the invalidation keys of the incremental
    lint engine (:mod:`repro.lint.incremental`)."""
    return {
        name: _facet_digest(payload)
        for name, payload in facet_payloads(circuit).items()
    }
