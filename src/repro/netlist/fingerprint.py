"""Content-addressed circuit fingerprinting.

A fingerprint is a stable SHA-256 digest of everything that determines a
circuit's *sizing problem*: the stage graph (kinds, pin wiring and
classification, structural params), the nets (kinds, fixed caps, wire
resistance), the size table (bounds, pins, ratio ties) and the declared
interface (primary inputs/outputs, input phases, clock).  Two circuits with
the same fingerprint produce byte-identical constraint sets, so a sizing
result computed for one is valid for the other — the foundation of the
persistent sizing cache in :mod:`repro.cache`.

Properties:

* **order-independent** — stages and nets are serialized sorted by name, so
  the digest does not depend on construction order (pin order *within* a
  stage is kept: it is semantic — domino leg grouping, NAND stack order);
* **name-blind at the circuit level** — ``circuit.name`` is excluded, so a
  regenerated macro with a cosmetic rename still hits the cache;
* **canonical floats** — values pass through ``repr`` via JSON, which is
  deterministic for a given Python build.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List

from .circuit import Circuit

#: Bump when the serialized form below changes shape, so stale cache entries
#: from older builds can never alias a new fingerprint.
FINGERPRINT_VERSION = 1


def _canonical_param(value: Any) -> Any:
    """Normalize a stage param into a JSON-stable shape."""
    if isinstance(value, (list, tuple)):
        return [_canonical_param(v) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    return repr(value)


def circuit_payload(circuit: Circuit) -> Dict[str, Any]:
    """The canonical (JSON-ready) form the fingerprint hashes.

    Exposed separately so tests and debugging tools can diff two payloads
    when fingerprints unexpectedly disagree.
    """
    stages: List[Dict[str, Any]] = []
    for stage in sorted(circuit.stages, key=lambda s: s.name):
        stages.append(
            {
                "name": stage.name,
                "kind": stage.kind.value,
                "inputs": [
                    [
                        pin.name,
                        pin.net.name,
                        pin.pin_class.value,
                        pin.speed.value if pin.speed is not None else None,
                        bool(pin.inverted),
                    ]
                    for pin in stage.inputs
                ],
                "output": stage.output.name,
                "size_vars": {
                    role: stage.size_vars[role]
                    for role in sorted(stage.size_vars)
                },
                "params": {
                    key: _canonical_param(stage.params[key])
                    for key in sorted(stage.params)
                },
            }
        )
    nets = [
        [
            net.name,
            net.kind.value,
            net.wire_cap,
            net.external_load,
            net.wire_res,
        ]
        for net in sorted(circuit.nets.values(), key=lambda n: n.name)
    ]
    size_vars = [
        [
            var.name,
            var.lower,
            var.upper,
            var.pinned,
            list(var.ratio_of) if var.ratio_of is not None else None,
        ]
        for var in sorted(circuit.size_table, key=lambda v: v.name)
    ]
    return {
        "version": FINGERPRINT_VERSION,
        "stages": stages,
        "nets": nets,
        "size_vars": size_vars,
        "primary_inputs": sorted(circuit.primary_inputs),
        "primary_outputs": sorted(circuit.primary_outputs),
        "input_phases": {
            net: circuit.input_phases[net]
            for net in sorted(circuit.input_phases)
        },
        "clock": circuit.clock,
    }


def circuit_fingerprint(circuit: Circuit) -> str:
    """Stable, order-independent SHA-256 hex digest of a circuit."""
    blob = json.dumps(
        circuit_payload(circuit),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
