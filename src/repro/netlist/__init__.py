"""Transistor-level netlist substrate: nets, stages, circuits, SPICE I/O."""

from .circuit import Circuit, CircuitError
from .devices import Polarity, Transistor
from .nets import Net, NetKind, Pin, PinClass, PinSpeed
from .sizing_vars import SizeTable, SizeVar
from .spice import circuit_ports, export_circuit, read_spice, write_spice
from .stages import LogicFamily, Stage, StageKind, VDD, VSS
from .validate import ValidationReport, validate_circuit

__all__ = [
    "Circuit",
    "CircuitError",
    "Transistor",
    "Polarity",
    "Net",
    "NetKind",
    "Pin",
    "PinClass",
    "PinSpeed",
    "SizeTable",
    "SizeVar",
    "Stage",
    "StageKind",
    "LogicFamily",
    "VDD",
    "VSS",
    "ValidationReport",
    "validate_circuit",
    "write_spice",
    "read_spice",
    "export_circuit",
    "circuit_ports",
]
