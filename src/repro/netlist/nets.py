"""Nets and pins.

A net is an electrical node.  Pins attach stages to nets and carry the
classification the SMART constraint generator needs (Section 5.3): whether a
path enters a stage through a *data*, *select/control* or *clock* pin decides
which timing constraints the path produces, and the fast/slow *precedence*
annotation drives the pin-precedence pruning of Section 5.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class NetKind(enum.Enum):
    """Electrical role of a net."""

    SIGNAL = "signal"
    CLOCK = "clock"
    SUPPLY = "supply"   # VDD
    GROUND = "ground"   # VSS


class PinClass(enum.Enum):
    """Functional role of a stage input pin (Section 5.3)."""

    DATA = "data"
    SELECT = "select"   # control pin of a pass gate / tri-state / domino select
    CLOCK = "clock"


class PinSpeed(enum.Enum):
    """Static precedence class for pin-precedence pruning (Section 5.2).

    Pins are partitioned into *fast* and *slow*; when an equivalent slow-pin
    path exists, fast-pin paths are pruned from the constraint set.
    """

    FAST = "fast"
    SLOW = "slow"


@dataclass
class Net:
    """An electrical node.

    Attributes
    ----------
    name:
        Unique within a circuit.
    kind:
        Signal/clock/supply/ground.
    wire_cap:
        Fixed interconnect capacitance on this net, fF.
    external_load:
        Additional load (fF) when the net is a primary output — the ``Cext``
        of equation (1).
    wire_res:
        Lumped interconnect resistance between the driver and the loads, kΩ
        (a long-wire net; the timing models add the Elmore wire term).
    """

    name: str
    kind: NetKind = NetKind.SIGNAL
    wire_cap: float = 0.0
    external_load: float = 0.0
    wire_res: float = 0.0

    def __post_init__(self) -> None:
        if self.wire_cap < 0 or self.external_load < 0:
            raise ValueError(f"net {self.name}: capacitances must be nonnegative")
        if self.wire_res < 0:
            raise ValueError(f"net {self.name}: wire resistance must be nonnegative")

    @property
    def fixed_cap(self) -> float:
        """Total size-independent capacitance hanging on this net, fF."""
        return self.wire_cap + self.external_load

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"Net({self.name!r}, {self.kind.value})"


@dataclass
class Pin:
    """An input pin of a stage.

    Attributes
    ----------
    name:
        Pin name unique within its stage (e.g. ``"in0"``, ``"s1"``, ``"clk"``).
    net:
        The net this pin connects to.
    pin_class:
        Data / select / clock.
    speed:
        Fast/slow precedence class (Section 5.2); ``None`` means unannotated
        (treated as its own class, never pruned against others).
    inverted:
        True when the stage logically inverts this pin's sense before the
        common pull structure (used by the transient stimulus builder).
    """

    name: str
    net: Net
    pin_class: PinClass = PinClass.DATA
    speed: Optional[PinSpeed] = None
    inverted: bool = False

    def __repr__(self) -> str:
        return f"Pin({self.name!r} -> {self.net.name!r}, {self.pin_class.value})"
