"""Size-variable labeling.

Section 4 of the paper: schematics in the SMART database are *unsized* —
transistors carry size *labels* (P1, N1, N2, ...).  Labeling encodes the
designer's regularity/layout intent: every transistor with the same label gets
the same width, and the GP sees one variable per label.  Some devices are tied
to another label by a fixed ratio (e.g. "the size of the inverter in the
pass-gate is a fixed relation of N2"), and the designer may *pin* a label to a
manual size ("the designer should be allowed to control transistor sizes of
portions of the macro while letting the automatic sizer size the rest").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..posy import Monomial, const, var


@dataclass
class SizeVar:
    """One size label.

    Attributes
    ----------
    name:
        The label, e.g. ``"P1"`` (unique within a circuit).
    lower, upper:
        Width bounds in µm (device size constraints of Figure 4).
    pinned:
        When set, the designer fixed this label to a width; the sizer must not
        change it.
    ratio_of:
        ``(other_label, factor)`` — this label's width is always
        ``factor * width(other_label)`` and it is not a free GP variable.
    """

    name: str
    lower: float = 0.4
    upper: float = 200.0
    pinned: Optional[float] = None
    ratio_of: Optional[Tuple[str, float]] = None

    def __post_init__(self) -> None:
        if not 0 < self.lower <= self.upper:
            raise ValueError(f"bad bounds for {self.name}: [{self.lower}, {self.upper}]")
        if self.pinned is not None and not self.lower <= self.pinned <= self.upper:
            raise ValueError(
                f"pinned width {self.pinned} for {self.name} outside "
                f"[{self.lower}, {self.upper}]"
            )
        if self.pinned is not None and self.ratio_of is not None:
            raise ValueError(f"{self.name}: cannot be both pinned and a ratio")

    @property
    def free(self) -> bool:
        """True when the GP may choose this label's width."""
        return self.pinned is None and self.ratio_of is None


class SizeTable:
    """Registry of all size labels of a circuit.

    The table resolves a *free-variable assignment* (what the GP returns) into
    concrete widths for every label, following ratio ties and pins, and
    produces the monomial each label contributes to posynomial models.
    """

    def __init__(self) -> None:
        self._vars: Dict[str, SizeVar] = {}

    def add(self, size_var: SizeVar) -> SizeVar:
        existing = self._vars.get(size_var.name)
        if existing is not None:
            if (existing.lower, existing.upper, existing.pinned, existing.ratio_of) != (
                size_var.lower,
                size_var.upper,
                size_var.pinned,
                size_var.ratio_of,
            ):
                raise ValueError(f"conflicting redefinition of size label {size_var.name}")
            return existing
        if size_var.ratio_of is not None and size_var.ratio_of[0] == size_var.name:
            raise ValueError(f"{size_var.name}: ratio tie to itself")
        self._vars[size_var.name] = size_var
        return size_var

    def declare(
        self,
        name: str,
        lower: float = 0.4,
        upper: float = 200.0,
        pinned: Optional[float] = None,
        ratio_of: Optional[Tuple[str, float]] = None,
    ) -> SizeVar:
        """Shorthand for :meth:`add`."""
        return self.add(SizeVar(name, lower, upper, pinned, ratio_of))

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def __getitem__(self, name: str) -> SizeVar:
        return self._vars[name]

    def __iter__(self) -> Iterator[SizeVar]:
        return iter(self._vars.values())

    def __len__(self) -> int:
        return len(self._vars)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._vars)

    def free_names(self) -> Tuple[str, ...]:
        """Labels the GP optimizes over."""
        return tuple(v.name for v in self._vars.values() if v.free)

    def pin(self, name: str, width: float) -> None:
        """Designer override: fix label ``name`` at ``width`` µm."""
        old = self._vars[name]
        self._vars[name] = SizeVar(name, old.lower, old.upper, pinned=width)

    def unpin(self, name: str) -> None:
        old = self._vars[name]
        self._vars[name] = SizeVar(name, old.lower, old.upper)

    def monomial(self, name: str) -> Monomial:
        """The width of label ``name`` as a monomial in *free* variables.

        Pinned labels become constants; ratio-tied labels become scaled
        monomials of their base label (chasing chains of ties).
        """
        seen = set()
        factor = 1.0
        current = self._vars[name]
        while True:
            if current.name in seen:
                raise ValueError(f"circular ratio tie involving {current.name}")
            seen.add(current.name)
            if current.pinned is not None:
                return const(factor * current.pinned)
            if current.ratio_of is None:
                return factor * var(current.name) if factor != 1.0 else var(current.name)
            base, ratio = current.ratio_of
            if base not in self._vars:
                raise KeyError(f"{current.name} is a ratio of undeclared label {base}")
            factor *= ratio
            current = self._vars[base]

    def resolve(self, free_env: Mapping[str, float]) -> Dict[str, float]:
        """Widths for *every* label given the free-variable assignment."""
        widths: Dict[str, float] = {}
        for size_var in self._vars.values():
            mono = self.monomial(size_var.name)
            widths[size_var.name] = mono.evaluate(free_env)
        return widths

    def default_env(self) -> Dict[str, float]:
        """A feasible starting assignment: geometric mean of each free label's
        bounds (a conventional GP initial point)."""
        env = {}
        for size_var in self._vars.values():
            if size_var.free:
                env[size_var.name] = (size_var.lower * size_var.upper) ** 0.5
        return env

    def minimum_env(self) -> Dict[str, float]:
        """All free labels at their lower bound."""
        return {v.name: v.lower for v in self._vars.values() if v.free}

    def merge(self, other: "SizeTable") -> None:
        """Union another table into this one (identical duplicates allowed)."""
        for size_var in other:
            self.add(size_var)

    def regularity_signature(self, names: Tuple[str, ...]) -> Tuple[str, ...]:
        """Canonical signature of a tuple of labels, resolving ratio ties to
        their base label.  Stages with equal signatures are *identical nodes*
        in the paper's regularity sense (Section 5.2)."""
        resolved = []
        for name in names:
            current = self._vars[name]
            seen = set()
            while current.ratio_of is not None and current.name not in seen:
                seen.add(current.name)
                current = self._vars[current.ratio_of[0]]
            resolved.append(current.name)
        return tuple(resolved)
