"""Golden functional specifications for macros.

A :class:`FunctionalSpec` is the *reference semantics* of a macro: for every
valid assignment of the primary inputs, what boolean value must each primary
output settle to after evaluation?  Macro generators attach one to every
circuit they emit (``Circuit.functional_spec``); the switch-level verifier
(:mod:`repro.lint.symbolic`) checks the extracted transistor-level behavior
against it (rule ``SVC401``) and restricts its electrical checks
(``SVC402``-``SVC404``) to the spec's valid input space.

The spec is deliberately *operational* — plain Python callables over an
input environment — rather than a BDD/AIG package: the corpus macros are
small enough that exact cofactor enumeration (or seeded sampling beyond the
input budget) against a callable is both simpler and harder to get wrong
than maintaining a second symbolic representation.

This module lives in :mod:`repro.netlist` (the lowest layer) so that both
the macro generators and the lint engine can import it without cycles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

#: An input environment: primary-input net name -> boolean value.
Env = Mapping[str, bool]


@dataclass
class FunctionalSpec:
    """The golden function of one macro.

    Attributes
    ----------
    outputs:
        Output net name -> reference function.  Every primary output of the
        circuit the spec is attached to must appear here.
    valid:
        Optional predicate over the input environment.  Environments where
        it returns False are outside the macro's usage contract (e.g. a
        non-one-hot select vector on a strongly-mutexed mux) and are skipped
        by both the equivalence check and the electrical checks.  ``None``
        means every assignment is valid.
    sampler:
        Optional constrained sampler ``rng -> env`` used when the input
        count exceeds the exact-enumeration budget.  Specs with a sparse
        valid space (one-hot selects) must provide one — rejection sampling
        of a 2^-n-density space would never produce a valid vector.
    golden:
        Identity of the golden function family, e.g. ``"mux"``.  All
        topologies implementing the same macro function share one marker so
        tests can assert they were proved against a *single* spec rather
        than six per-topology ones.
    """

    outputs: Dict[str, Callable[[Env], bool]]
    valid: Optional[Callable[[Env], bool]] = None
    sampler: Optional[Callable[[random.Random], Dict[str, bool]]] = None
    golden: str = ""
    #: Free-form notes rendered in diagnostics (e.g. "one-hot selects").
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.outputs:
            raise ValueError("FunctionalSpec needs at least one output")

    def is_valid(self, env: Env) -> bool:
        return True if self.valid is None else bool(self.valid(env))

    def expected(self, output: str, env: Env) -> bool:
        """Reference value of ``output`` under ``env``."""
        return bool(self.outputs[output](env))
