"""Structural validation of circuits.

Run after macro generation and after designer edits (Section 2: "a macro may
not always be realized in exactly the same way it exists in the database ...
should therefore support editing").  The checks catch the structural mistakes
edits introduce: multiply-driven or floating nets, missing clock hookups on
dynamic stages, dangling labels, and select sets that violate their declared
mutex discipline width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .circuit import Circuit
from .nets import NetKind, PinClass
from .stages import StageKind, VDD, VSS


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_circuit`."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise ValueError("circuit validation failed:\n" + "\n".join(self.errors))


def validate_circuit(circuit: Circuit) -> ValidationReport:
    """Run all structural checks; returns a :class:`ValidationReport`."""
    report = ValidationReport()
    _check_drivers(circuit, report)
    _check_floating(circuit, report)
    _check_clocks(circuit, report)
    _check_labels(circuit, report)
    _check_mutex(circuit, report)
    _check_acyclic(circuit, report)
    return report


def _check_drivers(circuit: Circuit, report: ValidationReport) -> None:
    for net in circuit.nets.values():
        if net.kind in (NetKind.SUPPLY, NetKind.GROUND):
            continue
        drivers = circuit.drivers_of(net.name)
        is_input = net.name in circuit.primary_inputs or net.kind is NetKind.CLOCK
        if is_input and drivers:
            report.errors.append(
                f"net {net.name}: primary input/clock is also driven by "
                f"{drivers[0].name}"
            )
        if not is_input and not drivers:
            if circuit.fanout_of(net.name):
                report.errors.append(f"net {net.name}: loaded but undriven")
        if len(drivers) > 1:
            kinds = {s.kind for s in drivers}
            shareable = kinds <= {StageKind.TRISTATE} or kinds <= {StageKind.PASSGATE}
            if not shareable:
                report.errors.append(
                    f"net {net.name}: multiple non-shareable drivers "
                    f"({', '.join(s.name for s in drivers)})"
                )


def _check_floating(circuit: Circuit, report: ValidationReport) -> None:
    for net in circuit.nets.values():
        if net.kind in (NetKind.SUPPLY, NetKind.GROUND, NetKind.CLOCK):
            continue
        loaded = bool(circuit.fanout_of(net.name)) or net.name in circuit.primary_outputs
        driven = bool(circuit.drivers_of(net.name)) or net.name in circuit.primary_inputs
        if driven and not loaded:
            report.warnings.append(f"net {net.name}: driven but unloaded (dangling)")


def _check_clocks(circuit: Circuit, report: ValidationReport) -> None:
    for stage in circuit.stages:
        if stage.kind is StageKind.DOMINO:
            clock_pins = stage.clock_pins()
            if not clock_pins:
                report.errors.append(f"stage {stage.name}: domino without clock pin")
            for pin in clock_pins:
                if pin.net.kind is not NetKind.CLOCK:
                    report.errors.append(
                        f"stage {stage.name}: clock pin on non-clock net {pin.net.name}"
                    )


def _check_labels(circuit: Circuit, report: ValidationReport) -> None:
    used = set()
    for stage in circuit.stages:
        for label in stage.size_vars.values():
            used.add(label)
            if label not in circuit.size_table:
                report.errors.append(
                    f"stage {stage.name}: size label {label} not in size table"
                )
    for size_var in circuit.size_table:
        if size_var.name not in used and size_var.ratio_of is None:
            report.warnings.append(f"size label {size_var.name}: declared but unused")


def _check_mutex(circuit: Circuit, report: ValidationReport) -> None:
    """Strongly-mutexed pass-gate muxes (Figure 2a) assume one-hot selects;
    the structural proxy we can check is that the select nets of a mux's pass
    gates are distinct."""
    by_output = {}
    for stage in circuit.stages:
        if stage.kind is StageKind.PASSGATE and stage.params.get("mutex") == "strong":
            by_output.setdefault(stage.output.name, []).append(stage)
    for out, gates in by_output.items():
        selects = [g.select_pins()[0].net.name for g in gates]
        if len(set(selects)) != len(selects):
            report.errors.append(
                f"net {out}: strongly-mutexed pass gates share a select net"
            )


def _check_acyclic(circuit: Circuit, report: ValidationReport) -> None:
    try:
        circuit.topological_stages()
    except Exception as exc:  # CircuitError
        report.errors.append(str(exc))
