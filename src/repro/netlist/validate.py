"""Structural validation of circuits.

Run after macro generation and after designer edits (Section 2: "a macro may
not always be realized in exactly the same way it exists in the database ...
should therefore support editing").

Since the ``repro.lint`` package landed, this module is a thin compatibility
facade: the checks themselves are the lint ``structural`` rule group
(``ERC001``–``ERC009``), and :func:`validate_circuit` adapts a
:class:`repro.lint.LintReport` into the legacy string-based
:class:`ValidationReport` shape that macro generators and existing callers
consume.  Run :func:`repro.lint.lint_circuit` directly for rule IDs,
locations, waivers, and the family-semantics rule group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .circuit import Circuit


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_circuit`."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise ValueError("circuit validation failed:\n" + "\n".join(self.errors))


def validate_circuit(circuit: Circuit) -> ValidationReport:
    """Run the structural lint rules; returns a :class:`ValidationReport`."""
    # Imported lazily: repro.lint depends on repro.netlist submodules, and
    # this module is imported by repro.netlist.__init__ itself.
    from ..lint.runner import lint_circuit

    lint_report = lint_circuit(circuit, groups=("structural",))
    return ValidationReport(
        errors=[d.text for d in lint_report.errors],
        warnings=[d.text for d in lint_report.warnings],
    )
