"""Circuit container: stage graph + flat transistor expansion.

A :class:`Circuit` is what a macro generator emits and everything downstream
consumes: the sizer and static timing analyzer walk its *stage graph*; area,
power, SPICE export and the transient simulator use the flat transistor view
from :meth:`Circuit.expand_transistors`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import networkx as nx

from ..posy import Monomial, Posynomial, posy_sum
from .devices import Transistor
from .nets import Net, NetKind, Pin
from .sizing_vars import SizeTable, SizeVar
from .stages import Stage, StageKind, VDD, VSS


class CircuitError(Exception):
    """Structural problem in a circuit."""


#: Behaviors a designer may declare for a primary input (Section 4's "the
#: macro cells carry usage rules" — the interface half of those rules).
#: ``mono_rise``/``mono_fall`` promise a monotone edge during evaluate and a
#: known precharge level; ``steady`` promises stability across the whole
#: clock cycle; ``async`` promises nothing (may glitch at any time).
INPUT_PHASES = ("mono_rise", "mono_fall", "steady", "async")


class Circuit:
    """A hierarchically named, stage-level circuit with shared size labels."""

    def __init__(self, name: str):
        self.name = name
        self.nets: Dict[str, Net] = {}
        self.stages: List[Stage] = []
        self.size_table = SizeTable()
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        #: Declared input behavior per primary-input net (see
        #: :data:`INPUT_PHASES`).  Inputs without a declaration are treated
        #: conservatively by analyses (unknown static level).
        self.input_phases: Dict[str, str] = {}
        self.clock: Optional[str] = None
        #: Golden :class:`~repro.netlist.funcspec.FunctionalSpec` attached
        #: by the macro generator (None for hand-built circuits).  The
        #: switch-level verifier (SVC401) checks the extracted behavior
        #: against it.
        self.functional_spec = None
        self._stage_by_name: Dict[str, Stage] = {}
        self._drivers: Dict[str, Stage] = {}
        self._all_drivers: Dict[str, List[Stage]] = {}
        self._fanout: Dict[str, List[Tuple[Stage, Pin]]] = {}

    # -- construction ------------------------------------------------------

    def add_net(
        self,
        name: str,
        kind: NetKind = NetKind.SIGNAL,
        wire_cap: float = 0.0,
        external_load: float = 0.0,
    ) -> Net:
        """Create (or fetch an identical existing) net."""
        if name in self.nets:
            net = self.nets[name]
            if net.kind is not kind:
                raise CircuitError(f"net {name} redeclared with kind {kind}")
            return net
        net = Net(name, kind, wire_cap, external_load)
        self.nets[name] = net
        if kind is NetKind.CLOCK and self.clock is None:
            self.clock = name
        return net

    def net(self, name: str) -> Net:
        return self.nets[name]

    def _add_net_like(self, template: Net, name: str) -> Net:
        """Add a net copying every electrical property of ``template``."""
        if name in self.nets:
            return self.nets[name]
        net = Net(
            name,
            template.kind,
            template.wire_cap,
            template.external_load,
            template.wire_res,
        )
        self.nets[name] = net
        if template.kind is NetKind.CLOCK and self.clock is None:
            self.clock = name
        return net

    def add_stage(self, stage: Stage) -> Stage:
        if stage.name in self._stage_by_name:
            raise CircuitError(f"duplicate stage name {stage.name}")
        out_name = stage.output.name
        if out_name in self._drivers and stage.kind is not StageKind.TRISTATE and (
            self._drivers[out_name].kind is not StageKind.TRISTATE
        ):
            if stage.kind is not StageKind.PASSGATE or (
                self._drivers[out_name].kind is not StageKind.PASSGATE
            ):
                raise CircuitError(
                    f"net {out_name} driven by both {self._drivers[out_name].name} "
                    f"and {stage.name}"
                )
        self.stages.append(stage)
        self._stage_by_name[stage.name] = stage
        self._drivers.setdefault(out_name, stage)
        self._all_drivers.setdefault(out_name, []).append(stage)
        for pin in stage.inputs:
            self._fanout.setdefault(pin.net.name, []).append((stage, pin))
        return stage

    def mark_input(self, net_name: str) -> None:
        if net_name not in self.nets:
            raise CircuitError(f"unknown net {net_name}")
        if net_name not in self.primary_inputs:
            self.primary_inputs.append(net_name)

    def declare_input_phase(self, net_name: str, phase: str) -> None:
        """Declare a primary input's clocking behavior (see
        :data:`INPUT_PHASES`).  The dataflow analyses seed their lattices
        from these declarations, which also lets ERC101 resolve inversion
        parity through a primary input instead of bailing out."""
        if net_name not in self.nets:
            raise CircuitError(f"unknown net {net_name}")
        if phase not in INPUT_PHASES:
            raise CircuitError(
                f"net {net_name}: unknown input phase {phase!r} "
                f"(expected one of {INPUT_PHASES})"
            )
        self.input_phases[net_name] = phase

    def input_phase(self, net_name: str) -> Optional[str]:
        return self.input_phases.get(net_name)

    def mark_output(self, net_name: str, external_load: float = 0.0) -> None:
        if net_name not in self.nets:
            raise CircuitError(f"unknown net {net_name}")
        if net_name not in self.primary_outputs:
            self.primary_outputs.append(net_name)
        if external_load:
            old = self.nets[net_name]
            self.nets[net_name] = Net(
                old.name, old.kind, old.wire_cap, external_load, old.wire_res
            )
            self._rebind_net(self.nets[net_name])

    def _rebind_net(self, net: Net) -> None:
        """Point every stage pin/output at a replacement Net object."""
        for stage in self.stages:
            if stage.output.name == net.name:
                stage.output = net
            for pin in stage.inputs:
                if pin.net.name == net.name:
                    pin.net = net

    # -- queries -----------------------------------------------------------

    def stage(self, name: str) -> Stage:
        return self._stage_by_name[name]

    def driver_of(self, net_name: str) -> Optional[Stage]:
        """The stage driving a net (first driver for shared tri-state buses)."""
        return self._drivers.get(net_name)

    def drivers_of(self, net_name: str) -> List[Stage]:
        return list(self._all_drivers.get(net_name, ()))

    def fanout_of(self, net_name: str) -> List[Tuple[Stage, Pin]]:
        """(stage, pin) pairs loading a net."""
        return list(self._fanout.get(net_name, ()))

    def stage_graph(self) -> "nx.DiGraph":
        """Directed stage graph: edge A->B when A's output feeds a pin of B."""
        graph = nx.DiGraph()
        graph.add_nodes_from(s.name for s in self.stages)
        for stage in self.stages:
            for sink, pin in self.fanout_of(stage.output.name):
                graph.add_edge(stage.name, sink.name, pin=pin.name)
        return graph

    def topological_stages(self) -> List[Stage]:
        """Stages in topological order (raises on combinational loops,
        naming the stages on one detected cycle)."""
        graph = self.stage_graph()
        try:
            order = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible as exc:
            try:
                cycle = [edge[0] for edge in nx.find_cycle(graph)]
            except nx.NetworkXNoCycle:  # pragma: no cover - unfeasible => cycle
                cycle = []
            through = (
                " through stages " + " -> ".join(cycle + cycle[:1])
                if cycle
                else ""
            )
            raise CircuitError(
                f"{self.name}: combinational loop{through}"
            ) from exc
        return [self._stage_by_name[n] for n in order]

    def clock_nets(self) -> List[str]:
        return [n.name for n in self.nets.values() if n.kind is NetKind.CLOCK]

    # -- size/area accounting -----------------------------------------------

    def expand_transistors(self, widths: Mapping[str, float]) -> List[Transistor]:
        """Flat transistor list at the given *label* widths.

        ``widths`` may be a free-variable assignment (it is resolved through
        the size table) or a full label->width mapping.
        """
        resolved = self._resolve_widths(widths)
        devices: List[Transistor] = []
        for stage in self.stages:
            devices.extend(stage.expand(resolved))
        return devices

    def _resolve_widths(self, widths: Mapping[str, float]) -> Dict[str, float]:
        if all(name in widths for name in self.size_table.names()):
            return dict(widths)
        return self.size_table.resolve(widths)

    def total_width(self, widths: Mapping[str, float]) -> float:
        """Total transistor width, µm — the paper's area proxy."""
        return sum(t.width for t in self.expand_transistors(widths))

    def transistor_count(self) -> int:
        return sum(stage.transistor_count() for stage in self.stages)

    def area_posynomial(self) -> Posynomial:
        """Total transistor width as a posynomial in the free size labels."""
        terms: List[Monomial] = []
        for stage in self.stages:
            dummy = {label: 1.0 for label in stage.size_vars.values()}
            for device in stage.expand(dummy):
                terms.append(device.factor * self.size_table.monomial(device.label))
        return posy_sum(terms)

    def clock_load_posynomial(self) -> Posynomial:
        """Total gate width hanging on clock nets (clock power proxy)."""
        clock_nets = set(self.clock_nets())
        if not clock_nets:
            return Posynomial.zero()
        terms: List[Monomial] = []
        for stage in self.stages:
            dummy = {label: 1.0 for label in stage.size_vars.values()}
            for device in stage.expand(dummy):
                if device.gate in clock_nets:
                    terms.append(device.factor * self.size_table.monomial(device.label))
        return posy_sum(terms)

    def clock_load_width(self, widths: Mapping[str, float]) -> float:
        clock_nets = set(self.clock_nets())
        return sum(
            t.width
            for t in self.expand_transistors(widths)
            if t.gate in clock_nets
        )

    # -- composition ---------------------------------------------------------

    def merge(
        self,
        other: "Circuit",
        prefix: str = "",
        port_map: Optional[Dict[str, str]] = None,
    ) -> Dict[str, str]:
        """Instantiate ``other`` inside this circuit.

        Stage and internal-net names get ``prefix/`` prepended; nets that
        already exist in ``self`` under the *unprefixed* name are shared
        (that is how callers wire sub-circuits together: create the boundary
        nets first, then merge).  ``port_map`` explicitly binds nets of
        ``other`` (by their local names, usually its primary I/O) to nets of
        ``self`` — the block-composition hook: a mapped port joins the
        target net *as it exists here* (the target's caps/loads win over the
        sub-circuit's characterization loads), and the sub-circuit's input
        phase declaration for a mapped port is dropped: a connected port's
        behavior is whatever its block-level driver provides, not what the
        macro was characterized against.  Returns the net-name mapping used.
        """
        sep = f"{prefix}/" if prefix else ""
        port_map = dict(port_map or {})
        mapping: Dict[str, str] = {}
        for net in other.nets.values():
            if net.name in port_map:
                target = port_map[net.name]
                mapping[net.name] = target
                if target not in self.nets:
                    self._add_net_like(net, target)
            elif net.name in (VDD, VSS) or net.name in self.nets:
                mapping[net.name] = net.name
                if net.name not in self.nets:
                    self._add_net_like(net, net.name)
            else:
                new_name = f"{sep}{net.name}"
                mapping[net.name] = new_name
                self._add_net_like(net, new_name)
        for net_name, phase in other.input_phases.items():
            if net_name in port_map:
                continue
            self.input_phases.setdefault(mapping[net_name], phase)
        for size_var in other.size_table:
            renamed = self._rename_var(size_var, sep)
            self.size_table.add(renamed)
        for stage in other.stages:
            new_inputs = [
                Pin(
                    pin.name,
                    self.nets[mapping[pin.net.name]],
                    pin.pin_class,
                    pin.speed,
                    pin.inverted,
                )
                for pin in stage.inputs
            ]
            new_stage = Stage(
                name=f"{sep}{stage.name}",
                kind=stage.kind,
                inputs=new_inputs,
                output=self.nets[mapping[stage.output.name]],
                size_vars={
                    role: f"{sep}{label}" for role, label in stage.size_vars.items()
                },
                params=dict(stage.params),
            )
            self.add_stage(new_stage)
        return mapping

    @staticmethod
    def _rename_var(size_var: SizeVar, sep: str) -> SizeVar:
        ratio = size_var.ratio_of
        if ratio is not None:
            ratio = (f"{sep}{ratio[0]}", ratio[1])
        return SizeVar(
            f"{sep}{size_var.name}",
            size_var.lower,
            size_var.upper,
            size_var.pinned,
            ratio,
        )

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, stages={len(self.stages)}, "
            f"nets={len(self.nets)}, labels={len(self.size_table)})"
        )
