"""Stages: the modeling granularity of the SMART sizer.

Section 5.1: "By components we could mean simple gates like inverters, NANDs,
NORs, AOIs ... pass-gates and tri-states, or complex designs like domino
muxes".  A :class:`Stage` is one such component instance: a channel-connected
block with one output net, classified input pins, a logic family, and size
*labels* for its device groups.

Supported kinds cover everything the paper's macro database (Figure 2 and
Section 6) needs:

=============  ======================================================
kind           device roles (size labels)
=============  ======================================================
INV            ``pull_up``, ``pull_down``
NAND           ``pull_up`` (parallel PMOS), ``pull_down`` (series NMOS)
NOR            ``pull_up`` (series PMOS), ``pull_down`` (parallel NMOS)
AOI            ``pull_up``, ``pull_down`` (series/parallel per params)
XOR            ``pull_up``, ``pull_down`` (2-stack complementary XOR)
PASSGATE       ``pass`` (both devices), ``sel_inv`` (complement inverter)
TRISTATE       ``pull_up``, ``pull_down`` (2-stacks incl. enable devices)
DOMINO         ``precharge`` (PMOS), ``data`` (NMOS legs), ``evaluate``
               (clock foot, D1 only)
=============  ======================================================

``params`` carry structural facts the timing models need: input count,
series-stack height, number of parallel domino legs, D1 vs D2 clocking,
output-inverter skew, select mutex discipline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from .devices import Polarity, Transistor
from .nets import Net, Pin, PinClass

VDD = "vdd"
VSS = "vss"


class StageKind(enum.Enum):
    INV = "inv"
    NAND = "nand"
    NOR = "nor"
    AOI = "aoi"
    XOR = "xor"
    PASSGATE = "passgate"
    TRISTATE = "tristate"
    DOMINO = "domino"


class LogicFamily(enum.Enum):
    """Circuit family, which decides constraint generation (Section 5.3)."""

    STATIC = "static"
    PASS = "pass"
    DOMINO = "domino"


_KIND_FAMILY = {
    StageKind.INV: LogicFamily.STATIC,
    StageKind.NAND: LogicFamily.STATIC,
    StageKind.NOR: LogicFamily.STATIC,
    StageKind.AOI: LogicFamily.STATIC,
    StageKind.XOR: LogicFamily.STATIC,
    StageKind.PASSGATE: LogicFamily.PASS,
    StageKind.TRISTATE: LogicFamily.PASS,
    StageKind.DOMINO: LogicFamily.DOMINO,
}

#: Device roles every stage kind must label.
REQUIRED_ROLES: Dict[StageKind, Tuple[str, ...]] = {
    StageKind.INV: ("pull_up", "pull_down"),
    StageKind.NAND: ("pull_up", "pull_down"),
    StageKind.NOR: ("pull_up", "pull_down"),
    StageKind.AOI: ("pull_up", "pull_down"),
    StageKind.XOR: ("pull_up", "pull_down"),
    StageKind.PASSGATE: ("pass", "sel_inv"),
    StageKind.TRISTATE: ("pull_up", "pull_down"),
    StageKind.DOMINO: ("precharge", "data"),
}


@dataclass
class Stage:
    """One component instance in a circuit's stage graph.

    Attributes
    ----------
    name:
        Instance name, hierarchical with ``/`` separators (e.g.
        ``"mux4/drv0"``) — the paper stresses that database schematics keep
        designer hierarchy.
    kind:
        Stage kind (above table).
    inputs:
        Classified input pins.
    output:
        The single output net.
    size_vars:
        Role -> size-label mapping; labels resolve through the circuit's
        :class:`~repro.netlist.sizing_vars.SizeTable`.
    params:
        Structural parameters.  Recognized keys:

        ``series_n`` / ``series_p``
            pull-down / pull-up stack height (static kinds).
        ``legs``
            number of parallel pull-down legs (DOMINO).
        ``leg_series``
            series NMOS per leg *excluding* the evaluate foot (DOMINO).
        ``clocked``
            True for D1 (clocked evaluate foot), False for D2 (DOMINO).
        ``skew``
            ``"high"`` for fast-rising skewed inverters (domino output).
        ``mutex``
            ``"strong"`` or ``"weak"`` select discipline (PASSGATE muxes).
        ``keeper``
            Keeper strength as a fraction of the precharge width (DOMINO;
            0/absent = no keeper).  The expansion adds a feedback inverter
            plus a half-latch PMOS; the models charge the evaluate path with
            the keeper's contention.
    """

    name: str
    kind: StageKind
    inputs: List[Pin]
    output: Net
    size_vars: Dict[str, str]
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [r for r in REQUIRED_ROLES[self.kind] if r not in self.size_vars]
        if self.kind is StageKind.DOMINO and self.params.get("clocked", True):
            if "evaluate" not in self.size_vars:
                missing.append("evaluate")
        if missing:
            raise ValueError(f"stage {self.name}: missing size labels for roles {missing}")
        if not self.inputs:
            raise ValueError(f"stage {self.name}: needs at least one input pin")

    # -- classification ----------------------------------------------------

    @property
    def family(self) -> LogicFamily:
        return _KIND_FAMILY[self.kind]

    @property
    def is_dynamic(self) -> bool:
        return self.kind is StageKind.DOMINO

    @property
    def clocked(self) -> bool:
        """D1 (clocked evaluate) vs D2 for domino stages; False otherwise."""
        return bool(self.params.get("clocked", True)) if self.is_dynamic else False

    @property
    def inverting(self) -> bool:
        """True when the stage logically inverts data (pass gates don't)."""
        return self.kind not in (StageKind.PASSGATE,)

    def data_pins(self) -> List[Pin]:
        return [p for p in self.inputs if p.pin_class is PinClass.DATA]

    def select_pins(self) -> List[Pin]:
        return [p for p in self.inputs if p.pin_class is PinClass.SELECT]

    def clock_pins(self) -> List[Pin]:
        return [p for p in self.inputs if p.pin_class is PinClass.CLOCK]

    def pin(self, name: str) -> Pin:
        for pin in self.inputs:
            if pin.name == name:
                return pin
        raise KeyError(f"stage {self.name}: no pin {name!r}")

    def label(self, role: str) -> str:
        return self.size_vars[role]

    def labels(self) -> Tuple[str, ...]:
        """All size labels of this stage, role-ordered deterministically."""
        return tuple(self.size_vars[r] for r in sorted(self.size_vars))

    @property
    def leg_sizes(self) -> Tuple[int, ...]:
        """Series depth of each domino leg.  Uniform legs may be declared via
        ``leg_series`` alone; ragged legs (carry-lookahead nodes) list every
        depth in ``leg_sizes``."""
        if not self.is_dynamic:
            return ()
        sizes = self.params.get("leg_sizes")
        if sizes:
            return tuple(int(s) for s in sizes)
        series = int(self.params.get("leg_series", 1))
        legs = int(self.params.get("legs", max(1, len(self.data_pins()) // max(1, series))))
        return tuple([series] * legs)

    @property
    def series_n(self) -> int:
        if self.is_dynamic:
            base = max(self.leg_sizes) if self.leg_sizes else 1
            return base + (1 if self.clocked else 0)
        defaults = {
            StageKind.INV: 1,
            StageKind.NAND: len(self.data_pins()) or 1,
            StageKind.NOR: 1,
            StageKind.AOI: 2,
            StageKind.XOR: 2,
            StageKind.PASSGATE: 1,
            StageKind.TRISTATE: 2,
        }
        return int(self.params.get("series_n", defaults[self.kind]))

    @property
    def series_p(self) -> int:
        defaults = {
            StageKind.INV: 1,
            StageKind.NAND: 1,
            StageKind.NOR: len(self.data_pins()) or 1,
            StageKind.AOI: 2,
            StageKind.XOR: 2,
            StageKind.PASSGATE: 1,
            StageKind.TRISTATE: 2,
            StageKind.DOMINO: 1,
        }
        return int(self.params.get("series_p", defaults[self.kind]))

    # -- flat expansion ------------------------------------------------------

    def expand(self, widths: Mapping[str, float], length: float = 0.18) -> List[Transistor]:
        """Flat transistor list for this stage given resolved label widths."""
        expander = _EXPANDERS[self.kind]
        return expander(self, widths, length)

    def transistor_count(self) -> int:
        """Device count of the flat expansion (width-independent)."""
        dummy = {label: 1.0 for label in self.size_vars.values()}
        return len(self.expand(dummy))


# ---------------------------------------------------------------------------
# flat expanders, one per stage kind
# ---------------------------------------------------------------------------


def _t(
    stage: Stage,
    suffix: str,
    polarity: Polarity,
    drain: str,
    gate: str,
    source: str,
    width: float,
    label: str,
    length: float,
    factor: float = 1.0,
) -> Transistor:
    bulk = VDD if polarity is Polarity.PMOS else VSS
    return Transistor(
        name=f"{stage.name}.{suffix}",
        polarity=polarity,
        drain=drain,
        gate=gate,
        source=source,
        bulk=bulk,
        width=width,
        label=label,
        stage=stage.name,
        length=length,
        factor=factor,
    )


def _expand_inv(stage: Stage, widths: Mapping[str, float], length: float) -> List[Transistor]:
    (pin,) = stage.inputs
    wp, wn = widths[stage.label("pull_up")], widths[stage.label("pull_down")]
    out = stage.output.name
    return [
        _t(stage, "mp", Polarity.PMOS, out, pin.net.name, VDD, wp, stage.label("pull_up"), length),
        _t(stage, "mn", Polarity.NMOS, out, pin.net.name, VSS, wn, stage.label("pull_down"), length),
    ]


def _expand_nand(stage: Stage, widths: Mapping[str, float], length: float) -> List[Transistor]:
    pins = stage.inputs
    wp, wn = widths[stage.label("pull_up")], widths[stage.label("pull_down")]
    out = stage.output.name
    devices = []
    for i, pin in enumerate(pins):
        devices.append(
            _t(stage, f"mp{i}", Polarity.PMOS, out, pin.net.name, VDD, wp, stage.label("pull_up"), length)
        )
    node = out
    for i, pin in enumerate(pins):
        lower = VSS if i == len(pins) - 1 else f"{stage.name}.n{i}"
        devices.append(
            _t(stage, f"mn{i}", Polarity.NMOS, node, pin.net.name, lower, wn, stage.label("pull_down"), length)
        )
        node = lower
    return devices


def _expand_nor(stage: Stage, widths: Mapping[str, float], length: float) -> List[Transistor]:
    pins = stage.inputs
    wp, wn = widths[stage.label("pull_up")], widths[stage.label("pull_down")]
    out = stage.output.name
    devices = []
    node = VDD
    for i, pin in enumerate(pins):
        lower = out if i == len(pins) - 1 else f"{stage.name}.p{i}"
        devices.append(
            _t(stage, f"mp{i}", Polarity.PMOS, lower, pin.net.name, node, wp, stage.label("pull_up"), length)
        )
        node = lower
    for i, pin in enumerate(pins):
        devices.append(
            _t(stage, f"mn{i}", Polarity.NMOS, out, pin.net.name, VSS, wn, stage.label("pull_down"), length)
        )
    return devices


def _expand_aoi(stage: Stage, widths: Mapping[str, float], length: float) -> List[Transistor]:
    """AOI as series_p/series_n stacks over all pins (conservative structure
    for area/power accounting; exact AOI wiring does not change device count
    or total width)."""
    pins = stage.inputs
    wp, wn = widths[stage.label("pull_up")], widths[stage.label("pull_down")]
    out = stage.output.name
    devices = []
    for i, pin in enumerate(pins):
        devices.append(
            _t(stage, f"mp{i}", Polarity.PMOS, out, pin.net.name, VDD, wp, stage.label("pull_up"), length)
        )
        devices.append(
            _t(stage, f"mn{i}", Polarity.NMOS, out, pin.net.name, VSS, wn, stage.label("pull_down"), length)
        )
    return devices


def _expand_xor(stage: Stage, widths: Mapping[str, float], length: float) -> List[Transistor]:
    """Complementary 2-input XOR: local complement inverters (at half size)
    plus two 2-stacks per network — 12 devices.

    out = 1 when a != b: pull-up branches gate on (a, b̄) and (ā, b);
    pull-down branches on (a, b) and (ā, b̄).
    """
    pins = stage.inputs
    if len(pins) != 2:
        raise ValueError(f"XOR stage {stage.name} needs exactly 2 inputs")
    wp, wn = widths[stage.label("pull_up")], widths[stage.label("pull_down")]
    out = stage.output.name
    a, b = pins[0].net.name, pins[1].net.name
    up_lbl, dn_lbl = stage.label("pull_up"), stage.label("pull_down")
    ab = f"{stage.name}.ab"
    bb = f"{stage.name}.bb"
    mid = [f"{stage.name}.m{i}" for i in range(4)]
    devices = [
        # local complement rails at half drive
        _t(stage, "iap", Polarity.PMOS, ab, a, VDD, 0.5 * wp, up_lbl, length, factor=0.5),
        _t(stage, "ian", Polarity.NMOS, ab, a, VSS, 0.5 * wn, dn_lbl, length, factor=0.5),
        _t(stage, "ibp", Polarity.PMOS, bb, b, VDD, 0.5 * wp, up_lbl, length, factor=0.5),
        _t(stage, "ibn", Polarity.NMOS, bb, b, VSS, 0.5 * wn, dn_lbl, length, factor=0.5),
        # pull-up: (a=0 AND b=1) or (a=1 AND b=0)
        _t(stage, "mp0", Polarity.PMOS, mid[0], a, VDD, wp, up_lbl, length),
        _t(stage, "mp1", Polarity.PMOS, out, bb, mid[0], wp, up_lbl, length),
        _t(stage, "mp2", Polarity.PMOS, mid[1], ab, VDD, wp, up_lbl, length),
        _t(stage, "mp3", Polarity.PMOS, out, b, mid[1], wp, up_lbl, length),
        # pull-down: (a=1 AND b=1) or (a=0 AND b=0)
        _t(stage, "mn0", Polarity.NMOS, out, a, mid[2], wn, dn_lbl, length),
        _t(stage, "mn1", Polarity.NMOS, mid[2], b, VSS, wn, dn_lbl, length),
        _t(stage, "mn2", Polarity.NMOS, out, ab, mid[3], wn, dn_lbl, length),
        _t(stage, "mn3", Polarity.NMOS, mid[3], bb, VSS, wn, dn_lbl, length),
    ]
    return devices


def _expand_passgate(stage: Stage, widths: Mapping[str, float], length: float) -> List[Transistor]:
    data = stage.data_pins()
    selects = stage.select_pins()
    if len(data) != 1 or len(selects) != 1:
        raise ValueError(f"pass gate {stage.name} needs exactly 1 data and 1 select pin")
    w_pass = widths[stage.label("pass")]
    w_inv = widths[stage.label("sel_inv")]
    out = stage.output.name
    sel = selects[0].net.name
    sel_b = f"{stage.name}.selb"
    d = data[0].net.name
    return [
        _t(stage, "mn", Polarity.NMOS, out, sel, d, w_pass, stage.label("pass"), length),
        _t(stage, "mp", Polarity.PMOS, out, sel_b, d, w_pass, stage.label("pass"), length),
        _t(stage, "invp", Polarity.PMOS, sel_b, sel, VDD, w_inv, stage.label("sel_inv"), length),
        _t(stage, "invn", Polarity.NMOS, sel_b, sel, VSS, w_inv, stage.label("sel_inv"), length),
    ]


def _expand_tristate(stage: Stage, widths: Mapping[str, float], length: float) -> List[Transistor]:
    data = stage.data_pins()
    selects = stage.select_pins()
    if len(data) != 1 or len(selects) != 1:
        raise ValueError(f"tri-state {stage.name} needs exactly 1 data and 1 select pin")
    wp, wn = widths[stage.label("pull_up")], widths[stage.label("pull_down")]
    out = stage.output.name
    d = data[0].net.name
    en = selects[0].net.name
    en_b = f"{stage.name}.enb"
    pm = f"{stage.name}.pm"
    nm = f"{stage.name}.nm"
    # Enable inverter is a fixed relation (0.25x) of the drive devices
    # (Section 4: "the size of the inverter in the tri-state is a fixed
    # relation of P1 and N1").
    return [
        _t(stage, "mp0", Polarity.PMOS, pm, d, VDD, wp, stage.label("pull_up"), length),
        _t(stage, "mp1", Polarity.PMOS, out, en_b, pm, wp, stage.label("pull_up"), length),
        _t(stage, "mn1", Polarity.NMOS, out, en, nm, wn, stage.label("pull_down"), length),
        _t(stage, "mn0", Polarity.NMOS, nm, d, VSS, wn, stage.label("pull_down"), length),
        _t(stage, "invp", Polarity.PMOS, en_b, en, VDD, 0.25 * wp, stage.label("pull_up"), length, factor=0.25),
        _t(stage, "invn", Polarity.NMOS, en_b, en, VSS, 0.25 * wn, stage.label("pull_down"), length, factor=0.25),
    ]


def _expand_domino(stage: Stage, widths: Mapping[str, float], length: float) -> List[Transistor]:
    """Dynamic node: precharge PMOS + parallel NMOS legs (+ clocked foot).

    Each leg is ``leg_series`` NMOS devices in series gated by consecutive
    data/select pins; the Figure 2(e)/(f) mux legs are select-over-data
    2-stacks, which generators express with ``leg_series=2`` and pin order
    ``[s0, in0, s1, in1, ...]``.
    """
    clk_pins = stage.clock_pins()
    if not clk_pins:
        raise ValueError(f"domino stage {stage.name} needs a clock pin")
    clk = clk_pins[0].net.name
    w_pre = widths[stage.label("precharge")]
    w_data = widths[stage.label("data")]
    out = stage.output.name
    leg_series = int(stage.params.get("leg_series", 1))
    signal_pins = [p for p in stage.inputs if p.pin_class is not PinClass.CLOCK]
    ragged = sum(stage.leg_sizes) == len(signal_pins)
    if not ragged and (leg_series <= 0 or len(signal_pins) % leg_series):
        raise ValueError(
            f"domino stage {stage.name}: {len(signal_pins)} signal pins do not "
            f"form whole legs of series {leg_series}"
        )
    devices = [
        _t(stage, "mpre", Polarity.PMOS, out, clk, VDD, w_pre, stage.label("precharge"), length)
    ]
    keeper = float(stage.params.get("keeper", 0.0))
    if keeper > 0.0:
        fb = f"{stage.name}.fb"
        w_keep = keeper * w_pre
        w_fb = 0.25 * w_keep
        devices.extend(
            [
                # feedback inverter sensing the dynamic node...
                _t(stage, "fbp", Polarity.PMOS, fb, out, VDD, w_fb,
                   stage.label("precharge"), length, factor=0.25 * keeper),
                _t(stage, "fbn", Polarity.NMOS, fb, out, VSS, w_fb,
                   stage.label("precharge"), length, factor=0.25 * keeper),
                # ...turning the half-latch keeper PMOS on while the node
                # stays high.
                _t(stage, "mkeep", Polarity.PMOS, out, fb, VDD, w_keep,
                   stage.label("precharge"), length, factor=keeper),
            ]
        )
    foot = VSS
    if stage.clocked:
        w_eval = widths[stage.label("evaluate")]
        foot = f"{stage.name}.foot"
        devices.append(
            _t(stage, "meval", Polarity.NMOS, foot, clk, VSS, w_eval, stage.label("evaluate"), length)
        )
    leg_sizes = stage.leg_sizes
    if sum(leg_sizes) == len(signal_pins):
        legs, start = [], 0
        for size in leg_sizes:
            legs.append(signal_pins[start:start + size])
            start += size
    else:
        legs = [
            signal_pins[i:i + leg_series]
            for i in range(0, len(signal_pins), leg_series)
        ]
    for li, leg in enumerate(legs):
        node = out
        for si, pin in enumerate(leg):
            lower = foot if si == len(leg) - 1 else f"{stage.name}.l{li}s{si}"
            devices.append(
                _t(
                    stage,
                    f"mn{li}_{si}",
                    Polarity.NMOS,
                    node,
                    pin.net.name,
                    lower,
                    w_data,
                    stage.label("data"),
                    length,
                )
            )
            node = lower
    return devices


_EXPANDERS = {
    StageKind.INV: _expand_inv,
    StageKind.NAND: _expand_nand,
    StageKind.NOR: _expand_nor,
    StageKind.AOI: _expand_aoi,
    StageKind.XOR: _expand_xor,
    StageKind.PASSGATE: _expand_passgate,
    StageKind.TRISTATE: _expand_tristate,
    StageKind.DOMINO: _expand_domino,
}
