"""Flat transistor-level primitives.

Macros are authored as *stage graphs* (see :mod:`repro.netlist.stages`); the
flat transistor view produced by ``Circuit.expand_transistors`` is what area
accounting, power estimation, SPICE export and the switch-level transient
simulator consume.  Each transistor remembers the size *label* it was expanded
from so flat views stay traceable to the GP variables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Polarity(enum.Enum):
    NMOS = "nmos"
    PMOS = "pmos"


@dataclass(frozen=True)
class Transistor:
    """One MOS device in the flat netlist.

    Terminal fields hold *net names* (the flat view is string-keyed).  Width
    and length are in µm.
    """

    name: str
    polarity: Polarity
    drain: str
    gate: str
    source: str
    bulk: str
    width: float
    length: float = 0.18
    label: str = ""
    stage: str = ""
    #: ``width == factor * width(label)`` — lets flat views stay posynomial
    #: in the size labels (e.g. a tri-state's enable inverter at 0.25x).
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"transistor {self.name}: width must be positive")
        if self.length <= 0:
            raise ValueError(f"transistor {self.name}: length must be positive")

    @property
    def is_nmos(self) -> bool:
        return self.polarity is Polarity.NMOS

    @property
    def is_pmos(self) -> bool:
        return self.polarity is Polarity.PMOS

    def spice_card(self) -> str:
        """One SPICE ``M`` card for this device."""
        model = "nch" if self.is_nmos else "pch"
        return (
            f"M{self.name} {self.drain} {self.gate} {self.source} {self.bulk} "
            f"{model} W={self.width:.4g}U L={self.length:.4g}U"
        )
