"""Baseline ("manual designer") sizing used as the comparison anchor for the
Figure-5 / Table-1 / Table-2 savings experiments."""

from .overdesign import BaselineResult, OverdesignSizer

__all__ = ["OverdesignSizer", "BaselineResult"]
