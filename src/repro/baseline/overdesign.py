"""The "manual designer under schedule pressure" baseline.

Section 2(c): "Tight schedule constraints limit design space exploration,
thus resulting in over-design.  This implies wastage of silicon area and
power."  The paper's Figure-5/Table-1 savings are measured against hand-sized
production circuits we cannot have; this sizer reproduces the method such
circuits were actually sized with — and its characteristic waste:

* a single **uniform stage effort** everywhere (the classic logical-effort
  hand rule: pick a fanout, taper every stage to it), chosen conservatively:
  ``effort = NOMINAL_EFFORT / margin`` — every stage is ``margin``x stronger
  than the uniform-effort rule needs;
* **symmetric P/N skew** on every static gate, even where only one edge
  matters (domino buffers!);
* **full-strength precharge and evaluate devices** on domino nodes — the
  clock-load waste Table 1's domino rows quantify;
* shared labels take the width of their *worst* instance (regular layout,
  sized for the worst case);
* **no slack reallocation**: a stage on a path with 3x slack is sized exactly
  like its critical twin.

SMART, given the *same realized performance* as its spec, recovers all of
that: single-edge skews, minimum precharge that still meets the precharge
budget, and slack-aware per-label widths.

The experiment protocol matches Section 6.1: measure the baseline's realized
per-class delays with the timing analyzer, hand SMART the same topology and
*those* delays as its spec, and compare total transistor width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..models.gates import ModelLibrary
from ..netlist.circuit import Circuit
from ..netlist.stages import Stage, StageKind
from ..obs import metrics, trace
from ..obs.log import get_logger
from ..sim.timing import StaticTimingAnalyzer

log = get_logger(__name__)

#: The stage effort (output load / input capacitance) an unhurried designer
#: would taper to; dividing by the margin makes every stage proportionally
#: stronger than that.
NOMINAL_EFFORT = 4.0


@dataclass
class BaselineResult:
    """Outcome of the over-design sizing."""

    widths: Dict[str, float]       # free-label assignment
    resolved: Dict[str, float]     # every label
    area: float                    # total transistor width, µm
    clock_load: float              # gate width on clock nets, µm
    realized_delay: float          # worst output arrival per STA, ps


class OverdesignSizer:
    """Schedule-pressure manual sizing heuristic (uniform-effort taper).

    Parameters
    ----------
    margin:
        Over-drive factor on every stage (1.0 = the clean uniform-effort
        design; production over-design under schedule pressure is ~1.3-1.8).
    """

    def __init__(
        self,
        circuit: Circuit,
        library: ModelLibrary,
        margin: float = 1.5,
    ):
        if margin <= 0:
            raise ValueError("margin must be positive")
        self.circuit = circuit
        self.library = library
        self.tech = library.tech
        self.margin = margin
        self.analyzer = StaticTimingAnalyzer(circuit, library)

    def size(
        self,
        target_delay: Optional[float] = None,
        input_slope: float = 30.0,
    ) -> BaselineResult:
        """Run the backward uniform-effort pass.

        ``target_delay`` is accepted for API symmetry but the hand rule does
        not use it: the taper *determines* the achieved delay, which the
        caller measures from the returned result (the Section-6.1 protocol
        hands that measurement to SMART as the spec).
        """
        with trace.span(
            "baseline_size", circuit=self.circuit.name, margin=self.margin
        ) as sp:
            result = self._size_traced(input_slope)
            sp.set_attrs(
                area=round(result.area, 3),
                realized_delay=round(result.realized_delay, 2),
            )
        metrics.counter("baseline.runs").inc()
        log.debug(
            "baseline %s: area=%.1f um realized=%.1f ps (margin %.2f)",
            self.circuit.name, result.area, result.realized_delay, self.margin,
        )
        return result

    def _size_traced(self, input_slope: float) -> BaselineResult:
        effort = NOMINAL_EFFORT / self.margin
        table = self.circuit.size_table
        tech = self.tech

        label_width: Dict[str, float] = {
            v.name: v.lower for v in table if v.free
        }

        for stage in reversed(self.circuit.topological_stages()):
            resolved_now = table.resolve(label_width)
            # The hand rule drives the *external* load; a stage's own output
            # diffusion is self-loading and must not feed back into its own
            # width (with shared labels that feedback runs away).
            load = self.analyzer.net_load(stage.output.name, resolved_now)
            load -= self.library.output_parasitic(stage, table).evaluate(
                resolved_now
            )
            load = max(load, 0.0)
            # The hand habit for pass networks: treat the pass gate as
            # transparent and size the driver for everything behind it.
            fanout_pins = self.circuit.fanout_of(stage.output.name)
            for sink, pin in fanout_pins:
                if sink.kind is StageKind.PASSGATE and pin.name == "d":
                    load += self.analyzer.net_load(sink.output.name, resolved_now)
            # High-fanout nets are knowingly driven at higher effort (no
            # designer tapers a 32-sink net to fanout-of-3); the tolerated
            # effort grows with fanout beyond 4.
            effective_effort = effort * max(1.0, len(fanout_pins) / 4.0)
            cin = max(tech.c_gate * 2.0 * tech.min_width, load / effective_effort)
            for role, width in self._role_widths(stage, cin).items():
                label = stage.size_vars.get(role)
                if label is None:
                    continue
                var = table[label]
                if not var.free:
                    continue
                clamped = min(var.upper, max(var.lower, width))
                label_width[label] = max(label_width[label], clamped)

        resolved = table.resolve(label_width)
        report = self.analyzer.analyze(label_width, input_slope=input_slope)
        realized = report.worst(self.circuit.primary_outputs)
        return BaselineResult(
            widths=dict(label_width),
            resolved=resolved,
            area=self.circuit.total_width(resolved),
            clock_load=self.circuit.clock_load_width(resolved),
            realized_delay=realized,
        )

    # -- the hand rule, per stage kind ---------------------------------------------

    def _role_widths(self, stage: Stage, cin: float) -> Dict[str, float]:
        """Device widths so the stage presents roughly ``cin`` of input
        capacitance, with the designer's symmetric-edge habits."""
        tech = self.tech
        beta = tech.beta

        if stage.kind is StageKind.DOMINO:
            # Data devices sized for the evaluate pull; stack compensation.
            stack = max(1, stage.series_n)
            w_data = max(
                tech.min_width, stack * cin / (tech.c_gate * 2.0)
            )
            # Full-strength precharge and a fat evaluate foot: the safe,
            # clock-hungry habits SMART's Table-1 clock savings come from.
            return {
                "precharge": 1.5 * w_data,
                "data": w_data,
                "evaluate": 2.5 * w_data,
            }

        if stage.kind is StageKind.PASSGATE:
            # Inverter-equivalent conductance for ``cin`` — without credit
            # for the parallel PMOS (the safe hand habit).
            w_pass = max(
                tech.min_width,
                cin / ((1.0 + beta) * tech.c_gate),
            )
            return {"pass": w_pass}

        if stage.kind is StageKind.TRISTATE:
            w_n = 1.2 * cin / (tech.c_gate * (1.0 + beta))
            return {"pull_up": beta * w_n, "pull_down": w_n}

        per_pin = 2.0 if stage.kind is StageKind.XOR else 1.0
        w_n = cin / (per_pin * tech.c_gate * (1.0 + beta))
        w_n *= max(1, stage.series_n) ** 0.5  # partial stack compensation
        # Symmetric edges everywhere — including skewed positions where only
        # one edge matters.
        return {"pull_up": beta * w_n, "pull_down": w_n}
