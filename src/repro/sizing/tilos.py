"""TILOS-style iterative sensitivity sizer (the paper's reference [1]).

Fishburn & Dunlop's classic heuristic: start every transistor at minimum
size, then repeatedly upsize the device with the best delay-improvement per
unit of added width on the critical path, until timing is met or no move
helps.  SMART's Section 5 positions its GP sizer *against* this tradition:
"It is not aimed as a traditional general sizer [1-5] that gives reasonable
results for all kinds of circuits, but may or may not meet the specified
constraints all the time."

We implement the tradition faithfully enough to compare:

* greedy, one label at a time, multiplicative steps;
* driven by the worst *output arrival* only — slope, noise, and per-class
  (control/precharge) budgets are invisible to it, exactly the blind spots
  the SMART constraint generator closes;
* terminates on spec-met, no-improving-move, or an iteration cap.

The sizer-comparison benchmark measures both quality and the constraint
classes TILOS silently violates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..models.gates import ModelLibrary
from ..netlist.circuit import Circuit
from ..sim.timing import StaticTimingAnalyzer


@dataclass
class TilosResult:
    """Outcome of the iterative sizing."""

    widths: Dict[str, float]
    resolved: Dict[str, float]
    met: bool
    realized_delay: float
    area: float
    iterations: int
    runtime_s: float


class TilosSizer:
    """Greedy sensitivity-based upsizing to a single delay target."""

    def __init__(
        self,
        circuit: Circuit,
        library: ModelLibrary,
        step: float = 1.15,
        max_iterations: int = 2000,
    ):
        if step <= 1.0:
            raise ValueError("step must exceed 1.0")
        self.circuit = circuit
        self.library = library
        self.step = step
        self.max_iterations = max_iterations
        self.analyzer = StaticTimingAnalyzer(circuit, library)

    # -- internals ---------------------------------------------------------

    def _delay(self, widths: Mapping[str, float], input_slope: float) -> float:
        report = self.analyzer.analyze(widths, input_slope=input_slope)
        return report.worst(self.circuit.primary_outputs)

    def _critical_labels(
        self, widths: Mapping[str, float], input_slope: float
    ) -> List[str]:
        """Free labels of stages on (or loading) the worst path."""
        report = self.analyzer.analyze(widths, input_slope=input_slope)
        worst_net = max(
            self.circuit.primary_outputs,
            key=lambda n: report.net_delay(n),
        )
        labels: List[str] = []
        seen = set()
        for event in report.critical_path(worst_net):
            if event.from_stage is None:
                continue
            stage = self.circuit.stage(event.from_stage)
            for label in stage.size_vars.values():
                if label in seen:
                    continue
                seen.add(label)
                if self.circuit.size_table[label].free:
                    labels.append(label)
        return labels

    # -- main entry ---------------------------------------------------------

    def size(
        self,
        target_delay: float,
        input_slope: float = 30.0,
    ) -> TilosResult:
        """Upsize from minimum widths until ``target_delay`` is met."""
        started = time.perf_counter()
        table = self.circuit.size_table
        widths = table.minimum_env()
        delay = self._delay(widths, input_slope)
        iterations = 0

        while delay > target_delay and iterations < self.max_iterations:
            iterations += 1
            candidates = self._critical_labels(widths, input_slope)
            if not candidates:
                break
            best_label: Optional[str] = None
            best_score = 0.0
            best_delay = delay
            for label in candidates:
                var = table[label]
                grown = min(var.upper, widths[label] * self.step)
                if grown <= widths[label] * 1.0001:
                    continue  # already at the rail
                trial = dict(widths)
                trial[label] = grown
                trial_delay = self._delay(trial, input_slope)
                d_delay = delay - trial_delay
                d_area = self.circuit.total_width(
                    table.resolve(trial)
                ) - self.circuit.total_width(table.resolve(widths))
                if d_delay <= 0.0 or d_area <= 0.0:
                    continue
                score = d_delay / d_area
                if score > best_score:
                    best_score = score
                    best_label = label
                    best_delay = trial_delay
            if best_label is None:
                # Single-device myopia: every individual bump loses to the
                # upstream load it adds.  Fall back to the path move —
                # scale every critical-path label together.
                trial = dict(widths)
                moved = False
                for label in candidates:
                    var = table[label]
                    grown = min(var.upper, trial[label] * self.step)
                    if grown > trial[label] * 1.0001:
                        trial[label] = grown
                        moved = True
                if not moved:
                    break  # everything at the rails
                trial_delay = self._delay(trial, input_slope)
                if trial_delay >= delay:
                    break  # genuinely stuck: report failure (the classic
                           # TILOS outcome the paper criticizes)
                widths = trial
                delay = trial_delay
                continue
            widths[best_label] = min(
                table[best_label].upper, widths[best_label] * self.step
            )
            delay = best_delay

        resolved = table.resolve(widths)
        return TilosResult(
            widths=dict(widths),
            resolved=resolved,
            met=delay <= target_delay,
            realized_delay=delay,
            area=self.circuit.total_width(resolved),
            iterations=iterations,
            runtime_s=time.perf_counter() - started,
        )
