"""Path-space reduction (Section 5.2).

Three techniques, applied in sequence:

1. **Pin precedence** — input pins of wide gates are statically partitioned
   into *fast* and *slow* sets (annotated by the macro generators, where the
   symmetry that makes the partition safe is known by construction).  A path
   entering a stage through a fast pin is pruned when the same stage has a
   slow pin of the same class: the slow pin's path dominates.

2. **Fanout dominance** — two *identical* stages (same kind, same size-label
   signature) can differ only in how much they drive.  The stage with the
   largest fanout dominates; paths through dominated twins are pruned.  The
   paper prunes heuristically on fanout count, "as the capacitance information
   is an unknown during sizing" — so do we, with an optional refinement that
   compares fanout label signatures when counts tie.

3. **Regularity merging** — datapath regularity means many paths are
   *identical up to instance names*: same sequence of (stage kind, size-label
   signature, pin class).  Identical nodes are constrained "to have the same
   size properties", so such paths reduce to one representative.

On the paper's 64-bit dynamic adder these take >32,000 paths to ~120 — a
factor of >250.  The reproduction benchmark checks the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit
from ..netlist.nets import PinSpeed
from ..netlist.stages import Stage
from ..obs import metrics, trace
from .paths import StructuralPath

#: Signature of one path step for regularity comparisons.
StepKey = Tuple[str, Tuple[str, ...], str]


@dataclass
class PruneStats:
    """Accounting of one pruning run."""

    initial: int
    after_precedence: int
    after_dominance: int
    after_regularity: int

    @property
    def final(self) -> int:
        return self.after_regularity

    @property
    def reduction_factor(self) -> float:
        return self.initial / self.final if self.final else float("inf")


@dataclass(frozen=True)
class DropWitness:
    """Why one extracted path was pruned.

    ``reason`` is the pass that dropped it: ``"precedence"`` (with the FAST
    ``stage``/``pin`` it entered), ``"dominance"`` or ``"regularity"`` (with
    the same-signature ``survivor`` that still constrains the GP).
    """

    reason: str
    stage: Optional[str] = None
    pin: Optional[str] = None
    survivor: Optional[StructuralPath] = None


@dataclass
class PruningCertificate:
    """Merge/dominance certificate for one :func:`prune_paths` run.

    Claims, for every input path, either membership in ``surviving`` or a
    :class:`DropWitness`; plus the fanout-dominance claims (regularity-group
    key -> dominant stage name) the dominance pass relied on.  The linter's
    :func:`repro.lint.coverage.verify_pruning` re-checks every claim
    independently — pruning soundness as a checked invariant, not an
    assumption.
    """

    initial: int
    surviving: List[StructuralPath]
    dropped: Dict[StructuralPath, DropWitness]
    dominant: Dict[Tuple, str] = field(default_factory=dict)


@dataclass
class PruneResult:
    paths: List[StructuralPath]
    stats: PruneStats
    certificate: Optional[PruningCertificate] = None


def _stage_key(circuit: Circuit, stage: Stage) -> Tuple[str, Tuple[str, ...]]:
    """Regularity identity of a stage: kind + canonical label signature."""
    labels = circuit.size_table.regularity_signature(stage.labels())
    return (stage.kind.value, labels)


def _step_key(circuit: Circuit, stage: Stage, pin_name: str) -> StepKey:
    pin = stage.pin(pin_name)
    kind, labels = _stage_key(circuit, stage)
    return (kind, labels, pin.pin_class.value)


def path_signature(circuit: Circuit, path: StructuralPath) -> Tuple:
    """Canonical identity of a path: source kind + step keys.

    Two paths with equal signatures traverse identical (same-sized) stages
    through same-class pins, so they produce identical GP constraints.
    """
    source_kind = circuit.net(path.start_net).kind.value
    keys = tuple(
        _step_key(circuit, circuit.stage(s.stage_name), s.pin_name)
        for s in path.steps
    )
    return (source_kind, keys)


# ---------------------------------------------------------------------------
# pass 1: pin precedence
# ---------------------------------------------------------------------------


def prune_pin_precedence(
    circuit: Circuit,
    paths: Sequence[StructuralPath],
    drops: Optional[Dict[StructuralPath, DropWitness]] = None,
) -> List[StructuralPath]:
    """Drop paths that enter any stage through a FAST pin when that stage has
    a SLOW pin of the same pin class (the slow path subsumes the fast one).

    When ``drops`` is given, each pruned path records the FAST step that
    justified dropping it."""
    slow_classes: Dict[str, set] = {}
    for stage in circuit.stages:
        classes = {
            p.pin_class for p in stage.inputs if p.speed is PinSpeed.SLOW
        }
        if classes:
            slow_classes[stage.name] = classes

    kept = []
    for path in paths:
        prunable = False
        for step in path.steps:
            stage = circuit.stage(step.stage_name)
            pin = stage.pin(step.pin_name)
            if (
                pin.speed is PinSpeed.FAST
                and pin.pin_class in slow_classes.get(stage.name, ())
            ):
                prunable = True
                if drops is not None:
                    drops[path] = DropWitness(
                        "precedence", stage=stage.name, pin=pin.name
                    )
                break
        if not prunable:
            kept.append(path)
    return kept


# ---------------------------------------------------------------------------
# pass 2: fanout dominance
# ---------------------------------------------------------------------------


def dominant_stages(circuit: Circuit) -> Dict[Tuple, str]:
    """For each regularity group, the name of its dominant (max fanout)
    stage.  Ties break lexicographically for determinism."""
    groups: Dict[Tuple, List[Stage]] = {}
    for stage in circuit.stages:
        groups.setdefault(_stage_key(circuit, stage), []).append(stage)
    dominant: Dict[Tuple, str] = {}
    for key, members in groups.items():
        best = max(
            members,
            key=lambda s: (len(circuit.fanout_of(s.output.name)), s.name),
        )
        dominant[key] = best.name
    return dominant


def prune_fanout_dominance(
    circuit: Circuit,
    paths: Sequence[StructuralPath],
    drops: Optional[Dict[StructuralPath, DropWitness]] = None,
) -> List[StructuralPath]:
    """Keep only paths whose every step goes through its group's dominant
    stage — unless no retained path would cover that signature, in which case
    the path survives (soundness guard for asymmetric surroundings).

    When ``drops`` is given, each pruned path records a ``"dominance"``
    witness (the same-signature survivor is filled in by
    :func:`prune_paths` once the final set is known)."""
    dominant = dominant_stages(circuit)

    kept: List[StructuralPath] = []
    dropped: List[StructuralPath] = []
    for path in paths:
        through_dominant = all(
            dominant[_stage_key(circuit, circuit.stage(s.stage_name))]
            == s.stage_name
            for s in path.steps
        )
        (kept if through_dominant else dropped).append(path)

    covered = {path_signature(circuit, p) for p in kept}
    for path in dropped:
        sig = path_signature(circuit, path)
        if sig not in covered:
            kept.append(path)
            covered.add(sig)
        elif drops is not None:
            drops[path] = DropWitness("dominance")
    return kept


# ---------------------------------------------------------------------------
# pass 3: regularity merging
# ---------------------------------------------------------------------------


def prune_regularity(
    circuit: Circuit,
    paths: Sequence[StructuralPath],
    drops: Optional[Dict[StructuralPath, DropWitness]] = None,
) -> List[StructuralPath]:
    """One representative per path signature (first in input order)."""
    seen: Dict[Tuple, StructuralPath] = {}
    kept = []
    for path in paths:
        sig = path_signature(circuit, path)
        if sig not in seen:
            seen[sig] = path
            kept.append(path)
        elif drops is not None:
            drops[path] = DropWitness("regularity", survivor=seen[sig])
    return kept


# ---------------------------------------------------------------------------
# combined
# ---------------------------------------------------------------------------


def prune_paths(
    circuit: Circuit,
    paths: Sequence[StructuralPath],
    use_precedence: bool = True,
    use_dominance: bool = True,
    use_regularity: bool = True,
    certify: bool = False,
) -> PruneResult:
    """Run the (selected) pruning passes in the paper's order and account for
    the reduction at each step.  Flags support the ablation benchmark.

    With ``certify=True`` the result carries a :class:`PruningCertificate`
    claiming, per input path, why dropping it was sound; verify with
    :func:`repro.lint.coverage.verify_pruning`."""
    initial = len(paths)
    current = list(paths)
    drops: Optional[Dict[StructuralPath, DropWitness]] = {} if certify else None
    if use_precedence:
        with trace.span("prune_pin_precedence", before=initial) as sp:
            current = prune_pin_precedence(circuit, current, drops=drops)
            sp.set_attrs(after=len(current))
    after_precedence = len(current)
    if use_dominance:
        with trace.span("prune_fanout_dominance", before=after_precedence) as sp:
            current = prune_fanout_dominance(circuit, current, drops=drops)
            sp.set_attrs(after=len(current))
    after_dominance = len(current)
    if use_regularity:
        with trace.span("prune_regularity", before=after_dominance) as sp:
            current = prune_regularity(circuit, current, drops=drops)
            sp.set_attrs(after=len(current))
    after_regularity = len(current)
    gauges = metrics.registry()
    gauges.gauge("prune.initial").set(initial)
    gauges.gauge("prune.after_precedence").set(after_precedence)
    gauges.gauge("prune.after_dominance").set(after_dominance)
    gauges.gauge("prune.after_regularity").set(after_regularity)
    metrics.counter("prune.runs").inc()
    certificate = None
    if certify:
        certificate = _build_certificate(
            circuit, initial, current, drops, use_dominance
        )
    return PruneResult(
        paths=current,
        stats=PruneStats(
            initial=initial,
            after_precedence=after_precedence,
            after_dominance=after_dominance,
            after_regularity=after_regularity,
        ),
        certificate=certificate,
    )


def _build_certificate(
    circuit: Circuit,
    initial: int,
    surviving: List[StructuralPath],
    drops: Dict[StructuralPath, DropWitness],
    used_dominance: bool,
) -> PruningCertificate:
    """Finalize the per-pass drop records into a certificate: dominance
    drops learn their same-signature survivor now that the final set is
    known, and the dominance pass's fanout claims are attached."""
    by_sig = {path_signature(circuit, p): p for p in surviving}
    finalized: Dict[StructuralPath, DropWitness] = {}
    for path, witness in drops.items():
        if witness.reason == "dominance":
            witness = DropWitness(
                "dominance",
                survivor=by_sig.get(path_signature(circuit, path)),
            )
        finalized[path] = witness
    return PruningCertificate(
        initial=initial,
        surviving=list(surviving),
        dropped=finalized,
        dominant=dict(dominant_stages(circuit)) if used_dominance else {},
    )
