"""Path-space reduction (Section 5.2).

Three techniques, applied in sequence:

1. **Pin precedence** — input pins of wide gates are statically partitioned
   into *fast* and *slow* sets (annotated by the macro generators, where the
   symmetry that makes the partition safe is known by construction).  A path
   entering a stage through a fast pin is pruned when the same stage has a
   slow pin of the same class: the slow pin's path dominates.

2. **Fanout dominance** — two *identical* stages (same kind, same size-label
   signature) can differ only in how much they drive.  The stage with the
   largest fanout dominates; paths through dominated twins are pruned.  The
   paper prunes heuristically on fanout count, "as the capacitance information
   is an unknown during sizing" — so do we, with an optional refinement that
   compares fanout label signatures when counts tie.

3. **Regularity merging** — datapath regularity means many paths are
   *identical up to instance names*: same sequence of (stage kind, size-label
   signature, pin class).  Identical nodes are constrained "to have the same
   size properties", so such paths reduce to one representative.

On the paper's 64-bit dynamic adder these take >32,000 paths to ~120 — a
factor of >250.  The reproduction benchmark checks the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit
from ..netlist.nets import PinClass, PinSpeed
from ..netlist.stages import Stage
from ..obs import metrics, trace
from .paths import StructuralPath

#: Signature of one path step for regularity comparisons.
StepKey = Tuple[str, Tuple[str, ...], str]


@dataclass
class PruneStats:
    """Accounting of one pruning run."""

    initial: int
    after_precedence: int
    after_dominance: int
    after_regularity: int

    @property
    def final(self) -> int:
        return self.after_regularity

    @property
    def reduction_factor(self) -> float:
        return self.initial / self.final if self.final else float("inf")


@dataclass
class PruneResult:
    paths: List[StructuralPath]
    stats: PruneStats


def _stage_key(circuit: Circuit, stage: Stage) -> Tuple[str, Tuple[str, ...]]:
    """Regularity identity of a stage: kind + canonical label signature."""
    labels = circuit.size_table.regularity_signature(stage.labels())
    return (stage.kind.value, labels)


def _step_key(circuit: Circuit, stage: Stage, pin_name: str) -> StepKey:
    pin = stage.pin(pin_name)
    kind, labels = _stage_key(circuit, stage)
    return (kind, labels, pin.pin_class.value)


def path_signature(circuit: Circuit, path: StructuralPath) -> Tuple:
    """Canonical identity of a path: source kind + step keys.

    Two paths with equal signatures traverse identical (same-sized) stages
    through same-class pins, so they produce identical GP constraints.
    """
    source_kind = circuit.net(path.start_net).kind.value
    keys = tuple(
        _step_key(circuit, circuit.stage(s.stage_name), s.pin_name)
        for s in path.steps
    )
    return (source_kind, keys)


# ---------------------------------------------------------------------------
# pass 1: pin precedence
# ---------------------------------------------------------------------------


def prune_pin_precedence(
    circuit: Circuit, paths: Sequence[StructuralPath]
) -> List[StructuralPath]:
    """Drop paths that enter any stage through a FAST pin when that stage has
    a SLOW pin of the same pin class (the slow path subsumes the fast one)."""
    slow_classes: Dict[str, set] = {}
    for stage in circuit.stages:
        classes = {
            p.pin_class for p in stage.inputs if p.speed is PinSpeed.SLOW
        }
        if classes:
            slow_classes[stage.name] = classes

    kept = []
    for path in paths:
        prunable = False
        for step in path.steps:
            stage = circuit.stage(step.stage_name)
            pin = stage.pin(step.pin_name)
            if (
                pin.speed is PinSpeed.FAST
                and pin.pin_class in slow_classes.get(stage.name, ())
            ):
                prunable = True
                break
        if not prunable:
            kept.append(path)
    return kept


# ---------------------------------------------------------------------------
# pass 2: fanout dominance
# ---------------------------------------------------------------------------


def dominant_stages(circuit: Circuit) -> Dict[Tuple, str]:
    """For each regularity group, the name of its dominant (max fanout)
    stage.  Ties break lexicographically for determinism."""
    groups: Dict[Tuple, List[Stage]] = {}
    for stage in circuit.stages:
        groups.setdefault(_stage_key(circuit, stage), []).append(stage)
    dominant: Dict[Tuple, str] = {}
    for key, members in groups.items():
        best = max(
            members,
            key=lambda s: (len(circuit.fanout_of(s.output.name)), s.name),
        )
        dominant[key] = best.name
    return dominant


def prune_fanout_dominance(
    circuit: Circuit, paths: Sequence[StructuralPath]
) -> List[StructuralPath]:
    """Keep only paths whose every step goes through its group's dominant
    stage — unless no retained path would cover that signature, in which case
    the path survives (soundness guard for asymmetric surroundings)."""
    dominant = dominant_stages(circuit)

    kept: List[StructuralPath] = []
    dropped: List[StructuralPath] = []
    for path in paths:
        through_dominant = all(
            dominant[_stage_key(circuit, circuit.stage(s.stage_name))]
            == s.stage_name
            for s in path.steps
        )
        (kept if through_dominant else dropped).append(path)

    covered = {path_signature(circuit, p) for p in kept}
    for path in dropped:
        sig = path_signature(circuit, path)
        if sig not in covered:
            kept.append(path)
            covered.add(sig)
    return kept


# ---------------------------------------------------------------------------
# pass 3: regularity merging
# ---------------------------------------------------------------------------


def prune_regularity(
    circuit: Circuit, paths: Sequence[StructuralPath]
) -> List[StructuralPath]:
    """One representative per path signature (first in input order)."""
    seen = set()
    kept = []
    for path in paths:
        sig = path_signature(circuit, path)
        if sig not in seen:
            seen.add(sig)
            kept.append(path)
    return kept


# ---------------------------------------------------------------------------
# combined
# ---------------------------------------------------------------------------


def prune_paths(
    circuit: Circuit,
    paths: Sequence[StructuralPath],
    use_precedence: bool = True,
    use_dominance: bool = True,
    use_regularity: bool = True,
) -> PruneResult:
    """Run the (selected) pruning passes in the paper's order and account for
    the reduction at each step.  Flags support the ablation benchmark."""
    initial = len(paths)
    current = list(paths)
    if use_precedence:
        with trace.span("prune_pin_precedence", before=initial) as sp:
            current = prune_pin_precedence(circuit, current)
            sp.set_attrs(after=len(current))
    after_precedence = len(current)
    if use_dominance:
        with trace.span("prune_fanout_dominance", before=after_precedence) as sp:
            current = prune_fanout_dominance(circuit, current)
            sp.set_attrs(after=len(current))
    after_dominance = len(current)
    if use_regularity:
        with trace.span("prune_regularity", before=after_dominance) as sp:
            current = prune_regularity(circuit, current)
            sp.set_attrs(after=len(current))
    after_regularity = len(current)
    gauges = metrics.registry()
    gauges.gauge("prune.initial").set(initial)
    gauges.gauge("prune.after_precedence").set(after_precedence)
    gauges.gauge("prune.after_dominance").set(after_dominance)
    gauges.gauge("prune.after_regularity").set(after_regularity)
    metrics.counter("prune.runs").inc()
    return PruneResult(
        paths=current,
        stats=PruneStats(
            initial=initial,
            after_precedence=after_precedence,
            after_dominance=after_dominance,
            after_regularity=after_regularity,
        ),
    )
