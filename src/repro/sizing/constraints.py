"""Constraint generation (the "Constraint Generator" box of Figure 4).

Expands pruned structural paths into posynomial timing constraints following
Section 5.3's family rules:

* **static** paths: two constraints (output rise and fall);
* **pass logic**: paths through the *data* port give two constraints like a
  static path; paths through the *control* port give two paths x two
  constraints (the select edge that turns the gate on can launch either
  output transition, and downstream directions differ);
* **dynamic** stages: separate *precharge* (clock fall -> node rise) and
  *evaluate* (clock rise / data rise -> node fall) constraints, split at
  clocked-evaluate (D1) phase boundaries; D2 stages evaluate off their data
  inputs alone.

Slope (transition-time) constraints are generated for every driven net —
"important for timing and reliability" — against separate internal/output
limits.  Input slopes entering delay templates are *frozen constants* from a
slope map the engine refreshes each Figure-4 iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..models.gates import ModelLibrary, Transition
from ..netlist.circuit import Circuit
from ..netlist.nets import NetKind, PinClass
from ..netlist.stages import StageKind
from ..posy import Posynomial
from ..sim.timing import StaticTimingAnalyzer, stage_arcs
from .paths import StructuralPath

Hop = Tuple[str, str, Transition]


@dataclass(frozen=True)
class DelaySpec:
    """Designer-provided constraints for one macro instance (Figure 1:
    "delays, slopes and loads").

    All times in ps.  ``None`` fields default to ``data``.
    """

    data: float
    control: Optional[float] = None
    evaluate: Optional[float] = None
    precharge: Optional[float] = None
    phase_budget: Optional[float] = None
    input_slope: float = 30.0
    max_output_slope: float = 150.0
    max_internal_slope: float = 350.0
    #: Domino charge-sharing (noise) limit: legs' internal diffusion must
    #: not exceed ``ratio x`` the precharge device's own node diffusion.
    #: ``None`` disables the reliability constraint (the designer may prefer
    #: manual keeper tuning — Section 2's noise-immunity override).
    charge_sharing_ratio: Optional[float] = None

    def for_kind(self, kind: str) -> float:
        if kind == "control":
            return self.control if self.control is not None else self.data
        if kind == "evaluate":
            return self.evaluate if self.evaluate is not None else self.data
        if kind == "precharge":
            return self.precharge if self.precharge is not None else self.data
        if kind == "segment":
            return self.phase_budget if self.phase_budget is not None else self.data
        return self.data

    def tightened(self, factor: float) -> "DelaySpec":
        """Uniformly scaled copy (used by tradeoff sweeps)."""
        scale = lambda v: None if v is None else v * factor
        return replace(
            self,
            data=self.data * factor,
            control=scale(self.control),
            evaluate=scale(self.evaluate),
            precharge=scale(self.precharge),
            phase_budget=scale(self.phase_budget),
        )


@dataclass
class TimingConstraint:
    """One posynomial path constraint ``delay <= spec``."""

    name: str
    delay: Posynomial
    spec: float
    kind: str           # data / control / evaluate / precharge / segment
    hops: Tuple[Hop, ...]

    def scaled_spec(self, multiplier: float) -> float:
        return self.spec * multiplier


@dataclass
class SlopeConstraint:
    """One posynomial slope constraint ``slope <= limit`` at a net."""

    name: str
    slope: Posynomial
    limit: float
    net: str


@dataclass
class NoiseConstraint:
    """Charge-sharing reliability constraint ``expr <= 1`` on a domino node
    (internal leg diffusion over allowed node charge)."""

    name: str
    expr: Posynomial
    stage: str


@dataclass
class ConstraintSet:
    timing: List[TimingConstraint] = field(default_factory=list)
    slopes: List[SlopeConstraint] = field(default_factory=list)
    noise: List[NoiseConstraint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.timing) + len(self.slopes) + len(self.noise)


class ConstraintGenerator:
    """Builds a :class:`ConstraintSet` from pruned structural paths."""

    def __init__(
        self,
        circuit: Circuit,
        library: ModelLibrary,
        spec: DelaySpec,
        otb_borrow: float = 0.0,
    ):
        self.circuit = circuit
        self.library = library
        self.spec = spec
        #: Opportunistic time borrowing window, ps (Section 5.3 / [12]):
        #: how far an evaluate segment may overrun its phase boundary.
        self.otb_borrow = otb_borrow
        self._analyzer = StaticTimingAnalyzer(circuit, library)
        self._load_cache: Dict[str, Posynomial] = {}

    # -- loads -----------------------------------------------------------------

    def load_of(self, net_name: str) -> Posynomial:
        if net_name not in self._load_cache:
            self._load_cache[net_name] = self._analyzer.load_posynomial(net_name)
        return self._load_cache[net_name]

    # -- transition expansion ----------------------------------------------------

    def transition_paths(self, path: StructuralPath) -> List[Tuple[Hop, ...]]:
        """Expand a structural path into chained transition paths."""
        start_net = self.circuit.net(path.start_net)
        results: List[Tuple[Hop, ...]] = []

        def extend(
            i: int, incoming: Transition, hops: Tuple[Hop, ...]
        ) -> None:
            if i == len(path.steps):
                results.append(hops)
                return
            step = path.steps[i]
            stage = self.circuit.stage(step.stage_name)
            pin = stage.pin(step.pin_name)
            for in_trans, out_trans in stage_arcs(stage, pin, self.library):
                if in_trans is incoming:
                    extend(i + 1, out_trans, hops + ((stage.name, pin.name, out_trans),))

        for start in (Transition.RISE, Transition.FALL):
            extend(0, start, ())
        return results

    # -- classification -----------------------------------------------------------

    def classify(self, path: StructuralPath, hops: Tuple[Hop, ...]) -> str:
        circuit = self.circuit
        first_stage = circuit.stage(hops[0][0])
        first_pin = first_stage.pin(hops[0][1])
        starts_at_clock = circuit.net(path.start_net).kind is NetKind.CLOCK
        if starts_at_clock and first_pin.pin_class is PinClass.CLOCK:
            # The first domino arc tells precharge from evaluate.
            if hops[0][2] is Transition.RISE:
                return "precharge"
            return "evaluate"
        for stage_name, pin_name, _ in hops:
            stage = circuit.stage(stage_name)
            pin = stage.pin(pin_name)
            # Select pins of pass/tri-state stages make a *control* path
            # (Section 5.3's "constraints through the control port").  Domino
            # select inputs are ordinary evaluate legs.
            if pin.pin_class is PinClass.SELECT and stage.kind in (
                StageKind.PASSGATE,
                StageKind.TRISTATE,
            ):
                return "control"
        if any(
            circuit.stage(s).kind is StageKind.DOMINO for s, _, _ in hops
        ):
            return "evaluate"
        return "data"

    # -- phase segmentation ---------------------------------------------------------

    def phase_segments(self, hops: Tuple[Hop, ...]) -> List[Tuple[Hop, ...]]:
        """Split a transition path at D1 (clocked domino) stage outputs —
        the phase boundaries opportunistic time borrowing plays against.

        A boundary only exists when *another* dynamic stage follows it: a
        single-phase macro (one domino level plus its static buffer) is one
        evaluate path, not two phases.
        """
        segments: List[Tuple[Hop, ...]] = []
        current: List[Hop] = []
        for hop in hops:
            current.append(hop)
            stage = self.circuit.stage(hop[0])
            if stage.kind is StageKind.DOMINO and stage.clocked:
                segments.append(tuple(current))
                current = []
        if current:
            segments.append(tuple(current))
        # Merge a trailing segment with no dynamic stage into its phase.
        while len(segments) > 1 and not any(
            self.circuit.stage(h[0]).kind is StageKind.DOMINO
            for h in segments[-1]
        ):
            tail = segments.pop()
            segments[-1] = segments[-1] + tail
        return segments

    # -- delay assembly ----------------------------------------------------------------

    def path_delay_posynomial(
        self, hops: Sequence[Hop], slope_map: Optional[Mapping[str, float]] = None
    ) -> Posynomial:
        """Path delay with *posynomial slope chaining*.

        The input slope of each stage along the path is the previous stage's
        output slope — itself a posynomial of upstream widths — so the GP
        sees the slope/size coupling instead of a frozen constant (equation
        (1)'s ``t_in_slope`` term stays inside the optimization).  Only the
        very first hop uses a constant: the designer's input slope (or a
        measured value from ``slope_map`` when the engine provides one).
        """
        table = self.circuit.size_table
        tech = self.library.tech
        total = Posynomial.zero()
        slope_map = slope_map or {}
        slope_expr: Posynomial = None
        for index, (stage_name, pin_name, out_trans) in enumerate(hops):
            stage = self.circuit.stage(stage_name)
            pin = stage.pin(pin_name)
            load = self.load_of(stage.output.name)
            if index == 0:
                start = slope_map.get(pin.net.name)
                if start is None:
                    start = (
                        self.spec.input_slope * 0.5
                        if pin.net.kind is NetKind.CLOCK
                        else self.spec.input_slope
                    )
                from ..posy import const

                slope_expr = const(start).as_posynomial()
            stage_delay = self.library.delay(
                stage, pin, out_trans, load, table, input_slope=0.0
            )
            total = total + stage_delay + tech.slope_sensitivity * slope_expr
            # Next stage's input slope: this stage's output slope with the
            # same chaining the model's slope template uses.
            base_slope = self.library.output_slope(
                stage, pin, out_trans, load, table, input_slope=0.0
            )
            slope_expr = base_slope + 0.1 * slope_expr
            if stage.output.wire_res > 0.0:
                # Long-wire net: Elmore wire delay + wire slope (posynomial
                # in the far-side fanout widths).
                from ..models.gates import LN2

                far = self._analyzer.far_cap_posynomial(stage.output.name)
                total = total + LN2 * stage.output.wire_res * far
                slope_expr = slope_expr + tech.slope_gain * stage.output.wire_res * far
        return total

    # -- top level -------------------------------------------------------------------

    def generate(
        self,
        paths: Sequence[StructuralPath],
        slope_map: Optional[Mapping[str, float]] = None,
    ) -> ConstraintSet:
        slope_map = dict(slope_map or {})
        constraints = ConstraintSet()
        seen: set = set()
        for p_index, path in enumerate(paths):
            for t_index, hops in enumerate(self.transition_paths(path)):
                if not hops:
                    continue
                kind = self.classify(path, hops)
                multi_phase = False
                if kind in ("data", "evaluate", "control"):
                    segments = self.phase_segments(hops)
                    multi_phase = len(segments) > 1
                    if multi_phase:
                        self._add_phase_constraints(
                            constraints, p_index, t_index, kind, hops, segments, slope_map, seen
                        )
                        continue
                self._add_constraint(
                    constraints,
                    f"p{p_index}.t{t_index}.{kind}",
                    kind,
                    hops,
                    self.spec.for_kind(kind),
                    slope_map,
                    seen,
                )
        self._add_slope_constraints(constraints, slope_map)
        self._add_noise_constraints(constraints)
        return constraints

    def _add_noise_constraints(self, constraints: ConstraintSet) -> None:
        """Section 5's "noise" constraints: bound each domino node's
        charge-sharing exposure.

        GP form: ``C_internal(W_data) / (ratio * C_pre(W_pre)) <= 1`` — the
        precharge device's node diffusion is the monomial anchor for the
        allowed charge, a conservative stand-in for the full node
        capacitance (which, being posynomial, cannot appear in a GP
        denominator).
        """
        ratio = self.spec.charge_sharing_ratio
        if ratio is None:
            return

        table = self.circuit.size_table
        tech = self.library.tech
        seen: set = set()
        for stage in self.circuit.stages:
            if stage.kind is not StageKind.DOMINO:
                continue
            model = self.library.model(stage)
            internal = model.internal_charge_cap(stage, table)
            if len(internal) == 0:
                continue
            # A keeper actively replenishes the node: credit its strength.
            keeper = float(stage.params.get("keeper", 0.0))
            allowed = (
                ratio
                * (1.0 + 2.0 * keeper)
                * tech.c_diff
                * table.monomial(stage.label("precharge"))
            )
            expr = internal / allowed
            key = expr
            if key in seen:
                continue
            seen.add(key)
            constraints.noise.append(
                NoiseConstraint(
                    name=f"noise.{stage.name}", expr=expr, stage=stage.name
                )
            )

    def _add_phase_constraints(
        self,
        constraints: ConstraintSet,
        p_index: int,
        t_index: int,
        kind: str,
        hops: Tuple[Hop, ...],
        segments: List[Tuple[Hop, ...]],
        slope_map: Mapping[str, float],
        seen: set,
    ) -> None:
        phase = self.spec.for_kind("segment")
        if self.otb_borrow > 0.0:
            # OTB: whole path gets the summed phase budget; each segment may
            # overrun its boundary by the borrow window.
            self._add_constraint(
                constraints,
                f"p{p_index}.t{t_index}.{kind}.otb",
                kind,
                hops,
                phase * len(segments),
                slope_map,
                seen,
            )
            segment_budget = phase + self.otb_borrow
        else:
            segment_budget = phase
        for s_index, segment in enumerate(segments):
            self._add_constraint(
                constraints,
                f"p{p_index}.t{t_index}.s{s_index}.segment",
                "segment",
                segment,
                segment_budget,
                slope_map,
                seen,
            )

    def _add_constraint(
        self,
        constraints: ConstraintSet,
        name: str,
        kind: str,
        hops: Tuple[Hop, ...],
        spec: float,
        slope_map: Mapping[str, float],
        seen: set,
    ) -> None:
        key = (hops, kind, round(spec, 6))
        if key in seen:
            return
        seen.add(key)
        delay = self.path_delay_posynomial(hops, slope_map)
        if len(delay) == 0:
            return
        constraints.timing.append(
            TimingConstraint(name=name, delay=delay, spec=spec, kind=kind, hops=hops)
        )

    def _add_slope_constraints(
        self, constraints: ConstraintSet, slope_map: Mapping[str, float]
    ) -> None:
        table = self.circuit.size_table
        outputs = set(self.circuit.primary_outputs)
        # Regularity dedupe: stages with identical slope posynomials and the
        # same limit produce one constraint (the adder's 64 bit-slices
        # collapse to a handful).
        seen_slopes: set = set()
        for stage in self.circuit.stages:
            net = stage.output.name
            limit = (
                self.spec.max_output_slope
                if net in outputs
                else self.spec.max_internal_slope
            )
            covered = set()
            for pin in stage.inputs:
                for _in_trans, out_trans in stage_arcs(stage, pin, self.library):
                    if out_trans in covered:
                        continue
                    covered.add(out_trans)
                    slope = self.library.output_slope(
                        stage,
                        pin,
                        out_trans,
                        self.load_of(net),
                        table,
                        input_slope=slope_map.get(pin.net.name, self.spec.input_slope),
                    )
                    if stage.output.wire_res > 0.0:
                        slope = slope + (
                            self.library.tech.slope_gain
                            * stage.output.wire_res
                            * self._analyzer.far_cap_posynomial(net)
                        )
                    key = (slope, limit)
                    if key in seen_slopes:
                        continue
                    seen_slopes.add(key)
                    constraints.slopes.append(
                        SlopeConstraint(
                            name=f"slope.{stage.name}.{out_trans.value}",
                            slope=slope,
                            limit=limit,
                            net=net,
                        )
                    )
