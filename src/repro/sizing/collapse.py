"""Regularity-collapsed sizing: solve one representative slice, replicate,
certify (ROADMAP's "solve one slice, replicate N", made sound).

The paper's Section 5.2 merges *paths* by regularity signature; this module
merges *variables*: free size labels that are structurally equivalent under
the label-blind bounded-radius WL refinement of
:func:`repro.lint.symbolic.isomorphism.label_equivalence_classes` are tied
to one representative each (a ratio tie of factor 1.0), so the GP the
engine builds has one variable — and, because regularity pruning dedupes
the now-identical paths, one constraint set — per equivalence class.  The
cross-slice boundary-load coupling constraints survive the collapse
automatically: a boundary path's delay posynomial simply mentions two
representatives instead of two per-slice labels.

The WL classes are a *heuristic proposal* (delay is a radius-unbounded
function of the whole circuit), so the collapse is only adopted behind a
proof: after the collapsed solve, the representative widths are replicated
onto the original free labels and the full original circuit is re-audited
at the replicated point by :class:`repro.lint.solution.audit.SolutionAudit`
(OPT703 replication soundness + OPT701 primal feasibility, full-STA
measured).  Certificate rejection — or a collapsed solve that fails to
converge — falls back to the ordinary full solve, so the collapse can
never produce a worse answer than not collapsing, only a faster one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..models.gates import ModelLibrary
from ..netlist.circuit import Circuit
from ..netlist.sizing_vars import SizeVar
from ..obs import metrics, perf, trace
from ..obs.log import get_logger
from ..cache.fingerprint import make_entry
from ..cache.store import SizingCache
from .constraints import DelaySpec
from .engine import SizingError, SizingResult, SmartSizer

log = get_logger(__name__)


@dataclass
class CollapsedSizingResult:
    """Outcome of :meth:`RegularityCollapsedSizer.size`.

    ``result`` is always a full-circuit :class:`SizingResult` — either the
    certified replication of the collapsed solve, or (``fallback=True``)
    the ordinary full solve that replaced a rejected collapse.
    """

    result: SizingResult
    classes: List[List[str]] = field(default_factory=list)
    full_free: int = 0
    collapsed_free: int = 0
    certificate: Optional[object] = None   # SolutionCertificate when issued
    fallback: bool = False
    fallback_reason: str = ""
    collapsed_runtime_s: float = 0.0       # wall of the collapsed solve
    certify_runtime_s: float = 0.0         # wall of the post-hoc audit

    @property
    def merged_labels(self) -> int:
        return self.full_free - self.collapsed_free


class RegularityCollapsedSizer:
    """Slice-collapsed front end over :class:`SmartSizer` (see module
    docstring for the soundness story).

    Parameters mirror :class:`SmartSizer`; additionally ``radius`` bounds
    the WL refinement (3 separates every distinct boundary role in the
    macro corpus while still collapsing the interior), ``cache`` receives
    the certified full-circuit result under the *full problem's* content
    address, and ``certificates`` (a
    :class:`repro.lint.solution.SolutionCertificateStore`) receives the
    issued certificate so later exact hits can be admitted without an STA
    re-run.
    """

    def __init__(
        self,
        circuit: Circuit,
        library: ModelLibrary,
        objective: str = "area",
        radius: int = 3,
        otb_borrow: float = 0.0,
        gp_method: str = "slsqp",
        analysis_library: Optional[ModelLibrary] = None,
        cache: Optional[SizingCache] = None,
        certificates: Optional[object] = None,
        with_kkt: bool = True,
    ):
        self.circuit = circuit
        self.library = library
        self.objective = objective
        self.radius = radius
        self.otb_borrow = otb_borrow
        self.gp_method = gp_method
        self.analysis_library = analysis_library
        self.cache = cache
        self.certificates = certificates
        #: Annotate the certificate with the OPT702 optimality-gap bound.
        #: The NNLS fit is O(labels x constraints) — worth skipping on very
        #: wide circuits where the gap annotation is not needed (it is
        #: never a veto; see SolutionAudit.certify).
        self.with_kkt = with_kkt
        if certificates is not None and cache is not None:
            # Let the full-solve fallback (and any later SmartSizer over
            # the same cache) use the certificate fast path too.
            if getattr(cache, "certificates", None) is None:
                cache.certificates = certificates

    # -- collapse mechanics -------------------------------------------------

    def equivalence_classes(self) -> List[List[str]]:
        """WL label classes (lazy import — lint loads the netlist package)."""
        from ..lint.symbolic.isomorphism import label_equivalence_classes

        return label_equivalence_classes(self.circuit, radius=self.radius)

    def _tie(self, classes: Sequence[Sequence[str]]) -> List[SizeVar]:
        """Install factor-1.0 ratio ties member -> representative; returns
        the displaced :class:`SizeVar` objects for :meth:`_untie`."""
        table = self.circuit.size_table
        undo: List[SizeVar] = []
        for members in classes:
            rep = members[0]
            for member in members[1:]:
                original = table[member]
                undo.append(original)
                table._vars[member] = SizeVar(
                    member, original.lower, original.upper,
                    ratio_of=(rep, 1.0),
                )
        return undo

    def _untie(self, undo: Sequence[SizeVar]) -> None:
        table = self.circuit.size_table
        for original in undo:
            table._vars[original.name] = original

    def _full_sizer(self) -> SmartSizer:
        return SmartSizer(
            self.circuit,
            self.library,
            objective=self.objective,
            otb_borrow=self.otb_borrow,
            analysis_library=self.analysis_library,
            gp_method=self.gp_method,
            cache=self.cache,
        )

    # -- main entry ---------------------------------------------------------

    def size(
        self,
        spec: DelaySpec,
        tolerance: float = 2.0,
        max_outer_iterations: int = 8,
    ) -> CollapsedSizingResult:
        """Collapse, solve, replicate, certify — or fall back to the full
        solve when the proof does not go through."""
        t_start = time.perf_counter()
        full_free = len(self.circuit.size_table.free_names())
        classes = self.equivalence_classes()
        merged = sum(len(c) - 1 for c in classes)
        if merged == 0:
            return self._fallback(
                spec, tolerance, max_outer_iterations, classes,
                full_free, t_start,
                reason="no label regularity to collapse",
            )
        with trace.span(
            "collapsed_size",
            circuit=self.circuit.name,
            classes=len(classes),
            merged=merged,
        ):
            undo = self._tie(classes)
            try:
                collapsed_sizer = SmartSizer(
                    self.circuit,
                    self.library,
                    objective=self.objective,
                    otb_borrow=self.otb_borrow,
                    analysis_library=self.analysis_library,
                    gp_method=self.gp_method,
                )
                t_solve = time.perf_counter()
                try:
                    collapsed = collapsed_sizer.size(
                        spec,
                        tolerance=tolerance,
                        max_outer_iterations=max_outer_iterations,
                    )
                except SizingError as exc:
                    # The ties are extra constraints: a collapsed-infeasible
                    # spec may still be solvable in full.
                    return self._fallback(
                        spec, tolerance, max_outer_iterations, classes,
                        full_free, t_start,
                        reason=f"collapsed GP infeasible ({exc})",
                        collapsed_runtime_s=(
                            time.perf_counter() - t_solve
                        ),
                    )
                collapsed_wall = time.perf_counter() - t_solve
                # Resolve through the tied table *before* untying: this is
                # the replication step — every member inherits its
                # representative's width through the factor-1.0 ratio.
                resolved_tied = self.circuit.size_table.resolve(
                    collapsed.widths
                )
            finally:
                self._untie(undo)
        replicated = {
            name: resolved_tied[name]
            for name in self.circuit.size_table.free_names()
        }
        if not collapsed.converged:
            return self._fallback(
                spec, tolerance, max_outer_iterations, classes,
                full_free, t_start,
                reason=(
                    f"collapsed solve did not converge (residual "
                    f"{collapsed.worst_violation:.2f} ps)"
                ),
                collapsed_runtime_s=collapsed_wall,
            )

        # Post-hoc certification on the original circuit (lazy import:
        # the audit pulls in the lint package).
        from ..lint.solution.audit import SolutionAudit

        t_certify = time.perf_counter()
        audit = SolutionAudit(
            self.circuit, self.library, spec,
            tolerance=tolerance,
            otb_borrow=self.otb_borrow,
            objective=self.objective,
            analysis_library=self.analysis_library,
        )
        full_sizer = self._full_sizer()
        cache_key = full_sizer.cache_key(spec, tolerance)
        certificate = audit.certify(
            replicated,
            cache_key=cache_key.key,
            classes=classes,
            representative_env=collapsed.widths,
            with_kkt=self.with_kkt,
        )
        certify_wall = time.perf_counter() - t_certify
        if not certificate.ok:
            failed = sorted(
                rule_id
                for rule_id, check in certificate.checks.items()
                if not check.get("ok", True)
            )
            metrics.counter("collapse.cert_rejections").inc()
            return self._fallback(
                spec, tolerance, max_outer_iterations, classes,
                full_free, t_start,
                reason=(
                    f"certificate rejected ({', '.join(failed)}; residual "
                    f"{certificate.worst_residual_ps:.2f} ps)"
                ),
                collapsed_runtime_s=collapsed_wall,
                certify_runtime_s=certify_wall,
            )

        _constraints, realized, worst, _name = audit.measure(replicated)
        resolved = self.circuit.size_table.resolve(replicated)
        result = SizingResult(
            circuit_name=self.circuit.name,
            widths=replicated,
            resolved=resolved,
            converged=True,
            iterations=collapsed.iterations,
            area=self.circuit.total_width(resolved),
            clock_load=self.circuit.clock_load_width(resolved),
            worst_violation=max(0.0, worst),
            realized=realized,
            specs=dict(certificate.specs),
            history=collapsed.history,
            prune_stats=collapsed.prune_stats,
            runtime_s=time.perf_counter() - t_start,
            gp_fallback_count=collapsed.gp_fallback_count,
        )
        self._publish(cache_key, result, spec, tolerance, certificate)
        outcome = CollapsedSizingResult(
            result=result,
            classes=[list(c) for c in classes],
            full_free=full_free,
            collapsed_free=full_free - merged,
            certificate=certificate,
            collapsed_runtime_s=collapsed_wall,
            certify_runtime_s=certify_wall,
        )
        self._record(outcome, spec)
        log.info(
            "collapsed sizing %s: %d -> %d free vars, certified "
            "(residual %.2f ps, solve %.3f s + certify %.3f s)",
            self.circuit.name, full_free, outcome.collapsed_free,
            result.worst_violation, collapsed_wall, certify_wall,
        )
        return outcome

    # -- helpers ------------------------------------------------------------

    def _publish(
        self, cache_key, result: SizingResult, spec: DelaySpec,
        tolerance: float, certificate,
    ) -> None:
        """Store the certified full-circuit result (and its certificate)
        under the full problem's content address."""
        if self.cache is not None:
            self.cache.put(
                make_entry(
                    cache_key,
                    circuit_name=self.circuit.name,
                    objective=self.objective,
                    spec_data=spec.data,
                    tolerance=tolerance,
                    env=result.widths,
                    iterations=result.iterations,
                    area=result.area,
                    runtime_s=result.runtime_s,
                )
            )
        if self.certificates is not None:
            try:
                self.certificates.put(certificate)
            except Exception:  # pragma: no cover - store must not kill sizing
                log.warning(
                    "failed to persist solution certificate for %s",
                    self.circuit.name, exc_info=True,
                )

    def _fallback(
        self,
        spec: DelaySpec,
        tolerance: float,
        max_outer_iterations: int,
        classes: Sequence[Sequence[str]],
        full_free: int,
        t_start: float,
        reason: str,
        collapsed_runtime_s: float = 0.0,
        certify_runtime_s: float = 0.0,
    ) -> CollapsedSizingResult:
        log.info(
            "collapsed sizing %s falling back to full solve: %s",
            self.circuit.name, reason,
        )
        metrics.counter("collapse.fallbacks").inc()
        result = self._full_sizer().size(
            spec, tolerance=tolerance,
            max_outer_iterations=max_outer_iterations,
        )
        result.runtime_s = time.perf_counter() - t_start
        outcome = CollapsedSizingResult(
            result=result,
            classes=[list(c) for c in classes],
            full_free=full_free,
            collapsed_free=full_free,
            fallback=True,
            fallback_reason=reason,
            collapsed_runtime_s=collapsed_runtime_s,
            certify_runtime_s=certify_runtime_s,
        )
        self._record(outcome, spec)
        return outcome

    def _record(self, outcome: CollapsedSizingResult, spec: DelaySpec) -> None:
        if perf.get_ledger() is None:
            return
        perf.record_run(
            "collapse",
            self.circuit.name,
            wall_s=outcome.result.runtime_s,
            extra={
                "full_free": outcome.full_free,
                "collapsed_free": outcome.collapsed_free,
                "classes": len(outcome.classes),
                "fallback": outcome.fallback,
                "fallback_reason": outcome.fallback_reason,
                "certified": (
                    bool(getattr(outcome.certificate, "ok", False))
                ),
                "collapsed_runtime_s": round(
                    outcome.collapsed_runtime_s, 6
                ),
                "certify_runtime_s": round(outcome.certify_runtime_s, 6),
                "spec_data": round(spec.data, 6),
            },
        )
