"""Opportunistic time borrowing (OTB) analysis for multi-phase domino paths.

Section 5.3: "An interesting feature of SMART sizer for dynamic circuits is
that the problem formulation automatically takes into account OTB
(Opportunistic Time Borrowing).  This allows its application on even some of
the most critical circuits."

The *formulation* hook lives in the constraint generator (see
``ConstraintGenerator.phase_segments`` and the ``otb_borrow`` window): with
OTB enabled, a path crossing a D1 phase boundary is constrained on its *total*
budget while each phase segment may overrun its boundary by the borrow window.
This module provides the companion analysis: given a sized circuit, how much
does each evaluate segment actually borrow across its phase boundary?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from ..models.gates import ModelLibrary
from ..netlist.circuit import Circuit
from ..netlist.stages import StageKind
from ..sim.timing import StaticTimingAnalyzer
from .constraints import ConstraintGenerator, DelaySpec
from .paths import PathExtractor, StructuralPath
from .pruning import prune_paths


@dataclass
class BorrowRecord:
    """Borrowing of one phase segment: positive means the segment ran past
    its phase budget and borrowed from the next phase."""

    path_name: str
    segment_index: int
    segment_delay: float
    phase_budget: float

    @property
    def borrowed(self) -> float:
        return max(0.0, self.segment_delay - self.phase_budget)


@dataclass
class OTBReport:
    records: List[BorrowRecord]

    @property
    def max_borrowed(self) -> float:
        return max((r.borrowed for r in self.records), default=0.0)

    @property
    def any_borrowing(self) -> bool:
        return self.max_borrowed > 0.0

    def borrowers(self) -> List[BorrowRecord]:
        return [r for r in self.records if r.borrowed > 0.0]


def analyze_borrowing(
    circuit: Circuit,
    library: ModelLibrary,
    widths: Mapping[str, float],
    spec: DelaySpec,
    paths: Optional[List[StructuralPath]] = None,
) -> OTBReport:
    """Measure per-segment delays of every multi-phase path at ``widths``.

    Only meaningful for circuits with clocked (D1) domino stages; the report
    is empty otherwise.
    """
    if not any(
        s.kind is StageKind.DOMINO and s.clocked for s in circuit.stages
    ):
        return OTBReport(records=[])

    if paths is None:
        paths = prune_paths(circuit, PathExtractor(circuit).extract()).paths
    generator = ConstraintGenerator(circuit, library, spec)
    analyzer = StaticTimingAnalyzer(circuit, library)
    phase_budget = spec.for_kind("segment")

    records: List[BorrowRecord] = []
    for p_index, path in enumerate(paths):
        for hops in generator.transition_paths(path):
            segments = generator.phase_segments(hops)
            if len(segments) < 2:
                continue
            for s_index, segment in enumerate(segments):
                delay = analyzer.path_delay(
                    segment, widths, input_slope=spec.input_slope
                )
                records.append(
                    BorrowRecord(
                        path_name=f"p{p_index}",
                        segment_index=s_index,
                        segment_delay=delay,
                        phase_budget=phase_budget,
                    )
                )
    return OTBReport(records=records)
