"""Geometric program formulation and solver.

Section 5 of the paper: SMART keeps every timing/slope/noise model posynomial
so the sizing problem is a geometric program, "transformed into convex problems
that can be solved efficiently and quickly, in a numerically stable fashion".

A GP in standard form:

    minimize    f0(x)                      (posynomial)
    subject to  fi(x) <= 1, i = 1..m       (posynomials)
                gj(x) == 1, j = 1..p       (monomials)
                lb_k <= x_k <= ub_k        (variable bounds)

With ``x = exp(y)`` each posynomial becomes a log-sum-exp function of ``y``
(convex), each monomial equality a linear equality, and bounds become box
constraints on ``y``.  We solve the convex problem with SciPy's SLSQP using
analytic gradients, preceded by a phase-1 feasibility solve when the initial
point violates constraints badly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..obs import metrics, trace
from ..posy import Monomial, Posynomial, as_posynomial


class GPError(Exception):
    """Raised for malformed geometric programs."""


class GPInfeasibleError(GPError):
    """Raised when the solver proves (numerically) that no point satisfies
    the constraints."""


@dataclass
class GPConstraint:
    """One inequality constraint ``expr <= 1`` with a diagnostic name."""

    expr: Posynomial
    name: str = ""

    def margin(self, env: Mapping[str, float]) -> float:
        """``1 - expr(env)``; nonnegative when satisfied."""
        return 1.0 - self.expr.evaluate(env)


@dataclass
class GPSolution:
    """Result of a GP solve."""

    status: str
    env: Dict[str, float]
    objective: float
    iterations: int
    max_violation: float
    message: str = ""

    @property
    def optimal(self) -> bool:
        return self.status == "optimal"

    def constraint_margins(self, program: "GeometricProgram") -> Dict[str, float]:
        """Margins (1 - f_i(x)) for every named inequality constraint."""
        return {c.name: c.margin(self.env) for c in program.inequalities}

    def tight_constraints(self, program: "GeometricProgram", tol: float = 1e-3) -> List[str]:
        """Names of constraints active (within ``tol``) at the solution."""
        return [
            c.name
            for c in program.inequalities
            if abs(c.margin(self.env)) <= tol
        ]


class GeometricProgram:
    """A geometric program in standard form.

    Build incrementally with :meth:`add_inequality` (``posy <= 1`` — use
    :meth:`add_upper_bound` for the common ``posy <= limit`` shape),
    :meth:`add_equality` (monomial == monomial) and :meth:`set_bounds`,
    then call :meth:`solve`.
    """

    def __init__(self, objective: Posynomial):
        objective = as_posynomial(objective)
        if len(objective) == 0:
            raise GPError("objective must be a nonempty posynomial")
        self.objective = objective
        self.inequalities: List[GPConstraint] = []
        self.equalities: List[Tuple[Monomial, str]] = []
        self._bounds: Dict[str, Tuple[float, float]] = {}
        self._default_bounds = (1e-3, 1e6)

    # -- construction ------------------------------------------------------

    def add_inequality(self, expr: Posynomial, name: str = "") -> None:
        """Add ``expr <= 1``."""
        expr = as_posynomial(expr)
        if len(expr) == 0:
            return  # 0 <= 1 trivially holds
        if expr.is_constant():
            if expr.constant_part() > 1.0 + 1e-12:
                raise GPInfeasibleError(
                    f"constraint {name or expr!r} is constant and violated"
                )
            return
        self.inequalities.append(GPConstraint(expr, name or f"ineq{len(self.inequalities)}"))

    def add_upper_bound(self, expr: Posynomial, limit: float, name: str = "") -> None:
        """Add ``expr <= limit`` for ``limit > 0``."""
        if limit <= 0:
            raise GPError(f"upper bound for {name!r} must be positive, got {limit}")
        self.add_inequality(as_posynomial(expr) / limit, name)

    def add_equality(self, lhs: Monomial, rhs: Monomial, name: str = "") -> None:
        """Add monomial equality ``lhs == rhs``."""
        ratio = lhs / rhs
        if ratio.is_constant():
            if not math.isclose(ratio.coefficient, 1.0, rel_tol=1e-9):
                raise GPInfeasibleError(f"equality {name!r} is constant and violated")
            return
        self.equalities.append((ratio, name or f"eq{len(self.equalities)}"))

    def set_bounds(self, variable: str, lower: float, upper: float) -> None:
        """Box bounds ``lower <= x <= upper`` (both strictly positive)."""
        if not 0 < lower <= upper:
            raise GPError(f"invalid bounds for {variable}: [{lower}, {upper}]")
        self._bounds[variable] = (lower, upper)

    def bounds(self, variable: str) -> Tuple[float, float]:
        return self._bounds.get(variable, self._default_bounds)

    def variables(self) -> List[str]:
        names = set(self.objective.variables())
        for constraint in self.inequalities:
            names.update(constraint.expr.variables())
        for mono, _ in self.equalities:
            names.update(mono.variables())
        names.update(self._bounds)
        return sorted(names)

    # -- solving -----------------------------------------------------------

    def solve(
        self,
        initial: Optional[Mapping[str, float]] = None,
        tol: float = 1e-8,
        max_iterations: int = 400,
        method: str = "slsqp",
    ) -> GPSolution:
        """Solve the GP.  Returns a :class:`GPSolution`.

        ``method`` selects the convex solver: ``"slsqp"`` (SciPy SQP, the
        default) or ``"barrier"`` — our own log-barrier interior-point
        method, in the spirit of the paper's reference [7] (Kortanek/Xu/Ye).
        Both operate on the same log-space convex transform.

        Raises :class:`GPInfeasibleError` when even the phase-1 problem cannot
        drive the worst constraint violation near zero.
        """
        names = self.variables()
        if not names:
            return GPSolution(
                status="optimal",
                env={},
                objective=self.objective.evaluate({}),
                iterations=0,
                max_violation=0.0,
            )
        index = {name: i for i, name in enumerate(names)}

        lower = np.array([math.log(self.bounds(n)[0]) for n in names])
        upper = np.array([math.log(self.bounds(n)[1]) for n in names])

        y0 = self._initial_point(names, index, lower, upper, initial)

        lse_obj = _LogSumExp.from_posynomial(self.objective, index)
        lse_cons = [
            _LogSumExp.from_posynomial(c.expr, index) for c in self.inequalities
        ]
        eq_rows = [
            _linear_row(mono, index, len(names)) for mono, _ in self.equalities
        ]

        metrics.counter("gp.solves").inc()
        if lse_cons:
            worst = max(c.value(y0) for c in lse_cons)
            if worst > 0.0:
                metrics.counter("gp.phase1_solves").inc()
                with trace.span("gp_phase1", violation=round(worst, 4)):
                    y0, worst = self._phase1(
                        y0, lse_cons, eq_rows, lower, upper, tol
                    )
                if worst > 1e-4:
                    metrics.counter("gp.infeasible").inc()
                    raise GPInfeasibleError(
                        f"phase-1 could not find a feasible point "
                        f"(max log-violation {worst:.3g})"
                    )

        if method == "barrier":
            y_opt, iterations, message = _barrier_solve(
                lse_obj, lse_cons, eq_rows, y0, lower, upper,
                tol=tol, max_outer=60,
            )
            result = optimize.OptimizeResult(
                x=y_opt, nit=iterations, success=True, message=message
            )
        elif method == "slsqp":
            constraints = [
                {"type": "ineq", "fun": c.neg_value, "jac": c.neg_grad}
                for c in lse_cons
            ]
            for (row, rhs), (_, name) in zip(eq_rows, self.equalities):
                constraints.append(
                    {
                        "type": "eq",
                        "fun": (lambda y, row=row, rhs=rhs: row @ y - rhs),
                        "jac": (lambda y, row=row: row),
                    }
                )

            result = optimize.minimize(
                lse_obj.value,
                y0,
                jac=lse_obj.grad,
                bounds=list(zip(lower, upper)),
                constraints=constraints,
                method="SLSQP",
                options={"maxiter": max_iterations, "ftol": tol},
            )
        else:
            raise GPError(f"unknown GP method {method!r}")

        y = np.clip(result.x, lower, upper)
        env = {name: float(math.exp(y[index[name]])) for name in names}
        max_violation = max(
            (c.expr.evaluate(env) - 1.0 for c in self.inequalities), default=0.0
        )
        for mono, _ in self.equalities:
            max_violation = max(max_violation, abs(mono.evaluate(env) - 1.0))

        status = "optimal" if (result.success and max_violation < 1e-4) else "inaccurate"
        if max_violation < 5e-3 and not result.success:
            # SLSQP occasionally reports failure on flat objectives while the
            # point is feasible and near-stationary; accept it as inaccurate.
            status = "inaccurate"
        elif max_violation >= 5e-3:
            status = "infeasible"

        metrics.histogram("gp.solver_iterations").observe(int(result.nit))
        metrics.counter(f"gp.status.{status}").inc()
        trace.add_attrs(
            variables=len(names), constraints=len(lse_cons), method=method
        )

        return GPSolution(
            status=status,
            env=env,
            objective=self.objective.evaluate(env),
            iterations=int(result.nit),
            max_violation=float(max(0.0, max_violation)),
            message=str(result.message),
        )

    # -- internals ---------------------------------------------------------

    def _initial_point(
        self,
        names: Sequence[str],
        index: Mapping[str, int],
        lower: np.ndarray,
        upper: np.ndarray,
        initial: Optional[Mapping[str, float]],
    ) -> np.ndarray:
        # Default: geometric middle biased toward small sizes, which is where
        # minimum-area optima live.
        y0 = lower + 0.25 * (upper - lower)
        if initial:
            # Warm starts come from caches and prior iterations, so tolerate
            # anything: unknown names are dropped, non-numeric / non-finite /
            # non-positive values ignored, out-of-bounds values clamped into
            # the (log-space) box instead of poisoning the solve.
            for name, value in initial.items():
                i = index.get(name)
                if i is None:
                    continue
                try:
                    value = float(value)
                except (TypeError, ValueError):
                    continue
                if not math.isfinite(value) or value <= 0.0:
                    continue
                y0[i] = min(upper[i], max(lower[i], math.log(value)))
        return np.clip(y0, lower, upper)

    def _phase1(
        self,
        y0: np.ndarray,
        lse_cons: Sequence["_LogSumExp"],
        eq_rows: Sequence[Tuple[np.ndarray, float]],
        lower: np.ndarray,
        upper: np.ndarray,
        tol: float,
    ) -> Tuple[np.ndarray, float]:
        """Minimize the worst constraint violation (with slack variable s)."""
        n = len(y0)
        s0 = max(c.value(y0) for c in lse_cons) + 0.1
        z0 = np.concatenate([y0, [s0]])

        def objective(z: np.ndarray) -> float:
            return z[-1]

        def objective_grad(z: np.ndarray) -> np.ndarray:
            grad = np.zeros_like(z)
            grad[-1] = 1.0
            return grad

        constraints = []
        for c in lse_cons:
            constraints.append(
                {
                    "type": "ineq",
                    "fun": (lambda z, c=c: z[-1] - c.value(z[:-1])),
                    "jac": (
                        lambda z, c=c: np.concatenate([-c.grad(z[:-1]), [1.0]])
                    ),
                }
            )
        for row, rhs in eq_rows:
            constraints.append(
                {
                    "type": "eq",
                    "fun": (lambda z, row=row, rhs=rhs: row @ z[:-1] - rhs),
                    "jac": (
                        lambda z, row=row: np.concatenate([row, [0.0]])
                    ),
                }
            )
        bounds = list(zip(lower, upper)) + [(-10.0, s0 + 1.0)]
        result = optimize.minimize(
            objective,
            z0,
            jac=objective_grad,
            bounds=bounds,
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": 300, "ftol": tol},
        )
        y = np.clip(result.x[:-1], lower, upper)
        worst = max(c.value(y) for c in lse_cons)
        return y, worst


@dataclass
class _LogSumExp:
    """``log sum_k exp(b_k + A_k . y)`` with analytic gradient."""

    A: np.ndarray  # (terms, vars) exponent matrix
    b: np.ndarray  # (terms,) log coefficients
    _scratch: dict = field(default_factory=dict, repr=False)

    @classmethod
    def from_posynomial(cls, posy: Posynomial, index: Mapping[str, int]) -> "_LogSumExp":
        terms = posy.terms
        A = np.zeros((len(terms), len(index)))
        b = np.zeros(len(terms))
        for k, mono in enumerate(terms):
            b[k] = math.log(mono.coefficient)
            for name, exp in mono.signature:
                A[k, index[name]] = exp
        return cls(A=A, b=b)

    def _exponents(self, y: np.ndarray) -> np.ndarray:
        return self.b + self.A @ y

    def value(self, y: np.ndarray) -> float:
        e = self._exponents(y)
        m = float(e.max())
        return m + math.log(float(np.exp(e - m).sum()))

    def grad(self, y: np.ndarray) -> np.ndarray:
        e = self._exponents(y)
        w = np.exp(e - e.max())
        w /= w.sum()
        return w @ self.A

    def neg_value(self, y: np.ndarray) -> float:
        """``-value`` — SLSQP inequality convention is ``fun(y) >= 0``."""
        return -self.value(y)

    def neg_grad(self, y: np.ndarray) -> np.ndarray:
        return -self.grad(y)

    def hess(self, y: np.ndarray) -> np.ndarray:
        """Hessian of the log-sum-exp: ``A^T (diag(w) - w w^T) A``."""
        e = self._exponents(y)
        w = np.exp(e - e.max())
        w /= w.sum()
        weighted = self.A * w[:, None]
        return weighted.T @ self.A - np.outer(w @ self.A, w @ self.A)


def _linear_row(
    mono: Monomial, index: Mapping[str, int], width: int
) -> Tuple[np.ndarray, float]:
    """Monomial equality ``mono == 1`` as linear row ``row @ y == rhs``."""
    row = np.zeros(width)
    for name, exp in mono.signature:
        row[index[name]] = exp
    return row, -math.log(mono.coefficient)


def _strictify(
    y: np.ndarray,
    lse_cons: Sequence[_LogSumExp],
    lower: np.ndarray,
    upper: np.ndarray,
    margin: float = 1e-6,
) -> np.ndarray:
    """Push a (weakly) feasible point strictly inside the inequality set so
    the barrier is finite (box strictness handled by clipping)."""
    y = np.clip(y, lower + margin, upper - margin)
    for _ in range(200):
        values = [c.value(y) for c in lse_cons]
        worst_idx = int(np.argmax(values)) if values else -1
        if worst_idx < 0 or values[worst_idx] < -margin:
            return y
        grad = lse_cons[worst_idx].grad(y)
        norm = np.linalg.norm(grad)
        if norm < 1e-12:
            return y
        y = np.clip(y - 0.2 * grad / norm, lower + margin, upper - margin)
    return y


def _barrier_solve(
    lse_obj: _LogSumExp,
    lse_cons: Sequence[_LogSumExp],
    eq_rows: Sequence[Tuple[np.ndarray, float]],
    y0: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    tol: float = 1e-8,
    max_outer: int = 60,
    mu: float = 15.0,
    eq_penalty: float = 1e5,
) -> Tuple[np.ndarray, int, str]:
    """Log-barrier interior-point method on the log-space convex GP.

    Minimizes ``t f0(y) + phi(y)`` by damped Newton with backtracking,
    increasing ``t`` geometrically until the duality-gap bound ``m/t`` is
    below tolerance.  Monomial equalities enter as a quadratic penalty
    (exact enough at ``eq_penalty`` since they are linear in y).
    Returns ``(y, newton_iterations, message)``.
    """
    n = len(y0)
    y = _strictify(np.asarray(y0, dtype=float), lse_cons, lower, upper)
    m = len(lse_cons) + 2 * n
    t = 1.0
    total_newton = 0

    def value_grad_hess(y: np.ndarray, t: float):
        val = t * lse_obj.value(y)
        grad = t * lse_obj.grad(y)
        hess = t * lse_obj.hess(y)
        for c in lse_cons:
            fv = c.value(y)
            if fv >= 0.0:
                return math.inf, grad, hess
            fg = c.grad(y)
            val -= math.log(-fv)
            grad += fg / (-fv)
            hess += c.hess(y) / (-fv) + np.outer(fg, fg) / (fv * fv)
        dl = y - lower
        du = upper - y
        if (dl <= 0).any() or (du <= 0).any():
            return math.inf, grad, hess
        val -= float(np.log(dl).sum() + np.log(du).sum())
        grad += -1.0 / dl + 1.0 / du
        hess += np.diag(1.0 / dl ** 2 + 1.0 / du ** 2)
        # The penalty must outgrow t or the objective would buy equality
        # violations at large t; scaling with t keeps the violation bounded
        # by |grad f0| / eq_penalty independent of the barrier stage.
        pen = eq_penalty * t
        for row, rhs in eq_rows:
            r = float(row @ y - rhs)
            val += 0.5 * pen * r * r
            grad += pen * r * row
            hess += pen * np.outer(row, row)
        return val, grad, hess

    for _outer in range(max_outer):
        for _inner in range(60):
            val, grad, hess = value_grad_hess(y, t)
            try:
                step = np.linalg.solve(hess + 1e-10 * np.eye(n), -grad)
            except np.linalg.LinAlgError:
                step = -grad
            decrement = float(-grad @ step)
            if decrement / 2.0 < 1e-10:
                break
            alpha = 1.0
            for _ in range(50):
                candidate = y + alpha * step
                new_val, _g, _h = value_grad_hess(candidate, t)
                if new_val < val - 1e-12 * abs(val):
                    y = candidate
                    break
                alpha *= 0.5
            else:
                break
            total_newton += 1
        if m / t < max(tol, 1e-9):
            break
        t *= mu
    return y, total_newton, f"barrier: t={t:.3g}, newton={total_newton}"
