"""The SMART sizing engine — the full Figure-4 loop.

    unsized schematic -> path extraction -> pruning -> constraint generation
    -> GP solve -> netlist update -> timing analysis -> (mismatch?) ->
    new delay specification -> iterate until convergence

The GP works with frozen input slopes and posynomial component models; the
static timing analyzer then measures the realized netlist with true slope
propagation.  When a constrained path's realized delay misses its spec, the
engine creates a "new delay specification" (Figure 4) for the next GP round by
scaling that constraint's budget by the observed mismatch, and refreshes the
frozen slope map from the STA.  Convergence is declared when every realized
path delay is within ``tolerance`` of its spec — the paper reports solutions
"within a few pico-seconds" of the original design's timing.

Constraint kinds wired into the GP (Figure 4's constraint taxonomy):

* performance constraints — path delay budgets (data/control/evaluate/
  precharge/segment);
* reliability constraints — slope limits on internal and output nets;
* device size constraints — per-label width bounds from the size table;
* connectivity constraints — implicit in the netlist (loads are posynomials
  of exactly the fanout the stage graph records).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..cache.fingerprint import CacheKey, make_entry, sizing_cache_key
from ..cache.store import SizingCache
from ..models.gates import ModelLibrary, Transition
from ..netlist.circuit import Circuit
from ..obs import metrics, perf, trace
from ..obs.log import get_logger
from ..posy import Posynomial, posy_sum
from ..sim.power import PowerEstimator
from ..sim.timing import StaticTimingAnalyzer
from .constraints import ConstraintGenerator, ConstraintSet, DelaySpec
from .gp import GeometricProgram, GPInfeasibleError
from .paths import PathExtractor
from .pruning import PruneResult, prune_paths

log = get_logger(__name__)


class SizingError(Exception):
    """Raised when no feasible sizing exists for the given constraints."""


def nominal_delay(
    circuit,
    library: ModelLibrary,
    input_slope: float = 30.0,
    widths: Optional[Mapping[str, float]] = None,
) -> float:
    """Worst output arrival at nominal (geometric-mid) label widths, ps.

    Callers use this to pick *feasible* delay budgets for a topology — e.g.
    ``spec = DelaySpec(data=0.8 * nominal_delay(c, lib))`` asks SMART to beat
    the nominal sizing by 20%.
    """
    analyzer = StaticTimingAnalyzer(circuit, library)
    env = dict(widths) if widths else circuit.size_table.default_env()
    report = analyzer.analyze(env, input_slope=input_slope)
    return report.worst(circuit.primary_outputs)


@dataclass
class IterationRecord:
    """One trip around the Figure-4 loop."""

    iteration: int
    gp_status: str
    gp_objective: float
    worst_violation: float
    worst_constraint: str


@dataclass
class SizingResult:
    """Outcome of :meth:`SmartSizer.size`."""

    circuit_name: str
    widths: Dict[str, float]          # free-label assignment (GP variables)
    resolved: Dict[str, float]        # every label's width
    converged: bool
    iterations: int
    area: float                       # total transistor width, µm
    clock_load: float                 # gate width on clocks, µm
    worst_violation: float            # ps over spec (<= tolerance if converged)
    realized: Dict[str, float]        # constraint name -> realized delay, ps
    specs: Dict[str, float]           # constraint name -> spec, ps
    history: List[IterationRecord] = field(default_factory=list)
    prune_stats: Optional[object] = None
    runtime_s: float = 0.0            # wall-time of the whole Figure-4 loop
    gp_fallback_count: int = 0        # infeasible-retarget GP recoveries
    cache_hit: str = ""               # "" | "exact" | "exact-cert" | "warm"

    @property
    def worst_slack(self) -> float:
        """Most negative slack across constraints, ps."""
        return -self.worst_violation

    def realized_delay(self, kind_prefix: Optional[str] = None) -> float:
        values = [
            v
            for name, v in self.realized.items()
            if kind_prefix is None or name.endswith(kind_prefix)
        ]
        return max(values) if values else 0.0


def measure_class_delays(
    circuit,
    library: ModelLibrary,
    widths: Mapping[str, float],
    input_slope: float = 30.0,
) -> Dict[str, float]:
    """Worst realized delay per constraint class at a given sizing.

    The Section-6.1 protocol needs "the same topology and performance": SMART
    is handed, per class (data / control / evaluate / precharge / segment),
    exactly the delay the original design achieves.  This measures those
    numbers with the timing analyzer over the same constraint machinery the
    sizer uses.
    """
    from .constraints import ConstraintGenerator, DelaySpec as _Spec
    from .paths import PathExtractor
    from .pruning import prune_paths

    analyzer = StaticTimingAnalyzer(circuit, library)
    extractor = PathExtractor(circuit)
    if extractor.count() > 20_000:
        paths = extractor.extract_representative()
    else:
        paths = prune_paths(circuit, extractor.extract()).paths
    generator = ConstraintGenerator(
        circuit, library, _Spec(data=1.0, input_slope=input_slope)
    )
    constraints = generator.generate(paths, {})
    report = analyzer.analyze(widths, input_slope=input_slope)
    slopes = {key: event.slope for key, event in report.arrivals.items()}
    worst: Dict[str, float] = {}
    for constraint in constraints.timing:
        measured = analyzer.path_delay(
            constraint.hops, widths, input_slope=input_slope, net_slopes=slopes
        )
        worst[constraint.kind] = max(worst.get(constraint.kind, 0.0), measured)
    return worst


def measure_slopes(
    circuit,
    library: ModelLibrary,
    widths: Mapping[str, float],
    input_slope: float = 30.0,
) -> Tuple[float, float]:
    """(worst output slope, worst internal slope) of a sized circuit, ps.

    The savings protocol hands SMART the *original design's* realized slopes
    as its reliability limits — same performance, same edge rates."""
    analyzer = StaticTimingAnalyzer(circuit, library)
    report = analyzer.analyze(widths, input_slope=input_slope)
    outputs = set(circuit.primary_outputs)
    worst_out, worst_int = 0.0, 0.0
    for (net, _trans), event in report.arrivals.items():
        if net in outputs:
            worst_out = max(worst_out, event.slope)
        elif net not in circuit.primary_inputs:
            worst_int = max(worst_int, event.slope)
    return worst_out, worst_int


def spec_from_measurement(
    class_delays: Mapping[str, float],
    input_slope: float = 30.0,
    slack: float = 1.0,
    max_output_slope: float = 150.0,
    max_internal_slope: float = 350.0,
    precharge_slack: float = 2.5,
) -> DelaySpec:
    """A :class:`DelaySpec` matching a measured design's per-class delays.

    ``slack`` > 1 loosens everything uniformly.  ``precharge_slack`` loosens
    only the precharge budget: precharge must merely complete within the
    clock's low phase, so matching the original's (typically over-driven)
    precharge speed would forbid exactly the precharge downsizing that
    produces the paper's domino clock-load savings.
    """
    if not class_delays:
        raise ValueError("no measured classes")
    data = class_delays.get("data", max(class_delays.values()))
    return DelaySpec(
        data=data * slack,
        control=(
            class_delays["control"] * slack if "control" in class_delays else None
        ),
        evaluate=(
            class_delays["evaluate"] * slack if "evaluate" in class_delays else None
        ),
        precharge=(
            class_delays["precharge"] * slack * precharge_slack
            if "precharge" in class_delays
            else None
        ),
        phase_budget=(
            class_delays["segment"] * slack if "segment" in class_delays else None
        ),
        input_slope=input_slope,
        max_output_slope=max_output_slope,
        max_internal_slope=max_internal_slope,
    )


class SmartSizer:
    """Automatic transistor sizer for one macro instance.

    Parameters
    ----------
    circuit:
        The unsized (labeled) circuit.
    library:
        Component model library (defines the technology).
    objective:
        ``"area"`` (total transistor width — the paper's headline metric),
        ``"power"`` (activity-weighted switched capacitance), ``"clock"``
        (clock load plus a small area tiebreak), or ``"area+clock"``.
    otb_borrow:
        Opportunistic-time-borrowing window in ps for multi-phase domino
        paths (0 disables OTB).
    pre_screen:
        Run the interval-STA screen
        (:func:`repro.lint.dataflow.interval.screen_feasibility`) before
        each solve and raise :class:`SizingError` without extracting a
        single path when the spec is provably unreachable over the whole
        size box.  Sound: the screen only rejects specs whose first GP
        round is mathematically infeasible.
    cache:
        Optional :class:`repro.cache.SizingCache`.  Exact hits (same
        circuit/context/spec fingerprints) are re-verified against the STA
        before reuse; near hits (same circuit and context, different spec)
        warm-start the GP.  Converged results are stored back.
    """

    def __init__(
        self,
        circuit: Circuit,
        library: ModelLibrary,
        objective: str = "area",
        otb_borrow: float = 0.0,
        max_paths: int = 2_000_000,
        enumeration_threshold: int = 20_000,
        analysis_library: Optional[ModelLibrary] = None,
        gp_method: str = "slsqp",
        pre_screen: bool = True,
        cache: Optional[SizingCache] = None,
    ):
        self.circuit = circuit
        self.library = library
        self.objective = objective
        self.otb_borrow = otb_borrow
        self.pre_screen = pre_screen
        self.cache = cache
        self.max_paths = max_paths
        #: Above this raw path count, switch from enumerate-then-prune to
        #: representative extraction (pruning applied during the walk).
        self.enumeration_threshold = enumeration_threshold
        #: The "timing analysis tool" may use different (more accurate)
        #: models than the GP's — the paper's PathMill-vs-posynomial split.
        #: Defaults to the GP's own library.
        self.analyzer = StaticTimingAnalyzer(circuit, analysis_library or library)
        self._analysis_library = analysis_library
        #: Convex solver for the inner GP ("slsqp" or "barrier").
        self.gp_method = gp_method
        self._cache_key: Optional[CacheKey] = None
        self._cache_hit_runtime = 0.0

    def cache_key(self, spec: DelaySpec, tolerance: float = 2.0) -> CacheKey:
        """Content address of the :meth:`size` problem this sizer would solve
        for ``spec`` at ``tolerance`` (see :mod:`repro.cache.fingerprint`)."""
        return sizing_cache_key(
            self.circuit,
            self.library,
            spec,
            analysis_library=self._analysis_library,
            objective=self.objective,
            otb_borrow=self.otb_borrow,
            gp_method=self.gp_method,
            max_paths=self.max_paths,
            enumeration_threshold=self.enumeration_threshold,
            tolerance=tolerance,
        )

    # -- objective -----------------------------------------------------------

    def objective_posynomial(self) -> Posynomial:
        area = self.circuit.area_posynomial()
        if self.objective == "area":
            return area
        if self.objective == "clock":
            clock = self.circuit.clock_load_posynomial()
            if len(clock) == 0:
                return area
            return clock + 0.01 * area
        if self.objective == "area+clock":
            clock = self.circuit.clock_load_posynomial()
            return area + clock if len(clock) else area
        if self.objective == "power":
            return self._power_posynomial()
        raise ValueError(f"unknown objective {self.objective!r}")

    def _power_posynomial(self) -> Posynomial:
        """Activity-weighted switched capacitance (arbitrary consistent
        units; only relative values matter to the optimum)."""
        estimator = PowerEstimator(self.circuit, self.library)
        table = self.circuit.size_table
        parts: List[Posynomial] = []
        for net in self.circuit.nets.values():
            if net.kind.value in ("supply", "ground"):
                continue
            activity = estimator.net_activity(net.name)
            cap = Posynomial.zero()
            for stage, pin in self.circuit.fanout_of(net.name):
                cap = cap + self.library.input_cap(stage, pin, table)
            driver = self.circuit.driver_of(net.name)
            if driver is not None:
                cap = cap + self.library.output_parasitic(driver, table)
            if len(cap):
                parts.append(activity * cap)
        total = posy_sum(parts)
        if len(total) == 0:
            return self.circuit.area_posynomial()
        return total

    # -- main entry -----------------------------------------------------------

    def size(
        self,
        spec: DelaySpec,
        tolerance: float = 2.0,
        max_outer_iterations: int = 8,
        prune: bool = True,
        initial: Optional[Mapping[str, float]] = None,
    ) -> SizingResult:
        """Run the Figure-4 loop to convergence.

        Raises :class:`SizingError` when the GP is infeasible at the original
        spec (the topology cannot meet the constraints at any size).
        """
        with trace.span(
            "size", circuit=self.circuit.name, objective=self.objective
        ) as run_span:
            t_start = time.perf_counter()
            result = self._size_traced(
                spec, tolerance, max_outer_iterations, prune, initial
            )
            result.runtime_s = time.perf_counter() - t_start
            self._cache_settle(result, spec, tolerance)
            run_span.set_attrs(
                converged=result.converged,
                iterations=result.iterations,
                worst_violation=round(result.worst_violation, 4),
                area=round(result.area, 3),
                gp_fallbacks=result.gp_fallback_count,
            )
            metrics.histogram("engine.runtime_s").observe(result.runtime_s)
            self._record_run(result, spec, tolerance, run_span)
            log.info(
                "sized %s: converged=%s iterations=%d residual=%.2f ps "
                "area=%.1f um (%.3f s)",
                self.circuit.name, result.converged, result.iterations,
                result.worst_violation, result.area, result.runtime_s,
            )
            return result

    def _record_run(
        self,
        result: SizingResult,
        spec: DelaySpec,
        tolerance: float,
        run_span,
    ) -> None:
        """Append one run-ledger record for this sizing invocation.

        Fingerprints and span rollups are only computed when a ledger is
        active, so un-observed runs pay a single ``is None`` check.
        """
        if perf.get_ledger() is None:
            return
        key = self._cache_key or self.cache_key(spec, tolerance)
        tracer = trace.get_tracer()
        subtree = (
            perf.collect_subtree(tracer.spans, run_span.span_id)
            if isinstance(tracer, trace.Tracer)
            else []
        )
        perf.record_run(
            "size",
            self.circuit.name,
            wall_s=result.runtime_s,
            spans=subtree,
            circuit_fp=key.circuit_fp,
            context_fp=key.context_fp,
            spec_fp=key.spec_fp,
            gp={
                "solves": sum(
                    1 for s in subtree if s.name == "gp_solve"
                ),
                "iterations": result.iterations,
                "fallbacks": result.gp_fallback_count,
                "final_residual_ps": (
                    result.worst_violation
                    if math.isfinite(result.worst_violation)
                    else None
                ),
                "converged": result.converged,
            },
            cache={"hit": result.cache_hit or "miss"},
            extra={
                "objective": self.objective,
                "area": result.area,
            },
        )

    def _cache_settle(
        self, result: SizingResult, spec: DelaySpec, tolerance: float
    ) -> None:
        """Post-run cache bookkeeping: credit the wall-time an exact hit
        saved (cached solve time minus the re-verification pass — near-zero
        for certificate-admitted hits), or store a freshly converged result
        (issuing a solution certificate alongside when a certificate store
        is attached to the cache)."""
        if self.cache is None:
            return
        if result.cache_hit in ("exact", "exact-cert"):
            saved = max(0.0, self._cache_hit_runtime - result.runtime_s)
            self.cache.stats.wall_saved_s += saved
            metrics.histogram("cache.wall_saved_s").observe(saved)
            return
        if result.converged and self._cache_key is not None:
            self.cache.put(
                make_entry(
                    self._cache_key,
                    circuit_name=self.circuit.name,
                    objective=self.objective,
                    spec_data=spec.data,
                    tolerance=tolerance,
                    env=result.widths,
                    iterations=result.iterations,
                    area=result.area,
                    runtime_s=result.runtime_s,
                )
            )
            metrics.counter("cache.stores").inc()
            self._issue_certificate(result, spec, tolerance)

    def _issue_certificate(
        self, result: SizingResult, spec: DelaySpec, tolerance: float
    ) -> None:
        """Certify a freshly converged result into the cache's attached
        certificate store (if any) so later exact hits can be admitted
        without an STA re-run.  Never-fail: certification problems degrade
        to the STA fallback path, not to a sizing error."""
        cert_store = getattr(self.cache, "certificates", None)
        if cert_store is None or self._cache_key is None:
            return
        if self._cache_key.key in cert_store:
            return
        try:
            from ..lint.solution.audit import SolutionAudit

            audit = SolutionAudit(
                self.circuit,
                self.library,
                spec,
                tolerance=tolerance,
                otb_borrow=self.otb_borrow,
                objective=self.objective,
                analysis_library=self._analysis_library,
                gp_method=self.gp_method,
            )
            cert = audit.certify(
                result.widths, cache_key=self._cache_key.key, with_kkt=False
            )
            cert_store.put(cert)
        except Exception as exc:  # pragma: no cover - defensive
            log.warning(
                "%s: solution-certificate issuance failed (%s); exact hits "
                "will re-verify via STA", self.circuit.name, exc,
            )

    def _extract(self, prune: bool) -> PruneResult:
        """Path extraction + Section-5.2 reduction (one Figure-4 front end).

        Enumerates and prunes when the raw count is tractable; falls back to
        representative extraction (pruning applied during the walk) above
        ``enumeration_threshold``.
        """
        from .pruning import PruneStats

        extractor = PathExtractor(self.circuit, max_paths=self.max_paths)
        with trace.span("path_extraction") as extract_span:
            raw_count = extractor.count()
            extract_span.set_attrs(raw_paths=raw_count)
            if prune and raw_count > self.enumeration_threshold:
                representative = extractor.extract_representative()
                prune_result = PruneResult(
                    paths=representative,
                    stats=PruneStats(
                        initial=raw_count,
                        after_precedence=raw_count,
                        after_dominance=len(representative),
                        after_regularity=len(representative),
                    ),
                )
                extract_span.set_attrs(
                    mode="representative", kept_paths=len(representative)
                )
            elif prune:
                raw_paths = extractor.extract()
                prune_result = prune_paths(self.circuit, raw_paths)
                extract_span.set_attrs(
                    mode="enumerate+prune", kept_paths=len(prune_result.paths)
                )
            else:
                raw_paths = extractor.extract()
                prune_result = PruneResult(
                    paths=list(raw_paths),
                    stats=PruneStats(
                        len(raw_paths), len(raw_paths), len(raw_paths),
                        len(raw_paths),
                    ),
                )
                extract_span.set_attrs(
                    mode="enumerate", kept_paths=len(raw_paths)
                )
        return prune_result

    def pre_solve_lint(self, spec: DelaySpec):
        """Build this circuit's constraint set and GP for ``spec`` and run
        the ``GP2xx`` pre-solve rules, without solving.

        Returns a :class:`repro.lint.LintReport`; the same screen gates
        every :meth:`size` run.
        """
        prune_result = self._extract(prune=True)
        generator = ConstraintGenerator(
            self.circuit, self.library, spec, otb_borrow=self.otb_borrow
        )
        constraints = generator.generate(prune_result.paths, {})
        return self._lint_gp(constraints)

    def _interval_screen(self, spec: DelaySpec):
        """Interval-STA verdict for ``spec``, or ``None`` if the screen
        itself errors (the screen must never turn a solvable run into a
        crash — lint analyses import lazily and may be mid-bootstrap)."""
        try:
            from ..lint.dataflow.interval import screen_feasibility

            return screen_feasibility(
                self.circuit, self.library, spec, otb_borrow=self.otb_borrow
            )
        except ImportError:  # pragma: no cover - partial-init bootstrap
            return None

    def _lint_gp(self, constraints: ConstraintSet):
        from ..lint.rules_gp import lint_gp

        report = lint_gp(
            self._build_gp(constraints, {}), self.circuit.size_table
        )
        report.subject = f"{self.circuit.name}:gp"
        return report

    def _size_traced(
        self,
        spec: DelaySpec,
        tolerance: float,
        max_outer_iterations: int,
        prune: bool,
        initial: Optional[Mapping[str, float]],
    ) -> SizingResult:
        if self.pre_screen:
            screen = self._interval_screen(spec)
            if screen is not None and screen.infeasible:
                metrics.counter("engine.pre_screen_rejects").inc()
                raise SizingError(
                    f"{self.circuit.name}: spec {spec.data:.1f} ps provably "
                    f"infeasible before GP — {screen.summary()}"
                )
        prune_result = self._extract(prune)
        stats = prune_result.stats
        metrics.gauge("paths.initial").set(stats.initial)
        metrics.gauge("paths.final").set(stats.final)
        log.debug(
            "%s: %d raw paths -> %d after pruning (%.0fx)",
            self.circuit.name, stats.initial, stats.final,
            stats.reduction_factor if stats.final else 0.0,
        )

        generator = ConstraintGenerator(
            self.circuit, self.library, spec, otb_borrow=self.otb_borrow
        )
        slope_map: Dict[str, float] = {}
        multipliers: Dict[str, float] = {}
        env: Optional[Dict[str, float]] = dict(initial) if initial else None
        history: List[IterationRecord] = []
        with trace.span("constraint_generation") as gen_span:
            constraints = generator.generate(prune_result.paths, slope_map)
            gen_span.set_attrs(
                timing=len(constraints.timing),
                slopes=len(constraints.slopes),
                noise=len(constraints.noise),
            )
        if not constraints.timing:
            raise SizingError(
                f"{self.circuit.name}: no timing constraints were generated"
            )

        cache_mode = ""
        self._cache_key = None
        self._cache_hit_runtime = 0.0
        if self.cache is not None:
            self._cache_key = key = self.cache_key(spec, tolerance)
            entry = self.cache.get(key.key)
            if entry is not None:
                admitted = self._admit_certified(entry, key, tolerance)
                if admitted is not None:
                    cert_env, cert_realized, cert_worst = admitted
                    self.cache.stats.exact_hits += 1
                    self.cache.stats.cert_hits += 1
                    metrics.counter("cache.cert_hits").inc()
                    self._cache_hit_runtime = float(
                        entry.get("runtime_s", 0.0)
                    )
                    trace.add_attrs(cache_hit="exact-cert")
                    log.info(
                        "%s: cache hit admitted on solution certificate "
                        "(residual %.2f ps), skipping GP loop and STA "
                        "re-verify",
                        self.circuit.name, cert_worst,
                    )
                    resolved = self.circuit.size_table.resolve(cert_env)
                    return SizingResult(
                        circuit_name=self.circuit.name,
                        widths=dict(cert_env),
                        resolved=resolved,
                        converged=True,
                        iterations=0,
                        area=self.circuit.total_width(resolved),
                        clock_load=self.circuit.clock_load_width(resolved),
                        worst_violation=max(0.0, cert_worst),
                        realized=cert_realized,
                        specs={c.name: c.spec for c in constraints.timing},
                        history=[],
                        prune_stats=prune_result.stats,
                        cache_hit="exact-cert",
                    )
                with trace.span("cache_verify", key=key.key[:12]):
                    verified = self._verify_cached(
                        entry, spec, tolerance, constraints
                    )
                if verified is not None:
                    hit_env, hit_realized, hit_worst, hit_name = verified
                    self.cache.stats.exact_hits += 1
                    metrics.counter("cache.exact_hits").inc()
                    self._cache_hit_runtime = float(
                        entry.get("runtime_s", 0.0)
                    )
                    trace.add_attrs(cache_hit="exact")
                    log.info(
                        "%s: cache hit verified (residual %.2f ps), "
                        "skipping GP loop",
                        self.circuit.name, hit_worst,
                    )
                    resolved = self.circuit.size_table.resolve(hit_env)
                    return SizingResult(
                        circuit_name=self.circuit.name,
                        widths=dict(hit_env),
                        resolved=resolved,
                        converged=True,
                        iterations=0,
                        area=self.circuit.total_width(resolved),
                        clock_load=self.circuit.clock_load_width(resolved),
                        worst_violation=max(0.0, hit_worst),
                        realized=hit_realized,
                        specs={c.name: c.spec for c in constraints.timing},
                        history=[],
                        prune_stats=prune_result.stats,
                        cache_hit="exact",
                    )
                self.cache.stats.verify_failures += 1
                metrics.counter("cache.verify_failures").inc()
                log.warning(
                    "%s: cached sizing failed STA re-verification; "
                    "re-solving from scratch",
                    self.circuit.name,
                )
            if env is None:
                near = self.cache.nearest(
                    key.circuit_fp, key.context_fp, spec.data
                )
                if near is not None:
                    cache_mode = "warm"
                    # Tolerant conversion: the GP's _initial_point drops
                    # anything unusable, so a partly-bad cached env still
                    # warm-starts with whatever survives.
                    env = {}
                    for name, value in dict(near.get("env", {})).items():
                        try:
                            env[str(name)] = float(value)
                        except (TypeError, ValueError):
                            continue
                    self.cache.stats.warm_hits += 1
                    metrics.counter("cache.warm_hits").inc()
                    trace.add_attrs(cache_hit="warm")
                    log.debug(
                        "%s: warm-starting GP from cached env for spec "
                        "%.1f ps",
                        self.circuit.name, float(near.get("spec_data", 0.0)),
                    )
                else:
                    self.cache.stats.misses += 1
                    metrics.counter("cache.misses").inc()
            else:
                self.cache.stats.misses += 1
                metrics.counter("cache.misses").inc()

        # GP pre-solve gate: fail fast on malformed or trivially-infeasible
        # programs instead of burning solver iterations on them.
        gp_lint = self._lint_gp(constraints)
        for diag in gp_lint.warnings:
            log.debug("gp lint %s: %s", self.circuit.name, diag.format())
        if not gp_lint.ok:
            metrics.counter("engine.gp_lint_failures").inc()
            details = "; ".join(d.format() for d in gp_lint.errors[:3])
            more = len(gp_lint.errors) - 3
            if more > 0:
                details += f" (+{more} more)"
            raise SizingError(
                f"{self.circuit.name}: GP pre-solve lint failed: {details}"
            )

        realized: Dict[str, float] = {}
        worst_violation = math.inf
        worst_name = ""
        converged = False
        damping = 1.0
        gp_fallbacks = 0

        def record_iteration(record: IterationRecord) -> None:
            history.append(record)
            trace.event(
                "iteration_record",
                iteration=record.iteration,
                gp_status=record.gp_status,
                gp_objective=record.gp_objective,
                residual=record.worst_violation,
                worst_constraint=record.worst_constraint,
            )
            metrics.counter("engine.iterations").inc()
            if math.isfinite(record.worst_violation):
                metrics.histogram("engine.residual_ps").observe(
                    record.worst_violation
                )

        for iteration in range(max_outer_iterations):
            with trace.span("iteration", iteration=iteration) as iter_span:
                gp = self._build_gp(constraints, multipliers)
                try:
                    with trace.span("gp_solve", method=self.gp_method) as gs:
                        solution = gp.solve(
                            initial=env or self.circuit.size_table.default_env(),
                            method=self.gp_method,
                        )
                        gs.set_attrs(
                            status=solution.status,
                            solver_iterations=solution.iterations,
                        )
                except GPInfeasibleError as exc:
                    if iteration == 0:
                        raise SizingError(
                            f"{self.circuit.name}: constraints infeasible at spec "
                            f"{spec.data:.1f} ps ({exc})"
                        ) from exc
                    # A retargeted budget over-tightened: halve the mismatch
                    # correction and try again.
                    gp_fallbacks += 1
                    metrics.counter("engine.gp_fallbacks").inc()
                    log.info(
                        "%s iteration %d: retargeted GP infeasible, "
                        "halving mismatch correction",
                        self.circuit.name, iteration,
                    )
                    damping *= 0.5
                    multipliers = {
                        name: 1.0 - (1.0 - mult) * 0.5
                        for name, mult in multipliers.items()
                    }
                    record_iteration(
                        IterationRecord(
                            iteration=iteration,
                            gp_status="infeasible-retarget",
                            gp_objective=float("nan"),
                            worst_violation=worst_violation,
                            worst_constraint=worst_name,
                        )
                    )
                    iter_span.set_attrs(gp_status="infeasible-retarget")
                    continue
                if solution.status == "infeasible" and iteration == 0:
                    raise SizingError(
                        f"{self.circuit.name}: constraints infeasible at spec "
                        f"{spec.data:.1f} ps (GP reported {solution.message})"
                    )
                env = solution.env
                if solution.status != "infeasible":
                    # Back inside the feasible region: restore full mismatch
                    # correction so one bad retarget doesn't slow every
                    # remaining iteration.
                    damping = 1.0

                with trace.span("sta"):
                    report = self.analyzer.analyze(
                        env, input_slope=spec.input_slope
                    )
                slope_map = self._slope_map(report)

                realized = {}
                worst_violation = -math.inf
                worst_name = ""
                with trace.span(
                    "measure_paths", constraints=len(constraints.timing)
                ):
                    for constraint in constraints.timing:
                        measured = self.analyzer.path_delay(
                            constraint.hops,
                            env,
                            input_slope=spec.input_slope,
                            net_slopes=slope_map,
                        )
                        realized[constraint.name] = measured
                        violation = measured - constraint.spec
                        if violation > worst_violation:
                            worst_violation = violation
                            worst_name = constraint.name

                record_iteration(
                    IterationRecord(
                        iteration=iteration,
                        gp_status=solution.status,
                        gp_objective=solution.objective,
                        worst_violation=worst_violation,
                        worst_constraint=worst_name,
                    )
                )
                iter_span.set_attrs(
                    gp_status=solution.status,
                    residual=round(worst_violation, 4),
                    worst_constraint=worst_name,
                )

                if worst_violation <= tolerance:
                    converged = True
                    break
                if (
                    len(history) >= 2
                    and history[-2].gp_status == "optimal"
                    and abs(history[-2].worst_violation - worst_violation) < 0.1
                ):
                    # Stalled at a floor the models agree on: the spec is not
                    # reachable for this topology; report honestly.
                    log.info(
                        "%s iteration %d: stalled at residual %.2f ps, "
                        "spec unreachable for this topology",
                        self.circuit.name, iteration, worst_violation,
                    )
                    break

                multipliers = self._retarget(
                    constraints, realized, env, damping
                )

        resolved = self.circuit.size_table.resolve(env)
        return SizingResult(
            circuit_name=self.circuit.name,
            widths=dict(env),
            resolved=resolved,
            converged=converged,
            iterations=len(history),
            area=self.circuit.total_width(resolved),
            clock_load=self.circuit.clock_load_width(resolved),
            worst_violation=max(0.0, worst_violation),
            realized=realized,
            specs={c.name: c.spec for c in constraints.timing},
            history=history,
            prune_stats=prune_result.stats,
            gp_fallback_count=gp_fallbacks,
            cache_hit=cache_mode,
        )

    # -- helpers -----------------------------------------------------------------

    def _verify_cached(
        self,
        entry: Mapping[str, object],
        spec: DelaySpec,
        tolerance: float,
        constraints: ConstraintSet,
    ) -> Optional[Tuple[Dict[str, float], Dict[str, float], float, str]]:
        """Re-verify a cached env against this run's own STA and constraint
        set (the cache is an accelerator, never an oracle).

        The check is the engine's own convergence criterion: every timing
        constraint's realized delay within ``tolerance`` of its spec, measured
        with true slope propagation.  Returns ``(env, realized, worst
        violation, worst constraint)`` on success, ``None`` on any mismatch —
        malformed env, missing free labels, or a residual over tolerance.
        """
        free = set(self.circuit.size_table.free_names())
        env: Dict[str, float] = {}
        for name, value in dict(entry.get("env", {})).items():
            try:
                width = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return None
            if not math.isfinite(width) or width <= 0.0:
                return None
            env[str(name)] = width
        if not free.issubset(env):
            return None
        env = {name: env[name] for name in sorted(free)}
        report = self.analyzer.analyze(env, input_slope=spec.input_slope)
        slope_map = self._slope_map(report)
        realized: Dict[str, float] = {}
        worst_violation = -math.inf
        worst_name = ""
        for constraint in constraints.timing:
            measured = self.analyzer.path_delay(
                constraint.hops,
                env,
                input_slope=spec.input_slope,
                net_slopes=slope_map,
            )
            realized[constraint.name] = measured
            violation = measured - constraint.spec
            if violation > worst_violation:
                worst_violation = violation
                worst_name = constraint.name
        if worst_violation > tolerance:
            return None
        return env, realized, worst_violation, worst_name

    def _admit_certified(
        self,
        entry: Mapping[str, object],
        key: CacheKey,
        tolerance: float,
    ) -> Optional[Tuple[Dict[str, float], Dict[str, float], float]]:
        """Try to admit an exact cache hit on a verified solution certificate
        instead of the full STA re-run (:meth:`_verify_cached`).

        Looks up the ``smart-solution-certificate/1`` record stored under the
        same content address as the cache entry and re-checks its bindings at
        lookup time via :func:`repro.lint.solution.check_certificate`: key,
        widths digest against the entry's env, ``ok`` flag, residual within
        tolerance, and freshness against this circuit's live facet
        fingerprints.  Returns ``(env, realized, worst residual)`` on an
        admissible certificate, ``None`` otherwise — absent store, absent or
        stale certificate, or any failed binding — in which case the caller
        falls back to the STA path.  Certificate admission is strictly an
        accelerator: it can only skip work the certificate already proved.
        """
        cert_store = getattr(self.cache, "certificates", None)
        if cert_store is None:
            return None
        try:
            from ..lint.solution.certificate import check_certificate
            from ..netlist.fingerprint import facet_fingerprints
        except ImportError:  # pragma: no cover - partial-init bootstrap
            return None
        cert = cert_store.get(key.key)
        if cert is None:
            return None
        raw_env = entry.get("env")
        if not isinstance(raw_env, Mapping):
            return None
        ok, reason = check_certificate(
            cert,
            key=key.key,
            env=raw_env,
            tolerance=tolerance,
            facets=facet_fingerprints(self.circuit),
        )
        if not ok:
            log.info(
                "%s: solution certificate rejected (%s); falling back to "
                "STA re-verify", self.circuit.name, reason,
            )
            metrics.counter("cache.cert_rejects").inc()
            return None
        free = set(self.circuit.size_table.free_names())
        env: Dict[str, float] = {}
        for name, value in raw_env.items():
            try:
                width = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return None
            if not math.isfinite(width) or width <= 0.0:
                return None
            env[str(name)] = width
        if not free.issubset(env):
            return None
        env = {name: env[name] for name in sorted(free)}
        realized = {
            str(name): float(value)
            for name, value in dict(cert.get("realized", {})).items()
        }
        worst = float(cert.get("worst_residual_ps", 0.0))
        return env, realized, worst

    def _build_gp(
        self, constraints: ConstraintSet, multipliers: Mapping[str, float]
    ) -> GeometricProgram:
        gp = GeometricProgram(self.objective_posynomial())
        for constraint in constraints.timing:
            budget = constraint.spec * multipliers.get(constraint.name, 1.0)
            gp.add_upper_bound(constraint.delay, budget, constraint.name)
        for slope in constraints.slopes:
            gp.add_upper_bound(slope.slope, slope.limit, slope.name)
        for noise in constraints.noise:
            gp.add_inequality(noise.expr, noise.name)
        for size_var in self.circuit.size_table:
            if size_var.free:
                gp.set_bounds(size_var.name, size_var.lower, size_var.upper)
        return gp

    def _slope_map(self, report) -> Dict[Tuple[str, Transition], float]:
        """Worst measured slope per (net, transition) — keyed by transition
        so that e.g. a lazy precharge edge cannot poison the evaluate edge of
        the same net."""
        return {
            key: event.slope for key, event in report.arrivals.items()
        }

    def _retarget(
        self,
        constraints: ConstraintSet,
        realized: Mapping[str, float],
        env: Mapping[str, float],
        damping: float,
    ) -> Dict[str, float]:
        """The "create new delay specification" box.

        With slope-refreshed models, the GP prediction and the STA measurement
        of a path differ only by residual model error ``delta``; the next GP
        round gets budget ``spec - damping*delta`` so that meeting the model
        budget means meeting the true spec.  Multipliers are recomputed fresh
        each iteration (not accumulated) because the constraint set itself is
        regenerated with the new slopes.
        """
        multipliers: Dict[str, float] = {}
        for constraint in constraints.timing:
            measured = realized.get(constraint.name)
            if measured is None or measured <= 0:
                continue
            predicted = constraint.delay.evaluate(env)
            delta = measured - predicted
            if abs(delta) < 1e-9:
                continue
            target = constraint.spec - damping * delta
            mult = target / constraint.spec
            multipliers[constraint.name] = min(1.5, max(0.3, mult))
        return multipliers
