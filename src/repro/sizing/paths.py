"""Automatic path extraction (the "Automatic Path Extraction" box of Figure 4).

SMART specifies timing constraints "on the topological paths through the
network" (Section 5.2).  This module enumerates those paths over the stage
graph: a *structural path* starts at a source net (primary input or clock),
steps through ``(stage, input pin)`` hops, and ends at a primary output or an
unloaded net.  Constraint generation later expands each structural path into
rise/fall (and precharge/evaluate, data/control) transition constraints per
Section 5.3.

A combinational circuit can have an enormous path count — the paper measures
>32,000 on a 64-bit adder — so extraction supports both full enumeration
(with a safety cap) and counting via dynamic programming without
materialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..netlist.circuit import Circuit
from ..netlist.nets import NetKind, Pin, PinClass
from ..obs import metrics, trace


class PathExplosionError(Exception):
    """Raised when enumeration would exceed the configured cap."""


@dataclass(frozen=True)
class PathStep:
    """One hop: entering ``stage_name`` through ``pin_name``."""

    stage_name: str
    pin_name: str


@dataclass(frozen=True)
class StructuralPath:
    """A topological path from a source net through stages to an end net."""

    start_net: str
    steps: Tuple[PathStep, ...]
    end_net: str

    def __len__(self) -> int:
        return len(self.steps)

    def stages(self, circuit: Circuit):
        return [circuit.stage(s.stage_name) for s in self.steps]

    def pins(self, circuit: Circuit) -> List[Pin]:
        return [
            circuit.stage(s.stage_name).pin(s.pin_name) for s in self.steps
        ]

    def enters_via_select(self, circuit: Circuit) -> bool:
        return any(p.pin_class is PinClass.SELECT for p in self.pins(circuit))

    def starts_at_clock(self, circuit: Circuit) -> bool:
        return circuit.net(self.start_net).kind is NetKind.CLOCK


class PathExtractor:
    """Enumerates/counts structural paths of a circuit."""

    def __init__(self, circuit: Circuit, max_paths: int = 2_000_000):
        self.circuit = circuit
        self.max_paths = max_paths

    # -- sources and sinks -----------------------------------------------------

    def source_nets(self, include_clock: bool = True) -> List[str]:
        sources = list(self.circuit.primary_inputs)
        if include_clock:
            sources.extend(
                c for c in self.circuit.clock_nets() if c not in sources
            )
        return sources

    def _is_sink(self, net_name: str) -> bool:
        if net_name in self.circuit.primary_outputs:
            return True
        return not self.circuit.fanout_of(net_name)

    # -- enumeration ---------------------------------------------------------

    def extract(self, include_clock: bool = True) -> List[StructuralPath]:
        """All structural paths (raises :class:`PathExplosionError` past the
        cap — callers wanting just the size should use :meth:`count`)."""
        with trace.span("extract_enumerate") as sp:
            paths = []
            for path in self.iter_paths(include_clock=include_clock):
                paths.append(path)
                if len(paths) > self.max_paths:
                    raise PathExplosionError(
                        f"{self.circuit.name}: more than {self.max_paths} paths"
                    )
            sp.set_attrs(paths=len(paths))
            metrics.counter("paths.enumerated").inc(len(paths))
        return paths

    def iter_paths(self, include_clock: bool = True) -> Iterator[StructuralPath]:
        for source in self.source_nets(include_clock):
            yield from self._walk(source, source, ())

    def extract_representative(self, include_clock: bool = True) -> List[StructuralPath]:
        """Enumerate only *representative* paths by applying the Section-5.2
        reductions during extraction instead of after it.

        Nets are condensed into *regularity classes* (same driver kind +
        size-label signature); each class is represented by its maximum-fanout
        member (fanout dominance, on the representative's real loading), and
        the distinct downstream continuations of a class are computed once and
        shared (regularity merging).  Within a stage, FAST pins are skipped
        when a SLOW pin of the same class exists (pin precedence), and
        equivalent pins of one stage (same class/speed — the model's delay
        does not depend on leg position) collapse to one.

        For wide regular macros (the 64-bit adder) this yields roughly one
        path per distinct class sequence — the paper's "small set of
        meaningful paths" — while the raw space is combinatorial.
        """
        from ..netlist.nets import PinSpeed
        from .pruning import _stage_key  # regularity identity

        circuit = self.circuit

        def net_class(net_name: str) -> Tuple:
            driver = circuit.driver_of(net_name)
            if driver is not None:
                return ("drv",) + _stage_key(circuit, driver)
            net = circuit.net(net_name)
            if net.kind is NetKind.CLOCK:
                return ("clk",)
            profile = tuple(
                sorted(
                    _stage_key(circuit, stage) + (pin.pin_class.value,)
                    for stage, pin in circuit.fanout_of(net_name)
                )
            )
            return ("in", profile)

        # Representative (max fanout) net per class.
        rep: Dict[Tuple, str] = {}
        for net_name in circuit.nets:
            if circuit.net(net_name).kind in (NetKind.SUPPLY, NetKind.GROUND):
                continue
            cls = net_class(net_name)
            best = rep.get(cls)
            if best is None or len(circuit.fanout_of(net_name)) > len(
                circuit.fanout_of(best)
            ):
                rep[cls] = net_name

        memo: Dict[Tuple, List[Tuple[Tuple[PathStep, ...], str]]] = {}
        in_progress: set = set()

        def suffixes(cls: Tuple) -> List[Tuple[Tuple[PathStep, ...], str]]:
            if cls in memo:
                return memo[cls]
            if cls in in_progress:
                return []  # class-level cycle artifact; the stage graph is acyclic
            in_progress.add(cls)
            net = rep[cls]
            result: List[Tuple[Tuple[PathStep, ...], str]] = []
            fanout = circuit.fanout_of(net)
            if self._is_sink(net) or net in circuit.primary_outputs:
                result.append(((), net))
            taken = set()
            for stage, pin in fanout:
                if pin.speed is PinSpeed.FAST and any(
                    p.speed is PinSpeed.SLOW and p.pin_class is pin.pin_class
                    for p in stage.inputs
                ):
                    continue
                branch_key = _stage_key(circuit, stage) + (
                    pin.pin_class.value,
                    getattr(pin.speed, "value", None),
                )
                if branch_key in taken:
                    continue
                taken.add(branch_key)
                step = PathStep(stage.name, pin.name)
                for tail, end in suffixes(net_class(stage.output.name)):
                    result.append(((step,) + tail, end))
            in_progress.discard(cls)
            memo[cls] = result
            return result

        with trace.span("extract_representative") as sp:
            paths: List[StructuralPath] = []
            seen_classes = set()
            for source in self.source_nets(include_clock):
                cls = net_class(source)
                if cls in seen_classes:
                    continue
                seen_classes.add(cls)
                start = rep[cls]
                for steps, end in suffixes(cls):
                    if steps:
                        paths.append(
                            StructuralPath(
                                start_net=start, steps=steps, end_net=end
                            )
                        )
            sp.set_attrs(paths=len(paths), classes=len(rep))
            metrics.counter("paths.representative").inc(len(paths))
        return paths

    def _walk(
        self, start: str, net: str, steps: Tuple[PathStep, ...]
    ) -> Iterator[StructuralPath]:
        fanout = self.circuit.fanout_of(net)
        terminal = self._is_sink(net)
        if terminal and steps:
            yield StructuralPath(start_net=start, steps=steps, end_net=net)
        if net in self.circuit.primary_outputs and not terminal and steps:
            # Outputs that also feed other logic still end a constraint path.
            yield StructuralPath(start_net=start, steps=steps, end_net=net)
        for stage, pin in fanout:
            step = PathStep(stage.name, pin.name)
            yield from self._walk(start, stage.output.name, steps + (step,))

    # -- counting without materialization ----------------------------------------

    def count(self, include_clock: bool = True) -> int:
        """Path count by DP over the (acyclic) stage graph."""
        memo: Dict[str, int] = {}

        def paths_from(net: str) -> int:
            if net in memo:
                return memo[net]
            fanout = self.circuit.fanout_of(net)
            total = 1 if self._is_sink(net) else 0
            if net in self.circuit.primary_outputs and fanout:
                total += 1
            for stage, _pin in fanout:
                total += paths_from(stage.output.name)
            memo[net] = total
            return total

        count = 0
        for source in self.source_nets(include_clock):
            # Source itself contributes only paths with >= 1 step.
            for stage, _pin in self.circuit.fanout_of(source):
                count += paths_from(stage.output.name)
        return count


def longest_path_length(circuit: Circuit) -> int:
    """Depth of the circuit in stages (for diagnostics and budgets)."""
    depth: Dict[str, int] = {}
    best = 0
    for stage in circuit.topological_stages():
        d = 1 + max(
            (depth.get(pin.net.name, 0) for pin in stage.inputs), default=0
        )
        depth[stage.output.name] = max(depth.get(stage.output.name, 0), d)
        best = max(best, d)
    return best
