"""The SMART sizer: GP solver, path extraction/pruning, constraint
generation, the Figure-4 refinement engine, and OTB analysis."""

from .constraints import (
    ConstraintGenerator,
    ConstraintSet,
    DelaySpec,
    NoiseConstraint,
    SlopeConstraint,
    TimingConstraint,
)
from .collapse import CollapsedSizingResult, RegularityCollapsedSizer
from .engine import IterationRecord, SizingError, SizingResult, SmartSizer
from .gp import (
    GeometricProgram,
    GPConstraint,
    GPError,
    GPInfeasibleError,
    GPSolution,
)
from .otb import BorrowRecord, OTBReport, analyze_borrowing
from .tilos import TilosResult, TilosSizer
from .paths import (
    PathExplosionError,
    PathExtractor,
    PathStep,
    StructuralPath,
    longest_path_length,
)
from .pruning import (
    DropWitness,
    PruneResult,
    PruneStats,
    PruningCertificate,
    dominant_stages,
    path_signature,
    prune_fanout_dominance,
    prune_paths,
    prune_pin_precedence,
    prune_regularity,
)

__all__ = [
    "GeometricProgram",
    "GPConstraint",
    "GPSolution",
    "GPError",
    "GPInfeasibleError",
    "PathExtractor",
    "PathStep",
    "StructuralPath",
    "PathExplosionError",
    "longest_path_length",
    "prune_paths",
    "prune_pin_precedence",
    "prune_fanout_dominance",
    "prune_regularity",
    "path_signature",
    "dominant_stages",
    "PruneResult",
    "PruneStats",
    "PruningCertificate",
    "DropWitness",
    "ConstraintGenerator",
    "ConstraintSet",
    "DelaySpec",
    "TimingConstraint",
    "SlopeConstraint",
    "NoiseConstraint",
    "SmartSizer",
    "SizingResult",
    "SizingError",
    "RegularityCollapsedSizer",
    "CollapsedSizingResult",
    "IterationRecord",
    "analyze_borrowing",
    "OTBReport",
    "BorrowRecord",
    "TilosSizer",
    "TilosResult",
]
