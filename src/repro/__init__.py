"""SMART — Smart Macro Design Advisor.

A from-scratch reproduction of *"Macro-Driven Circuit Design Methodology for
High-Performance Datapaths"* (M. Nemani, V. Tiwari, DAC 2000): a macro
topology database, a posynomial/geometric-programming transistor sizer with
path pruning, and the advisory flow that explores topologies against designer
constraints — plus the simulation substrates (static timing, switch-level
transient, power estimation) the original relied on commercial tools for.

Quickstart::

    from repro import SmartAdvisor, MacroSpec, DesignConstraints

    advisor = SmartAdvisor()
    report = advisor.advise(
        MacroSpec("mux", width=8, output_load=30.0),
        DesignConstraints(delay=120.0, cost="area"),
    )
    print(report.render())
"""

from .core import (
    AdvisorReport,
    CandidateResult,
    DesignConstraints,
    SmartAdvisor,
    TradeoffCurve,
    TradeoffPoint,
    area_delay_curve,
    explore_topologies,
)
from . import obs
from .cache import SizingCache
from .macros import MacroDatabase, MacroGenerator, MacroSpec, default_database
from .models import GENERIC_130, GENERIC_180, ModelLibrary, Technology
from .parallel import SweepPoint, SweepResult, build_grid, run_sweep
from .sizing import DelaySpec, SizingError, SizingResult, SmartSizer

from ._version import __version__  # noqa: E402

__all__ = [
    "obs",
    "SizingCache",
    "SweepPoint",
    "SweepResult",
    "build_grid",
    "run_sweep",
    "SmartAdvisor",
    "AdvisorReport",
    "CandidateResult",
    "DesignConstraints",
    "TradeoffCurve",
    "TradeoffPoint",
    "area_delay_curve",
    "explore_topologies",
    "MacroSpec",
    "MacroGenerator",
    "MacroDatabase",
    "default_database",
    "Technology",
    "GENERIC_180",
    "GENERIC_130",
    "ModelLibrary",
    "SmartSizer",
    "SizingResult",
    "SizingError",
    "DelaySpec",
    "__version__",
]
