"""Spec-grid sweeps: one advisor run per (macro, width, delay) point.

A sweep answers the designer's real question — "across my datapath's macro
instances, which topology wins where, and at what cost?" — by fanning a
grid of specs across the candidate-sizing process pool with a shared
sizing cache.  Within one sweep the same topology is sized at many delay
targets, so near-hit warm starts kick in even on a cold cache; a second
sweep against the same backing file is almost entirely exact hits.

Artifact format ``smart-sweep/1`` (see :meth:`SweepResult.to_json`).
"""

from __future__ import annotations

import concurrent.futures
import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cache.store import CacheStats, SizingCache
from ..core.constraints import DesignConstraints
from ..macros.base import MacroSpec
from ..obs import metrics, perf, trace
from ..obs.log import get_logger
from ..obs.trace import EventRecord, SpanRecord
from .pool import _WORKER, _init_worker, _mp_context

log = get_logger(__name__)

__all__ = [
    "PointResult",
    "SweepPoint",
    "SweepResult",
    "build_grid",
    "run_sweep",
]

FORMAT = "smart-sweep/1"


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a macro instance and its delay budget."""

    macro: str
    width: int
    delay: float


def build_grid(
    macros: Sequence[str],
    widths: Sequence[int],
    delays: Sequence[float],
) -> List[SweepPoint]:
    """The full cross product, in deterministic (macro, width, delay) order."""
    return [
        SweepPoint(macro=macro, width=int(width), delay=float(delay))
        for macro in macros
        for width in widths
        for delay in delays
    ]


@dataclass(frozen=True)
class _SweepTask:
    point: SweepPoint
    output_load: float
    input_slope: float
    cost: str
    tolerance: float


@dataclass
class PointResult:
    """One grid point's advisor outcome, flattened for the artifact."""

    macro: str
    width: int
    delay: float
    best_topology: Optional[str] = None
    best_scalar: Optional[float] = None
    best_area: Optional[float] = None
    best_clock_load: Optional[float] = None
    best_power: Optional[float] = None
    feasible: int = 0
    candidates: int = 0
    runtime_s: float = 0.0
    error: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "macro": self.macro,
            "width": self.width,
            "delay_ps": self.delay,
            "best": self.best_topology,
            "scalar": self.best_scalar,
            "area": self.best_area,
            "clock_load": self.best_clock_load,
            "power": self.best_power,
            "feasible": self.feasible,
            "candidates": self.candidates,
            "runtime_s": round(self.runtime_s, 6),
            "error": self.error,
        }


@dataclass
class _PointOutcome:
    result: Optional[PointResult] = None
    spans: List[SpanRecord] = field(default_factory=list)
    events: List[EventRecord] = field(default_factory=list)
    cache_entries: List[dict] = field(default_factory=list)
    cache_stats: Dict[str, float] = field(default_factory=dict)
    error: str = ""
    # Wall-clock anchor of the worker tracer's perf-counter origin (see
    # CandidateOutcome.epoch_unix).
    epoch_unix: float = 0.0


@dataclass
class SweepResult:
    """Everything a sweep produced, plus the performance accounting."""

    points: List[PointResult]
    metric: str
    workers: int
    wall_s: float
    cache_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def solve_s(self) -> float:
        """Sum of per-point advisor runtimes (the sequential-equivalent
        cost; ``wall_s`` beats this when the pool overlaps points)."""
        return sum(p.runtime_s for p in self.points)

    @property
    def complete(self) -> bool:
        """True when every point found a feasible best and none errored."""
        return all(p.best_topology and not p.error for p in self.points)

    def to_json(self) -> Dict[str, object]:
        return {
            "format": FORMAT,
            "created_unix": time.time(),
            "metric": self.metric,
            "workers": self.workers,
            "points": [p.to_json() for p in self.points],
            "wall_s": round(self.wall_s, 6),
            "solve_s": round(self.solve_s, 6),
            "cache": dict(self.cache_stats),
        }

    def render(self) -> str:
        lines = [
            f"sweep: {len(self.points)} points, metric={self.metric}, "
            f"workers={self.workers}",
            f"{'macro':<8} {'width':>5} {'delay':>8} {'best':<30} "
            f"{'scalar':>10} {'feas':>5} {'time s':>8}",
        ]
        for p in self.points:
            if p.best_topology:
                lines.append(
                    f"{p.macro:<8} {p.width:>5d} {p.delay:>8.1f} "
                    f"{p.best_topology:<30} {p.best_scalar:>10.1f} "
                    f"{p.feasible:>5d} {p.runtime_s:>8.3f}"
                )
            else:
                reason = p.error.strip().splitlines()[-1] if p.error else (
                    "no feasible topology"
                )
                lines.append(
                    f"{p.macro:<8} {p.width:>5d} {p.delay:>8.1f} "
                    f"{'-':<30} {'-':>10} {p.feasible:>5d} "
                    f"{p.runtime_s:>8.3f}  {reason}"
                )
        lines.append(
            f"wall {self.wall_s:.3f} s vs {self.solve_s:.3f} s of solve time"
        )
        if self.cache_stats:
            lines.append(
                "cache: "
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(self.cache_stats.items())
                )
            )
        return "\n".join(lines)


def _summarize(task: _SweepTask, report, runtime_s: float) -> PointResult:
    point = task.point
    result = PointResult(
        macro=point.macro,
        width=point.width,
        delay=point.delay,
        feasible=len(report.feasible),
        candidates=len(report.candidates),
        runtime_s=runtime_s,
    )
    best = report.best
    if best is not None and best.cost is not None:
        result.best_topology = best.topology
        result.best_scalar = best.cost.scalar
        result.best_area = best.cost.area
        result.best_clock_load = best.cost.clock_load
        result.best_power = best.cost.power
    return result


def _advise_point(advisor, task: _SweepTask):
    spec = MacroSpec(
        task.point.macro, task.point.width, output_load=task.output_load
    )
    constraints = DesignConstraints(
        delay=task.point.delay,
        input_slope=task.input_slope,
        cost=task.cost,
    )
    return advisor.advise(
        spec, constraints, sizing_tolerance=task.tolerance, workers=1
    )


def _run_point(task: _SweepTask) -> _PointOutcome:
    advisor = _WORKER["advisor"]
    outcome = _PointOutcome()
    try:
        t0 = time.perf_counter()
        with trace.tracing_scope() as tracer:
            if advisor.cache is not None:
                advisor.cache.stats = CacheStats()
            report = _advise_point(advisor, task)
        outcome.result = _summarize(task, report, time.perf_counter() - t0)
        outcome.spans = list(tracer.spans)
        outcome.events = list(tracer.events)
        outcome.epoch_unix = tracer.epoch_unix
        if advisor.cache is not None:
            outcome.cache_entries = advisor.cache.drain_new()
            outcome.cache_stats = advisor.cache.stats.as_dict()
    except Exception:
        outcome.error = traceback.format_exc()
    return outcome


def run_sweep(
    points: Sequence[SweepPoint],
    *,
    workers: int = 1,
    cache: Optional[SizingCache] = None,
    database=None,
    tech=None,
    output_load: float = 20.0,
    input_slope: float = 30.0,
    cost: str = "area",
    tolerance: float = 2.0,
) -> SweepResult:
    """Advise every grid point; parallel across points when ``workers > 1``.

    Each point runs the full Figure-1 flow.  The cache is shared across the
    whole sweep: workers carry a read-only snapshot and the parent merges
    their new entries between collections, so later points hit earlier
    points' results even within a single cold run.
    """
    from ..core.advisor import SmartAdvisor
    from ..macros.registry import default_database
    from ..models.technology import Technology

    database = database or default_database()
    tech = tech or Technology()
    tasks = [
        _SweepTask(
            point=point,
            output_load=output_load,
            input_slope=input_slope,
            cost=cost,
            tolerance=tolerance,
        )
        for point in points
    ]

    t0 = time.perf_counter()
    with trace.span(
        "sweep", points=len(tasks), workers=max(1, workers)
    ) as sweep_span:
        outcomes = None
        if workers > 1 and len(tasks) > 1:
            outcomes = _run_pool(tasks, workers, database, tech, cache)
        if outcomes is None:
            advisor = SmartAdvisor(database=database, tech=tech, cache=cache)
            outcomes = []
            for task in tasks:
                outcome = _PointOutcome()
                try:
                    t_point = time.perf_counter()
                    report = _advise_point(advisor, task)
                    outcome.result = _summarize(
                        task, report, time.perf_counter() - t_point
                    )
                except Exception:
                    outcome.error = traceback.format_exc()
                outcomes.append(outcome)

        results: List[PointResult] = []
        tracer = trace.get_tracer()
        for task, outcome in zip(tasks, outcomes):
            if outcome.spans or outcome.events:
                tracer.graft(
                    outcome.spans,
                    outcome.events,
                    epoch_unix=outcome.epoch_unix or None,
                )
            if cache is not None:
                if outcome.cache_entries:
                    cache.merge_entries(outcome.cache_entries)
                if outcome.cache_stats:
                    cache.stats.absorb(outcome.cache_stats)
            if outcome.result is not None:
                results.append(outcome.result)
            else:
                point = task.point
                first_line = (
                    outcome.error.strip().splitlines()[-1]
                    if outcome.error
                    else "no result returned"
                )
                log.warning(
                    "sweep point %s[%d]@%.0fps failed: %s",
                    point.macro, point.width, point.delay, first_line,
                )
                results.append(
                    PointResult(
                        macro=point.macro,
                        width=point.width,
                        delay=point.delay,
                        error=first_line,
                    )
                )
        wall_s = time.perf_counter() - t0
        sweep_span.set_attrs(
            wall_s=round(wall_s, 4),
            solved=sum(1 for r in results if r.best_topology),
        )

    stats = cache.stats.as_dict() if cache is not None else {}
    metrics.counter("sweep.points").inc(len(results))
    metrics.counter("sweep.points_solved").inc(
        sum(1 for r in results if r.best_topology)
    )
    metrics.histogram("sweep.wall_s").observe(wall_s)
    if cache is not None:
        metrics.counter("sweep.cache_exact_hits").inc(cache.stats.exact_hits)
        metrics.counter("sweep.cache_warm_hits").inc(cache.stats.warm_hits)
        metrics.counter("sweep.cache_misses").inc(cache.stats.misses)
        metrics.histogram("sweep.cache_wall_saved_s").observe(
            cache.stats.wall_saved_s
        )
    result = SweepResult(
        points=results,
        metric=cost,
        workers=max(1, workers),
        wall_s=wall_s,
        cache_stats=stats,
    )
    if perf.get_ledger() is not None:
        tracer = trace.get_tracer()
        subtree = (
            perf.collect_subtree(tracer.spans, sweep_span.span_id)
            if isinstance(tracer, trace.Tracer)
            else []
        )
        inner = [s for s in subtree if s.span_id != sweep_span.span_id]
        perf.record_run(
            "sweep",
            f"{len(results)}pts-{cost}",
            wall_s=wall_s,
            spans=subtree,
            spec_fp=perf.payload_digest(
                [[p.macro, p.width, p.delay] for p in points]
            ),
            cache=stats or None,
            parallel=perf.parallel_rollup(inner, max(1, workers), wall_s),
            extra={
                "points": len(results),
                "solved": sum(1 for r in results if r.best_topology),
            },
        )
    log.info(
        "sweep done: %d/%d points solved in %.2f s wall (%.2f s solve)",
        sum(1 for r in results if r.best_topology), len(results),
        wall_s, result.solve_s,
    )
    return result


def _run_pool(
    tasks: Sequence[_SweepTask],
    workers: int,
    database,
    tech,
    cache: Optional[SizingCache],
) -> Optional[List[_PointOutcome]]:
    try:
        pickle.dumps((database, tech, list(tasks)))
    except Exception as exc:
        log.warning("sweep pool unavailable: not picklable (%s)", exc)
        return None
    seed = cache.entries_snapshot() if cache is not None else None
    outcomes: List[_PointOutcome] = []
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max(1, min(workers, len(tasks))),
            mp_context=_mp_context(),
            initializer=_init_worker,
            initargs=(database, tech, seed),
        ) as pool:
            futures = [pool.submit(_run_point, task) for task in tasks]
            for future in futures:
                try:
                    outcomes.append(future.result())
                except Exception:
                    outcomes.append(
                        _PointOutcome(error=traceback.format_exc())
                    )
    except (OSError, concurrent.futures.process.BrokenProcessPool) as exc:
        log.warning("sweep pool unavailable: %s", exc)
        return None
    return outcomes
