"""Process-pool execution of advisor candidate sizing.

One task per candidate topology; each worker owns a full
:class:`~repro.core.advisor.SmartAdvisor` (built once per worker by the pool
initializer) and runs the same gate pipeline the inline path runs.  The
parent reassembles everything deterministically:

* **ordering** — outcomes are collected in task submission order, so
  ``workers=4`` produces the same candidate list as ``workers=1``;
* **traces** — each worker records its spans/events into a private tracer
  whose records ship back over the pool and are grafted into the parent's
  trace (:meth:`repro.obs.trace.Tracer.graft`);
* **cache** — workers get the parent cache's snapshot read-only
  (``autosync=False``); new entries and hit/miss stats return with each
  outcome and the parent (the single writer) merges and persists them.

``run_candidates`` returns ``None`` instead of raising when the pool cannot
be used at all — unpicklable inputs or a broken pool — and the caller falls
back to inline execution.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import pickle
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..cache.store import CacheStats, SizingCache
from ..core.constraints import DesignConstraints
from ..core.report import CandidateResult
from ..macros.base import MacroSpec
from ..obs import trace
from ..obs.log import get_logger
from ..obs.trace import EventRecord, SpanRecord

log = get_logger(__name__)

__all__ = [
    "CandidateOutcome",
    "CandidateTask",
    "absorb_outcomes",
    "run_candidates",
]


@dataclass(frozen=True)
class CandidateTask:
    """One unit of pool work: size one topology against one spec."""

    topology: str
    spec: MacroSpec
    constraints: DesignConstraints
    tolerance: float = 2.0


@dataclass
class CandidateOutcome:
    """What a worker ships back for one :class:`CandidateTask`."""

    topology: str
    candidate: Optional[CandidateResult] = None
    spans: List[SpanRecord] = field(default_factory=list)
    events: List[EventRecord] = field(default_factory=list)
    cache_entries: List[dict] = field(default_factory=list)
    cache_stats: Dict[str, float] = field(default_factory=dict)
    error: str = ""
    # Wall-clock anchor of the worker tracer's perf-counter origin; lets the
    # parent re-base grafted timestamps onto its own epoch (fork/join skew).
    epoch_unix: float = 0.0


# Worker-process state, populated once by the pool initializer.
_WORKER: Dict[str, Any] = {}


def _init_worker(database, tech, cache_seed: Optional[List[dict]]) -> None:
    from ..core.advisor import SmartAdvisor

    cache = None
    if cache_seed is not None:
        cache = SizingCache(path=None, autosync=False)
        cache.seed(cache_seed)
    _WORKER["advisor"] = SmartAdvisor(
        database=database, tech=tech, cache=cache
    )


def _run_task(task: CandidateTask) -> CandidateOutcome:
    advisor = _WORKER["advisor"]
    outcome = CandidateOutcome(topology=task.topology)
    try:
        with trace.tracing_scope() as tracer:
            if advisor.cache is not None:
                advisor.cache.stats = CacheStats()
            generator = advisor.database.generator(task.topology)
            outcome.candidate = advisor._try_topology(
                generator, task.spec, task.constraints, task.tolerance
            )
        outcome.spans = list(tracer.spans)
        outcome.events = list(tracer.events)
        outcome.epoch_unix = tracer.epoch_unix
        if advisor.cache is not None:
            outcome.cache_entries = advisor.cache.drain_new()
            outcome.cache_stats = advisor.cache.stats.as_dict()
    except Exception:
        outcome.error = traceback.format_exc()
    return outcome


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


def run_candidates(
    tasks: Sequence[CandidateTask],
    *,
    workers: int,
    database,
    tech,
    cache: Optional[SizingCache] = None,
) -> Optional[List[CandidateOutcome]]:
    """Run tasks across a process pool; outcomes in task order.

    Returns ``None`` when pool execution is impossible (unpicklable inputs,
    pool bring-up failure) so the caller can fall back to inline sizing.
    A task whose *worker* fails mid-run still yields an outcome — with
    ``error`` set — so one bad topology cannot sink the batch.
    """
    try:
        pickle.dumps((database, tech, list(tasks)))
    except Exception as exc:
        log.warning("pool unavailable: inputs not picklable (%s)", exc)
        return None

    seed = cache.entries_snapshot() if cache is not None else None
    outcomes: List[CandidateOutcome] = []
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max(1, min(workers, len(tasks))),
            mp_context=_mp_context(),
            initializer=_init_worker,
            initargs=(database, tech, seed),
        ) as pool:
            futures = [pool.submit(_run_task, task) for task in tasks]
            for task, future in zip(tasks, futures):
                try:
                    outcomes.append(future.result())
                except Exception:
                    outcomes.append(
                        CandidateOutcome(
                            topology=task.topology,
                            error=traceback.format_exc(),
                        )
                    )
    except (OSError, concurrent.futures.process.BrokenProcessPool) as exc:
        log.warning("pool unavailable: %s", exc)
        return None
    return outcomes


def absorb_outcomes(
    outcomes: Sequence[CandidateOutcome],
    cache: Optional[SizingCache] = None,
) -> List[CandidateResult]:
    """Fold worker outcomes back into the parent process.

    Grafts each worker's trace under the parent's current span, merges new
    cache entries (the parent is the single writer) and hit/miss stats, and
    returns the candidate list in task order.  A worker error becomes an
    infeasible :class:`CandidateResult` rather than an exception.
    """
    tracer = trace.get_tracer()
    candidates: List[CandidateResult] = []
    for outcome in outcomes:
        if outcome.spans or outcome.events:
            tracer.graft(
                outcome.spans,
                outcome.events,
                epoch_unix=outcome.epoch_unix or None,
            )
        if cache is not None:
            if outcome.cache_entries:
                cache.merge_entries(outcome.cache_entries)
            if outcome.cache_stats:
                cache.stats.absorb(outcome.cache_stats)
        if outcome.candidate is not None:
            candidates.append(outcome.candidate)
        else:
            first_line = (
                outcome.error.strip().splitlines()[-1]
                if outcome.error
                else "no result returned"
            )
            log.warning(
                "worker failed on %s: %s", outcome.topology, first_line
            )
            candidates.append(
                CandidateResult(
                    topology=outcome.topology,
                    description="",
                    feasible=False,
                    reason=f"worker error: {first_line}",
                )
            )
    return candidates
