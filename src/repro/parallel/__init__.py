"""Multi-process execution for the advisor and spec-grid sweeps.

* :mod:`repro.parallel.pool` — per-topology candidate sizing across a
  process pool, with deterministic result ordering, worker-trace grafting,
  and single-writer cache merging.
* :mod:`repro.parallel.sweep` — per-(macro, width, delay) advisor runs over
  a spec grid, sharing one sizing cache across the whole sweep.
"""

from .pool import CandidateOutcome, CandidateTask, absorb_outcomes, run_candidates
from .sweep import PointResult, SweepPoint, SweepResult, build_grid, run_sweep

__all__ = [
    "CandidateOutcome",
    "CandidateTask",
    "PointResult",
    "SweepPoint",
    "SweepResult",
    "absorb_outcomes",
    "build_grid",
    "run_candidates",
    "run_sweep",
]
