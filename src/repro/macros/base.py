"""Macro database infrastructure.

Section 4: the SMART design database holds "many of the frequently used
implementations of various macros", unsized, with designer-chosen size labels
and hierarchy.  Here:

* :class:`MacroSpec` — what the designer asks for (macro type, width, extras);
* :class:`MacroGenerator` — one topology: can it implement a spec, and the
  parameterized unsized schematic it produces;
* :class:`MacroDatabase` — the expandable registry ("whenever a designer comes
  up with an implementation not available in the database, it can be
  incorporated");
* :class:`MacroBuilder` — authoring helper that keeps generator code close to
  schematic-entry granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..models.technology import Technology
from ..netlist.circuit import Circuit
from ..netlist.funcspec import FunctionalSpec
from ..netlist.nets import Net, NetKind, Pin, PinClass, PinSpeed
from ..netlist.stages import Stage, StageKind
from ..netlist.validate import validate_circuit


@dataclass(frozen=True)
class MacroSpec:
    """A designer's request for a macro instance.

    Attributes
    ----------
    macro_type:
        Family name: ``"mux"``, ``"incrementor"``, ``"decrementor"``,
        ``"zero_detect"``, ``"decoder"``, ``"adder"``, ``"comparator"``.
    width:
        Bit width (datapath macros) or input count (muxes).
    output_load:
        External load each output drives, fF.
    params:
        Extra family-specific knobs as a tuple of (key, value) pairs so the
        spec stays hashable.
    """

    macro_type: str
    width: int
    output_load: float = 20.0
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"macro width must be >= 1, got {self.width}")
        if self.output_load < 0:
            raise ValueError("output load must be nonnegative")

    def param(self, key: str, default=None):
        for k, v in self.params:
            if k == key:
                return v
        return default

    def with_params(self, **extra) -> "MacroSpec":
        merged = dict(self.params)
        merged.update(extra)
        return MacroSpec(
            self.macro_type,
            self.width,
            self.output_load,
            tuple(sorted(merged.items())),
        )


class MacroGenerator:
    """One topology in the database.  Subclasses set ``name``/``macro_type``
    and implement :meth:`applicable` + :meth:`build`."""

    #: Unique topology name, e.g. ``"mux/strong_mutex_passgate"``.
    name: str = ""
    #: Macro family this topology implements.
    macro_type: str = ""
    #: One-line description shown in advisor reports.
    description: str = ""

    def applicable(self, spec: MacroSpec) -> bool:
        """Can this topology implement ``spec``?"""
        return spec.macro_type == self.macro_type

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        raise NotImplementedError

    def functional_spec(self, spec: MacroSpec) -> Optional[FunctionalSpec]:
        """The golden function of the macro this generator builds for
        ``spec``, or None when the topology has no reference semantics.

        All topologies of one macro family must return specs with the same
        ``golden`` marker — the switch-level verifier (SVC401) proves each
        of them equivalent to that *single* reference function, which is
        what makes the database's topology choices interchangeable.
        """
        return None

    def generate(self, spec: MacroSpec, tech: Technology) -> Circuit:
        """Build + validate.  All macros come out of the database clean."""
        if not self.applicable(spec):
            raise ValueError(f"{self.name} cannot implement {spec}")
        circuit = self.build(spec, tech)
        circuit.functional_spec = self.functional_spec(spec)
        validate_circuit(circuit).raise_if_failed()
        return circuit


class MacroDatabase:
    """The expandable topology registry."""

    def __init__(self) -> None:
        self._generators: Dict[str, MacroGenerator] = {}

    def register(self, generator: MacroGenerator) -> MacroGenerator:
        if not generator.name or not generator.macro_type:
            raise ValueError("generator needs name and macro_type")
        if generator.name in self._generators:
            raise ValueError(f"duplicate topology name {generator.name}")
        self._generators[generator.name] = generator
        return generator

    def __contains__(self, name: str) -> bool:
        return name in self._generators

    def __len__(self) -> int:
        return len(self._generators)

    def generator(self, name: str) -> MacroGenerator:
        try:
            return self._generators[name]
        except KeyError:
            raise KeyError(
                f"no topology {name!r}; known: {sorted(self._generators)}"
            )

    def topologies(self, macro_type: Optional[str] = None) -> List[MacroGenerator]:
        gens = self._generators.values()
        if macro_type is None:
            return sorted(gens, key=lambda g: g.name)
        return sorted(
            (g for g in gens if g.macro_type == macro_type), key=lambda g: g.name
        )

    def applicable(self, spec: MacroSpec) -> List[MacroGenerator]:
        """Topology choices for a spec (the entry point of Figure 1)."""
        return [g for g in self.topologies(spec.macro_type) if g.applicable(spec)]

    def generate(self, name: str, spec: MacroSpec, tech: Technology) -> Circuit:
        return self.generator(name).generate(spec, tech)


class MacroBuilder:
    """Schematic-entry helper used by the generators.

    Wraps a :class:`Circuit` with size-label declaration and one-liner stage
    constructors so generator code reads like the Figure-2 schematics.
    """

    def __init__(self, name: str, tech: Technology):
        self.circuit = Circuit(name)
        self.tech = tech

    # -- nets ------------------------------------------------------------------

    def input(
        self, name: str, wire_cap: float = 0.0, phase: Optional[str] = None
    ) -> Net:
        net = self.circuit.add_net(name, NetKind.SIGNAL, wire_cap)
        self.circuit.mark_input(name)
        if phase is not None:
            self.circuit.declare_input_phase(name, phase)
        return net

    def output(self, name: str, load: float = 0.0, wire_res: float = 0.0) -> Net:
        self.circuit.add_net(name, NetKind.SIGNAL)
        self.circuit.mark_output(name, external_load=load)
        if wire_res > 0.0:
            old = self.circuit.net(name)
            replacement = Net(
                old.name, old.kind, old.wire_cap, old.external_load, wire_res
            )
            self.circuit.nets[name] = replacement
            self.circuit._rebind_net(replacement)
        return self.circuit.net(name)

    def clock(self, name: str = "clk") -> Net:
        return self.circuit.add_net(name, NetKind.CLOCK)

    def wire(self, name: str, wire_cap: float = 0.0, wire_res: float = 0.0) -> Net:
        net = self.circuit.add_net(name, NetKind.SIGNAL, wire_cap)
        if wire_res > 0.0:
            replacement = Net(net.name, net.kind, net.wire_cap, 0.0, wire_res)
            self.circuit.nets[name] = replacement
            self.circuit._rebind_net(replacement)
            return replacement
        return net

    # -- size labels -------------------------------------------------------------

    def size(
        self,
        label: str,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
        pinned: Optional[float] = None,
        ratio_of: Optional[Tuple[str, float]] = None,
    ) -> str:
        self.circuit.size_table.declare(
            label,
            lower if lower is not None else self.tech.min_width,
            upper if upper is not None else self.tech.max_width,
            pinned,
            ratio_of,
        )
        return label

    # -- stages ---------------------------------------------------------------------

    def _stage(
        self,
        name: str,
        kind: StageKind,
        pins: Sequence[Pin],
        out: Net,
        size_vars: Mapping[str, str],
        params: Optional[Mapping[str, object]] = None,
    ) -> Stage:
        stage = Stage(
            name=name,
            kind=kind,
            inputs=list(pins),
            output=out,
            size_vars=dict(size_vars),
            params=dict(params or {}),
        )
        self.circuit.add_stage(stage)
        return stage

    def inv(
        self,
        name: str,
        data: Net,
        out: Net,
        pull_up: str,
        pull_down: str,
        skew: Optional[str] = None,
    ) -> Stage:
        params = {"skew": skew} if skew else {}
        return self._stage(
            name,
            StageKind.INV,
            [Pin("a", data)],
            out,
            {"pull_up": pull_up, "pull_down": pull_down},
            params,
        )

    def gate(
        self,
        name: str,
        kind: StageKind,
        inputs: Sequence[Net],
        out: Net,
        pull_up: str,
        pull_down: str,
        speeds: Optional[Sequence[Optional[PinSpeed]]] = None,
        params: Optional[Mapping[str, object]] = None,
    ) -> Stage:
        """A static NAND/NOR/AOI/XOR stage."""
        speeds = speeds or [None] * len(inputs)
        pins = [
            Pin(f"in{i}", net, PinClass.DATA, speed)
            for i, (net, speed) in enumerate(zip(inputs, speeds))
        ]
        return self._stage(
            name, kind, pins, out, {"pull_up": pull_up, "pull_down": pull_down}, params
        )

    def nand(self, name: str, inputs: Sequence[Net], out: Net, pull_up: str,
             pull_down: str, **kw) -> Stage:
        return self.gate(name, StageKind.NAND, inputs, out, pull_up, pull_down, **kw)

    def nor(self, name: str, inputs: Sequence[Net], out: Net, pull_up: str,
            pull_down: str, **kw) -> Stage:
        return self.gate(name, StageKind.NOR, inputs, out, pull_up, pull_down, **kw)

    def xor(self, name: str, a: Net, b: Net, out: Net, pull_up: str,
            pull_down: str) -> Stage:
        return self.gate(name, StageKind.XOR, [a, b], out, pull_up, pull_down)

    def passgate(
        self,
        name: str,
        data: Net,
        select: Net,
        out: Net,
        pass_label: str,
        sel_inv_label: str,
        mutex: str = "strong",
    ) -> Stage:
        pins = [
            Pin("d", data, PinClass.DATA),
            Pin("s", select, PinClass.SELECT),
        ]
        return self._stage(
            name,
            StageKind.PASSGATE,
            pins,
            out,
            {"pass": pass_label, "sel_inv": sel_inv_label},
            {"mutex": mutex},
        )

    def tristate(
        self,
        name: str,
        data: Net,
        enable: Net,
        out: Net,
        pull_up: str,
        pull_down: str,
    ) -> Stage:
        pins = [
            Pin("d", data, PinClass.DATA),
            Pin("en", enable, PinClass.SELECT),
        ]
        return self._stage(
            name,
            StageKind.TRISTATE,
            pins,
            out,
            {"pull_up": pull_up, "pull_down": pull_down},
        )

    def domino(
        self,
        name: str,
        legs: Sequence[Sequence[Tuple[Net, PinClass]]],
        clock: Net,
        out: Net,
        precharge: str,
        data: str,
        evaluate: Optional[str] = None,
        speeds: Optional[Mapping[str, PinSpeed]] = None,
    ) -> Stage:
        """A domino node.  ``legs`` is a list of legs, each a list of
        ``(net, pin_class)`` from the node downward; legs may have different
        series depths (carry-lookahead nodes).  ``evaluate=None`` makes the
        node D2 (footless)."""
        if not legs or any(not leg for leg in legs):
            raise ValueError(f"domino {name}: needs nonempty legs")
        leg_sizes = tuple(len(leg) for leg in legs)
        leg_series = max(leg_sizes)
        speeds = dict(speeds or {})
        pins = [Pin("clk", clock, PinClass.CLOCK)]
        for li, leg in enumerate(legs):
            for si, (net, pin_class) in enumerate(leg):
                pin_name = f"l{li}s{si}"
                pins.append(
                    Pin(pin_name, net, pin_class, speeds.get(net.name))
                )
        size_vars = {"precharge": precharge, "data": data}
        clocked = evaluate is not None
        if clocked:
            size_vars["evaluate"] = evaluate
        return self._stage(
            name,
            StageKind.DOMINO,
            pins,
            out,
            size_vars,
            {
                "clocked": clocked,
                "leg_series": leg_series,
                "legs": len(legs),
                "leg_sizes": leg_sizes,
            },
        )

    def done(self) -> Circuit:
        return self.circuit
