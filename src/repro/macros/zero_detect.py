"""Zero-detect macros (Figure 5(b) corpus).

``zero = NOR(a_0 .. a_{n-1})`` — three topologies:

* **static tree**: a NOR4 first rank followed by alternating NAND4/NOR4
  ranks.  Input pins of every tree gate are annotated fast/slow (the first
  pin of each gate is the designated *slow* pin), which is what the Section
  5.2 pin-precedence pruning keys on.
* **domino**: one wide domino OR node (any bit high pulls the node low
  during evaluate), a high-skew inverter, and an output inverter.
* **split domino**: the wide node split in half, recombined with a NAND2 —
  same trade as the partitioned domino mux.
"""

from __future__ import annotations

from typing import List

from ..models.technology import Technology
from ..netlist.circuit import Circuit
from ..netlist.funcspec import Env, FunctionalSpec
from ..netlist.nets import Net, PinClass, PinSpeed
from ..netlist.stages import StageKind
from .base import MacroBuilder, MacroGenerator, MacroSpec

#: Max fan-in of one static tree gate.
TREE_ARITY = 4


def zero_detect_golden_spec(width: int) -> FunctionalSpec:
    """``zero = NOR(a_0 .. a_{n-1})`` — total over the full input space."""

    def zero(env: Env) -> bool:
        return not any(env[f"a{i}"] for i in range(width))

    return FunctionalSpec(
        outputs={"zero": zero},
        golden="zero_detect",
        notes=f"{width}-bit zero detect",
    )


class _ZeroDetectGenerator(MacroGenerator):
    """Shared golden-spec hook for the zero-detect topologies."""

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return zero_detect_golden_spec(spec.width)


def _speeds(count: int) -> List[PinSpeed]:
    """First pin slow, the rest fast — the static precedence partition."""
    return [PinSpeed.SLOW] + [PinSpeed.FAST] * (count - 1)


def _chunk_sizes(n: int) -> List[int]:
    """Partition ``n >= 2`` inputs into gate fan-ins between 2 and 4 (no
    1-input leftovers, so every tree level inverts uniformly)."""
    sizes = []
    remaining = n
    while remaining > 0:
        if remaining == 5:
            sizes.extend([3, 2])
            remaining = 0
        elif remaining >= 4:
            sizes.append(4)
            remaining -= 4
        elif remaining >= 2:
            sizes.append(remaining)
            remaining = 0
        else:  # remaining == 1: steal one from the last chunk
            sizes[-1] -= 1
            sizes.append(2)
            remaining = 0
    return sizes


class StaticTreeZeroDetect(_ZeroDetectGenerator):
    """Alternating NOR/NAND reduction tree."""

    name = "zero_detect/static_tree"
    macro_type = "zero_detect"
    description = "static NOR4/NAND4 reduction tree"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "zero_detect" and spec.width >= 2

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        builder = MacroBuilder(f"zdet{n}_static", tech)
        bits: List[Net] = [builder.input(f"a{i}") for i in range(n)]
        out = builder.output("zero", load=spec.output_load)

        level = 0
        current = bits
        # Level parity: even levels NOR (current signals active-high "bit
        # set"), odd levels NAND.  The tree output is "all zero" when the
        # total inversion count keeps the sense right; a final inverter rank
        # fixes parity when needed.
        while len(current) > 1:
            kind = StageKind.NOR if level % 2 == 0 else StageKind.NAND
            pu = builder.size(f"PT{level}")
            pd = builder.size(f"NT{level}")
            merged: List[Net] = []
            start = 0
            for gi, size in enumerate(_chunk_sizes(len(current))):
                chunk = current[start:start + size]
                start += size
                gate_out = builder.wire(f"l{level}_g{gi}")
                builder.gate(
                    f"lgate{level}_{gi}",
                    kind,
                    chunk,
                    gate_out,
                    pu,
                    pd,
                    speeds=_speeds(len(chunk)),
                )
                merged.append(gate_out)
            current = merged
            level += 1

        # Sense of the tree root: positive ("1 == all zero") after an odd
        # number of inverting levels.  Buffer to the output accordingly.
        pu = builder.size("POUT")
        pd = builder.size("NOUT")
        if level % 2 == 1:
            mid = builder.wire("rootb")
            builder.inv("outinv0", current[0], mid, pu, pd)
            pu2 = builder.size("POUT2")
            pd2 = builder.size("NOUT2")
            builder.inv("outinv1", mid, out, pu2, pd2)
        else:
            builder.inv("outinv0", current[0], out, pu, pd)
        return builder.done()


class DominoZeroDetect(_ZeroDetectGenerator):
    """Single wide domino OR node."""

    name = "zero_detect/domino"
    macro_type = "zero_detect"
    description = "un-split domino zero detect (wide OR node)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "zero_detect" and spec.width >= 2

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        builder = MacroBuilder(f"zdet{n}_domino", tech)
        bits = [builder.input(f"a{i}") for i in range(n)]
        out = builder.output("zero", load=spec.output_load)
        clk = builder.clock()
        builder.size("P1"), builder.size("N1"), builder.size("N2")
        builder.size("P3"), builder.size("N3")
        builder.size("P4"), builder.size("N4")
        node = builder.wire("dyn", wire_cap=0.4 * n)
        legs = [[(bit, PinClass.DATA)] for bit in bits]
        builder.domino("dom", legs, clk, node, "P1", "N1", evaluate="N2")
        nonzero = builder.wire("nonzero")
        builder.inv("nzinv", node, nonzero, "P3", "N3", skew="high")
        builder.inv("outinv", nonzero, out, "P4", "N4")
        return builder.done()


class SplitDominoZeroDetect(_ZeroDetectGenerator):
    """Two half-width domino nodes recombined with a NAND2."""

    name = "zero_detect/split_domino"
    macro_type = "zero_detect"
    description = "split domino zero detect (two half nodes + NAND2)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "zero_detect" and spec.width >= 8

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        m = n // 2
        builder = MacroBuilder(f"zdet{n}_split_domino", tech)
        bits = [builder.input(f"a{i}") for i in range(n)]
        out = builder.output("zero", load=spec.output_load)
        clk = builder.clock()
        builder.size("P1"), builder.size("N1"), builder.size("N2")
        builder.size("P5"), builder.size("N5")
        node_top = builder.wire("dyn_top", wire_cap=0.4 * m)
        node_bot = builder.wire("dyn_bot", wire_cap=0.4 * (n - m))
        builder.domino(
            "dom_top",
            [[(bit, PinClass.DATA)] for bit in bits[:m]],
            clk,
            node_top,
            "P1",
            "N1",
            evaluate="N2",
        )
        builder.domino(
            "dom_bot",
            [[(bit, PinClass.DATA)] for bit in bits[m:]],
            clk,
            node_bot,
            "P1",
            "N1",
            evaluate="N2",
        )
        # Both nodes stay high iff every bit is zero: zero = AND of the nodes.
        nonzero_b = builder.wire("zero_nand")
        builder.nand("combine", [node_top, node_bot], nonzero_b, "P5", "N5")
        builder.size("P6"), builder.size("N6")
        builder.inv("outinv", nonzero_b, out, "P6", "N6")
        return builder.done()


ALL_ZERO_DETECT_GENERATORS = (
    StaticTreeZeroDetect(),
    DominoZeroDetect(),
    SplitDominoZeroDetect(),
)
