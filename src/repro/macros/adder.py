"""Adder macros — headlined by the 64-bit dual-rail carry-lookahead domino
adder of Section 6.2.

**Dual-rail domino CLA** (``adder/dual_rail_domino_cla``): the high-
performance topology the paper sizes for the Figure-6 area-delay curve.
Domino logic is non-inverting, so both polarity rails of every signal are
computed explicitly ("dual-rail"):

* level 1 (D1, clocked): per bit, four domino nodes — generate
  ``g = a·b``, kill ``k = ā·b̄``, propagate ``p = a⊕b`` and its complement
  ``p̄`` — each buffered by a high-skew inverter;
* level 2 (D2): per 4-bit group, lookahead nodes
  ``G = g3 + p3 g2 + p3 p2 g1 + p3 p2 p1 g0``,
  ``A = k3 + p3 k2 + p3 p2 k1 + p3 p2 p1 k0`` (the *absorb* rail
  ``A = Ḡ·P̄`` — no generate and not all-propagate; the complement-carry
  recursion is ``c̄_out = A + P·c̄_in``, so the zero-carry-in all-propagate
  term is added only where a complement carry is actually formed),
  ``P = p3 p2 p1 p0`` and ``P̄ = p̄3 + p̄2 + p̄1 + p̄0``;
* level 3 (D2): the same equations over 4 groups per supergroup;
* level 4 (D2): carry ripple-of-lookahead — carries into each supergroup,
  group and bit on both rails;
* sum (D2): ``sum_i = p_i c̄_i + p̄_i c_i`` domino XOR, then an output driver.

Size labels are shared per level and rail type (the Section-4 regularity
labeling), so the GP stays small even at 64 bits while the raw path space is
huge — this macro is the paper's Section-5.2 path-reduction example.

**Static ripple adder** (``adder/static_ripple``): the database's low-cost
alternative; NAND-majority carry chain plus XOR sums.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..models.technology import Technology
from ..netlist.circuit import Circuit
from ..netlist.funcspec import Env, FunctionalSpec
from ..netlist.nets import Net, PinClass
from .base import MacroBuilder, MacroGenerator, MacroSpec

GROUP = 4          # bits per lookahead group
SUPER = 4     # groups per supergroup


def adder_golden_spec(width: int, has_cin: bool) -> FunctionalSpec:
    """``{sum, cout} = a + b (+ cin)`` — the golden adder function.  The CLA
    topology has no carry input (``has_cin=False``); both topologies carry
    the same ``golden`` marker since cin-less addition is the same function
    restricted to ``cin = 0``."""

    def total(env: Env) -> int:
        a = sum(1 << i for i in range(width) if env[f"a{i}"])
        b = sum(1 << i for i in range(width) if env[f"b{i}"])
        cin = int(bool(env["cin"])) if has_cin else 0
        return a + b + cin

    outputs = {
        f"sum{i}": (lambda env, i=i: bool((total(env) >> i) & 1))
        for i in range(width)
    }
    outputs["cout"] = lambda env: bool((total(env) >> width) & 1)

    def sampler(rng: random.Random) -> Dict[str, bool]:
        # Bias toward long-carry operands: all-propagate (a XOR b per bit)
        # half the time, else uniform.
        env: Dict[str, bool] = {}
        if rng.getrandbits(1):
            for i in range(width):
                env[f"a{i}"] = bool(rng.getrandbits(1))
                env[f"b{i}"] = not env[f"a{i}"]
            flip = rng.randrange(width)
            env[f"b{flip}"] = env[f"a{flip}"]
        else:
            for i in range(width):
                env[f"a{i}"] = bool(rng.getrandbits(1))
                env[f"b{i}"] = bool(rng.getrandbits(1))
        if has_cin:
            env["cin"] = bool(rng.getrandbits(1))
        return env

    return FunctionalSpec(
        outputs=outputs,
        sampler=sampler,
        golden="adder",
        notes=f"{width}-bit add{' with cin' if has_cin else ''}",
    )


class DualRailDominoCLA(MacroGenerator):
    """64-bit (any multiple of 16) dual-rail domino carry-lookahead adder."""

    name = "adder/dual_rail_domino_cla"
    macro_type = "adder"
    description = "dual-rail domino carry-lookahead adder (Sec 6.2)"

    def applicable(self, spec: MacroSpec) -> bool:
        return (
            spec.macro_type == "adder"
            and spec.width >= 16
            and spec.width % 16 == 0
        )

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return adder_golden_spec(spec.width, has_cin=False)

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _domino_pair(
        builder: MacroBuilder,
        name: str,
        legs: List[List[Tuple[Net, PinClass]]],
        clk: Net,
        labels: Tuple[str, str, str, str, str],
        clocked: bool,
        skew_inv: bool = True,
    ) -> Net:
        """One domino node + high-skew buffer; returns the buffered net.

        ``labels`` = (precharge, data, evaluate, inv pull-up, inv pull-down);
        evaluate ignored when ``clocked`` is False.
        """
        node = builder.wire(f"{name}_dyn")
        buffered = builder.wire(f"{name}")
        builder.domino(
            f"{name}_dom",
            legs,
            clk,
            node,
            labels[0],
            labels[1],
            evaluate=labels[2] if clocked else None,
        )
        builder.inv(
            f"{name}_buf", node, buffered, labels[3], labels[4],
            skew="high" if skew_inv else None,
        )
        return buffered

    def _level_labels(self, builder: MacroBuilder, tag: str, clocked: bool):
        labels = (
            builder.size(f"P_{tag}"),
            builder.size(f"N_{tag}"),
            builder.size(f"E_{tag}") if clocked else "",
            builder.size(f"PI_{tag}"),
            builder.size(f"NI_{tag}"),
        )
        return labels

    @staticmethod
    def _lookahead_legs(
        g: Sequence[Net], p: Sequence[Net]
    ) -> List[List[Tuple[Net, PinClass]]]:
        """``G = g3 + p3 g2 + p3 p2 g1 + p3 p2 p1 g0`` legs (msb first)."""
        n = len(g)
        legs = []
        for j in range(n - 1, -1, -1):
            leg = [(p[i], PinClass.DATA) for i in range(n - 1, j, -1)]
            leg.append((g[j], PinClass.DATA))
            legs.append(leg)
        return legs

    @staticmethod
    def _kill_legs(
        k: Sequence[Net], p: Sequence[Net]
    ) -> List[List[Tuple[Net, PinClass]]]:
        """Zero-carry-in complement legs: the G-form over absorbs plus the
        all-propagate leg (``c̄ = A + P·c̄_in`` with ``c̄_in = 1``).

        Only valid where the incoming carry is the constant 0 (the adder's
        own carry-in).  Mid-chain complement rails must use
        :meth:`_lookahead_legs` over absorbs and gate the all-propagate leg
        with the upstream complement carry instead — folding the
        all-propagate term into the stored rail asserts "no carry" whenever
        a group merely propagates, which drives both carry rails high when
        an upstream group generates."""
        legs = DualRailDominoCLA._lookahead_legs(k, p)
        legs.append([(net, PinClass.DATA) for net in reversed(p)])
        return legs

    @staticmethod
    def _carry_legs(
        gen: Sequence[Net],
        prop: Sequence[Net],
        upstream: Net = None,
    ) -> List[List[Tuple[Net, PinClass]]]:
        """Carry into a position: lookahead over the *preceding* gen/prop
        (lists are the preceding positions, lsb..msb), plus an all-propagate
        leg carrying ``upstream`` when given."""
        legs = DualRailDominoCLA._lookahead_legs(gen, prop)
        if upstream is not None:
            leg = [(net, PinClass.DATA) for net in reversed(prop)]
            leg.append((upstream, PinClass.DATA))
            legs.append(leg)
        return legs

    # -- construction --------------------------------------------------------------

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        width = spec.width
        n_groups = width // GROUP
        n_supers = n_groups // SUPER
        builder = MacroBuilder(f"adder{width}_dual_rail_domino_cla", tech)
        clk = builder.clock()

        a = [builder.input(f"a{i}") for i in range(width)]
        b = [builder.input(f"b{i}") for i in range(width)]

        # Complement rails through a shared-label inverter rank.
        pu_in = builder.size("P_in")
        pd_in = builder.size("N_in")
        a_b = []
        b_b = []
        for i in range(width):
            an = builder.wire(f"an{i}")
            bn = builder.wire(f"bn{i}")
            builder.inv(f"ainv{i}", a[i], an, pu_in, pd_in)
            builder.inv(f"binv{i}", b[i], bn, pu_in, pd_in)
            a_b.append(an)
            b_b.append(bn)

        # Level 1: per-bit g / k / p / p̄ (D1, clocked).
        lbl = {
            rail: self._level_labels(builder, f"1{rail}", clocked=True)
            for rail in ("g", "k", "p", "pb")
        }
        g, k, p, pb = [], [], [], []
        for i in range(width):
            g.append(
                self._domino_pair(
                    builder, f"g{i}",
                    [[(a[i], PinClass.DATA), (b[i], PinClass.DATA)]],
                    clk, lbl["g"], clocked=True,
                )
            )
            k.append(
                self._domino_pair(
                    builder, f"k{i}",
                    [[(a_b[i], PinClass.DATA), (b_b[i], PinClass.DATA)]],
                    clk, lbl["k"], clocked=True,
                )
            )
            p.append(
                self._domino_pair(
                    builder, f"p{i}",
                    [
                        [(a[i], PinClass.DATA), (b_b[i], PinClass.DATA)],
                        [(a_b[i], PinClass.DATA), (b[i], PinClass.DATA)],
                    ],
                    clk, lbl["p"], clocked=True,
                )
            )
            pb.append(
                self._domino_pair(
                    builder, f"pb{i}",
                    [
                        [(a[i], PinClass.DATA), (b[i], PinClass.DATA)],
                        [(a_b[i], PinClass.DATA), (b_b[i], PinClass.DATA)],
                    ],
                    clk, lbl["pb"], clocked=True,
                )
            )

        # Level 2: group lookahead (D2).
        lbl2 = {
            rail: self._level_labels(builder, f"2{rail}", clocked=False)
            for rail in ("G", "K", "P", "Pb")
        }
        G, K, P, Pb = [], [], [], []
        for j in range(n_groups):
            gs = g[j * GROUP:(j + 1) * GROUP]
            ks = k[j * GROUP:(j + 1) * GROUP]
            ps = p[j * GROUP:(j + 1) * GROUP]
            pbs = pb[j * GROUP:(j + 1) * GROUP]
            G.append(
                self._domino_pair(
                    builder, f"G{j}", self._lookahead_legs(gs, ps),
                    clk, lbl2["G"], clocked=False,
                )
            )
            # Absorb rail (no all-propagate leg): consumed by complement-
            # carry lookaheads whose carry-in is NOT the constant 0.
            K.append(
                self._domino_pair(
                    builder, f"K{j}", self._lookahead_legs(ks, ps),
                    clk, lbl2["K"], clocked=False,
                )
            )
            P.append(
                self._domino_pair(
                    builder, f"P{j}",
                    [[(net, PinClass.DATA) for net in ps]],
                    clk, lbl2["P"], clocked=False,
                )
            )
            Pb.append(
                self._domino_pair(
                    builder, f"Pb{j}",
                    [[(net, PinClass.DATA)] for net in pbs],
                    clk, lbl2["Pb"], clocked=False,
                )
            )

        # Level 3: supergroup lookahead (D2).
        lbl3 = {
            rail: self._level_labels(builder, f"3{rail}", clocked=False)
            for rail in ("G", "K", "P", "Pb")
        }
        GS, KS, PS, PbS = [], [], [], []
        for s in range(n_supers):
            Gs = G[s * SUPER:(s + 1) * SUPER]
            Ks = K[s * SUPER:(s + 1) * SUPER]
            Ps = P[s * SUPER:(s + 1) * SUPER]
            Pbs = Pb[s * SUPER:(s + 1) * SUPER]
            GS.append(
                self._domino_pair(
                    builder, f"GS{s}", self._lookahead_legs(Gs, Ps),
                    clk, lbl3["G"], clocked=False,
                )
            )
            # Supergroup absorb rail, same convention as the group K rail.
            KS.append(
                self._domino_pair(
                    builder, f"KS{s}", self._lookahead_legs(Ks, Ps),
                    clk, lbl3["K"], clocked=False,
                )
            )
            PS.append(
                self._domino_pair(
                    builder, f"PS{s}",
                    [[(net, PinClass.DATA) for net in Ps]],
                    clk, lbl3["P"], clocked=False,
                )
            )
            PbS.append(
                self._domino_pair(
                    builder, f"PbS{s}",
                    [[(net, PinClass.DATA)] for net in Pbs],
                    clk, lbl3["Pb"], clocked=False,
                )
            )

        # Level 4: carries (both rails) into supergroups, groups, bits.
        lblc = self._level_labels(builder, "4c", clocked=False)
        lblcb = self._level_labels(builder, "4cb", clocked=False)

        c_super: List[Net] = [None]   # carry into supergroup 0 is 0
        cb_super: List[Net] = [None]  # its complement is constant 1
        for s in range(1, n_supers + 1):
            c_super.append(
                self._domino_pair(
                    builder, f"csup{s}",
                    self._carry_legs(GS[:s], PS[:s]),
                    clk, lblc, clocked=False,
                )
            )
            cb_super.append(
                self._domino_pair(
                    builder, f"cbsup{s}",
                    self._kill_legs(KS[:s], PS[:s]),
                    clk, lblcb, clocked=False,
                )
            )

        c_group: List[Net] = []
        cb_group: List[Net] = []
        for j in range(n_groups):
            s = j // SUPER
            local = j % SUPER
            if local == 0:
                c_group.append(c_super[s])
                cb_group.append(cb_super[s])
                continue
            lo = s * SUPER
            gen = G[lo:j]
            prop = P[lo:j]
            kil = K[lo:j]
            c_group.append(
                self._domino_pair(
                    builder, f"cgrp{j}",
                    self._carry_legs(gen, prop, upstream=c_super[s]),
                    clk, lblc, clocked=False,
                )
            )
            legs_cb = self._lookahead_legs(kil, prop)
            if cb_super[s] is not None:
                leg = [(net, PinClass.DATA) for net in reversed(prop)]
                leg.append((cb_super[s], PinClass.DATA))
                legs_cb.append(leg)
            else:
                legs_cb.append([(net, PinClass.DATA) for net in reversed(prop)])
            cb_group.append(
                self._domino_pair(
                    builder, f"cbgrp{j}", legs_cb, clk, lblcb, clocked=False,
                )
            )

        c_bit: List[Net] = []
        cb_bit: List[Net] = []
        for i in range(width):
            j = i // GROUP
            local = i % GROUP
            if local == 0:
                c_bit.append(c_group[j])
                cb_bit.append(cb_group[j])
                continue
            lo = j * GROUP
            gen = g[lo:i]
            prop = p[lo:i]
            kil = k[lo:i]
            c_bit.append(
                self._domino_pair(
                    builder, f"cbit{i}",
                    self._carry_legs(gen, prop, upstream=c_group[j]),
                    clk, lblc, clocked=False,
                )
            )
            legs_cb = self._lookahead_legs(kil, prop)
            if cb_group[j] is not None:
                leg = [(net, PinClass.DATA) for net in reversed(prop)]
                leg.append((cb_group[j], PinClass.DATA))
                legs_cb.append(leg)
            else:
                legs_cb.append([(net, PinClass.DATA) for net in reversed(prop)])
            cb_bit.append(
                self._domino_pair(
                    builder, f"cbbit{i}", legs_cb, clk, lblcb, clocked=False,
                )
            )

        # Sum stage: domino XOR of p and the bit carry, then output driver.
        lbls = self._level_labels(builder, "5s", clocked=False)
        pu_out = builder.size("P_out")
        pd_out = builder.size("N_out")
        for i in range(width):
            if c_bit[i] is None:
                # Bit 0: carry-in is 0, so sum = p directly.
                legs = [[(p[i], PinClass.DATA)]]
            else:
                legs = [
                    [(p[i], PinClass.DATA), (cb_bit[i], PinClass.DATA)],
                    [(pb[i], PinClass.DATA), (c_bit[i], PinClass.DATA)],
                ]
            node = builder.wire(f"sum{i}_dyn")
            builder.domino(f"sum{i}_dom", legs, clk, node, lbls[0], lbls[1])
            out = builder.output(f"sum{i}", load=spec.output_load)
            builder.inv(f"sum{i}_drv", node, out, pu_out, pd_out, skew="high")

        cout = builder.output("cout", load=spec.output_load)
        pu_co = builder.size("P_co")
        pd_co = builder.size("N_co")
        cout_b = builder.wire("cout_b")
        builder.inv("cout_inv0", c_super[n_supers], cout_b, pu_co, pd_co)
        builder.inv("cout_inv1", cout_b, cout, pu_out, pd_out)
        return builder.done()


class StaticRippleAdder(MacroGenerator):
    """Static ripple-carry adder: NAND-majority carry, XOR sums."""

    name = "adder/static_ripple"
    macro_type = "adder"
    description = "static ripple-carry adder (NAND majority + XOR)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "adder" and spec.width >= 2

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return adder_golden_spec(spec.width, has_cin=True)

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        width = spec.width
        group = int(spec.param("label_group", 8))
        builder = MacroBuilder(f"adder{width}_static_ripple", tech)
        a = [builder.input(f"a{i}") for i in range(width)]
        b = [builder.input(f"b{i}") for i in range(width)]
        carry = builder.input("cin")

        def lab(base: str, bit: int) -> str:
            return builder.size(f"{base}g{bit // group}")

        for i in range(width):
            px1, nx1 = lab("PX1", i), lab("NX1", i)
            px2, nx2 = lab("PX2", i), lab("NX2", i)
            half = builder.wire(f"h{i}")
            out = builder.output(f"sum{i}", load=spec.output_load)
            builder.xor(f"hx{i}", a[i], b[i], half, px1, nx1)
            builder.xor(f"sx{i}", half, carry, out, px2, nx2)
            # Majority carry: c' = NAND(NAND(a,b), NAND(a,c), NAND(b,c)).
            pn, nn = lab("PM", i), lab("NM", i)
            pj, nj = lab("PJ", i), lab("NJ", i)
            ab = builder.wire(f"ab{i}")
            ac = builder.wire(f"ac{i}")
            bc = builder.wire(f"bc{i}")
            builder.nand(f"mab{i}", [a[i], b[i]], ab, pn, nn)
            builder.nand(f"mac{i}", [a[i], carry], ac, pn, nn)
            builder.nand(f"mbc{i}", [b[i], carry], bc, pn, nn)
            if i < width - 1:
                nxt = builder.wire(f"c{i + 1}")
            else:
                nxt = builder.output("cout", load=spec.output_load)
            builder.nand(f"mj{i}", [ab, ac, bc], nxt, pj, nj)
            carry = nxt
        return builder.done()


ALL_ADDER_GENERATORS = (
    DualRailDominoCLA(),
    StaticRippleAdder(),
)
