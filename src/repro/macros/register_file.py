"""Register-file read-port macros.

Register files close the paper's macro list ("decoders, encoders,
zero-detects, register files etc.").  The timing-critical piece — what SMART
would size — is the *read path*: address decode plus per-bit bitline muxing
of the selected word.  Storage cells hold state between clock edges and are
not part of the combinational sizing problem, so the word outputs enter the
macro as data inputs ``d{reg}_{bit}``.

Topologies:

* **domino bitline** — a flat static decoder produces one-hot word lines;
  each bit's bitline is a clocked domino node with one [wordline, data] leg
  per register plus a high-skew sense inverter (the local-bitline structure
  of real register files).  Built compositionally: the decoder sub-circuit
  is instantiated with :meth:`Circuit.merge`.
* **tristate bitline** — word lines enable per-register tri-states onto a
  shared bitline; the static choice for small register counts.
"""

from __future__ import annotations


from ..models.technology import Technology
from ..netlist.circuit import Circuit
from ..netlist.funcspec import Env, FunctionalSpec
from ..netlist.nets import PinClass
from .base import MacroBuilder, MacroGenerator, MacroSpec
from .decoder import FlatStaticDecoder

#: Bitline wire capacitance per register tap, fF.
BITLINE_CAP_PER_REG = 0.8


def _address_bits(registers: int) -> int:
    bits = (registers - 1).bit_length()
    if 1 << bits != registers:
        raise ValueError(f"register count must be a power of two, got {registers}")
    return max(1, bits)


def register_file_golden_spec(bits: int, regs: int) -> FunctionalSpec:
    """``q_b = d[addr]_b`` — the read port returns the addressed word."""
    abits = _address_bits(regs)

    def address(env: Env) -> int:
        return sum(1 << a for a in range(abits) if env[f"a{a}"])

    outputs = {
        f"q{b}": (lambda env, b=b: bool(env[f"d{address(env)}_{b}"]))
        for b in range(bits)
    }
    return FunctionalSpec(
        outputs=outputs,
        golden="register_file",
        notes=f"{regs}x{bits} read port",
    )


class _ReadPortGenerator(MacroGenerator):
    """Shared golden-spec hook for the read-port topologies."""

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return register_file_golden_spec(
            spec.width, int(spec.param("registers", 8))
        )


class DominoBitlineReadPort(_ReadPortGenerator):
    """Decoder + clocked domino bitline per bit."""

    name = "register_file/domino_bitline"
    macro_type = "register_file"
    description = "read port: flat decoder + domino bitline per bit"

    def applicable(self, spec: MacroSpec) -> bool:
        regs = int(spec.param("registers", 8))
        return (
            spec.macro_type == "register_file"
            and spec.width >= 1
            and 2 <= regs <= 128
            and (regs & (regs - 1)) == 0
        )

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        bits = spec.width
        regs = int(spec.param("registers", 8))
        abits = _address_bits(regs)
        builder = MacroBuilder(f"rf{regs}x{bits}_domino_read", tech)
        circuit = builder.circuit
        clk = builder.clock()

        # Address inputs and word-line nets exist before the merge so the
        # decoder sub-circuit binds to them by name.
        for a in range(abits):
            builder.input(f"a{a}")
        for code in range(regs):
            builder.wire(f"o{code}")

        decoder = FlatStaticDecoder().generate(
            MacroSpec("decoder", abits, output_load=0.0), tech
        )
        circuit.merge(decoder, prefix="dec")

        builder.size("P1"), builder.size("N1"), builder.size("E1")
        builder.size("P2"), builder.size("N2")
        for b in range(bits):
            legs = []
            for r in range(regs):
                data = builder.input(f"d{r}_{b}")
                legs.append(
                    [
                        (circuit.net(f"o{r}"), PinClass.SELECT),
                        (data, PinClass.DATA),
                    ]
                )
            bitline = builder.wire(
                f"bl{b}", wire_cap=BITLINE_CAP_PER_REG * regs
            )
            out = builder.output(f"q{b}", load=spec.output_load)
            builder.domino(
                f"bitmux{b}", legs, clk, bitline, "P1", "N1", evaluate="E1"
            )
            builder.inv(f"sense{b}", bitline, out, "P2", "N2", skew="high")
        return builder.done()


class TristateBitlineReadPort(_ReadPortGenerator):
    """Decoder + tri-state bitline per bit (static alternative)."""

    name = "register_file/tristate_bitline"
    macro_type = "register_file"
    description = "read port: flat decoder + tri-state bitline per bit"

    def applicable(self, spec: MacroSpec) -> bool:
        regs = int(spec.param("registers", 8))
        return (
            spec.macro_type == "register_file"
            and spec.width >= 1
            and 2 <= regs <= 32
            and (regs & (regs - 1)) == 0
        )

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        bits = spec.width
        regs = int(spec.param("registers", 8))
        abits = _address_bits(regs)
        builder = MacroBuilder(f"rf{regs}x{bits}_tristate_read", tech)
        circuit = builder.circuit

        for a in range(abits):
            builder.input(f"a{a}")
        for code in range(regs):
            builder.wire(f"o{code}")

        decoder = FlatStaticDecoder().generate(
            MacroSpec("decoder", abits, output_load=0.0), tech
        )
        circuit.merge(decoder, prefix="dec")

        builder.size("P1"), builder.size("N1")
        builder.size("P2"), builder.size("N2")
        for b in range(bits):
            bitline = builder.wire(
                f"bl{b}", wire_cap=BITLINE_CAP_PER_REG * regs
            )
            out = builder.output(f"q{b}", load=spec.output_load)
            for r in range(regs):
                data = builder.input(f"d{r}_{b}")
                builder.tristate(
                    f"bit{b}reg{r}", data, circuit.net(f"o{r}"), bitline,
                    "P1", "N1",
                )
            builder.inv(f"sense{b}", bitline, out, "P2", "N2")
        return builder.done()


ALL_REGISTER_FILE_GENERATORS = (
    DominoBitlineReadPort(),
    TristateBitlineReadPort(),
)
