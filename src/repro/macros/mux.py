"""Multiplexor macro topologies — the Figure 2 database.

Six topologies, with the paper's default labelings:

====================================  =========================================
Figure 2(a) strongly mutexed N-first  drivers P1/N1, pass gates N2 (select
pass-gate mux                         inverter a fixed relation of N2), output
                                      driver P3/N3
Figure 2(b) weakly mutexed pass-gate  as (a) plus select NOR labeled P4/N4
Figure 2(c) 2-input pass-gate mux     as (a); local select complement P4/N4
with encoded select
Figure 2(d) tri-state mux             tri-states P1/N1 (enable inverter a
                                      fixed relation), output driver P2/N2
Figure 2(e) un-split domino mux       precharge P1, data N1, evaluate N2,
                                      output driver P3/N3 (high skew)
Figure 2(f) (m, N-m) partitioned      top partition P1/N1/N2, bottom P3/N3/N4
domino mux                            (shared when partitions are equal),
                                      output combiner P5/N5
====================================  =========================================
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..models.technology import Technology
from ..netlist.circuit import Circuit
from ..netlist.funcspec import Env, FunctionalSpec
from ..netlist.nets import PinClass
from .base import MacroBuilder, MacroGenerator, MacroSpec

#: Per-input wire capacitance of the shared merge node, fF (grows with mux
#: width — the physical node gets longer).
MERGE_WIRE_CAP_PER_INPUT = 0.6


def mux_golden_spec(n: int, encoding: str = "onehot") -> FunctionalSpec:
    """The *single* golden mux function: ``out = in[selected index]``.

    Every mux topology in the database — whatever its select encoding or
    circuit family — must prove equivalent to this one reference function
    (SVC401), which is what licenses the advisor to treat the six
    implementations as interchangeable.  ``encoding`` adapts the select
    decode, not the function:

    * ``"onehot"`` — selects ``s0..s{n-1}``, valid iff exactly one is high;
    * ``"onehot_weak"`` — selects ``s0..s{n-2}``, valid iff at most one is
      high (none high routes input ``n-1``, Figure 2(b)'s NOR);
    * ``"encoded"`` — one ``select`` pin, 2-input only.
    """

    def selected(env: Env) -> int:
        if encoding == "encoded":
            return 1 if env["select"] else 0
        for i in range(n - 1 if encoding == "onehot_weak" else n):
            if env[f"s{i}"]:
                return i
        return n - 1  # onehot_weak: NOR term routes the last input

    def out(env: Env) -> bool:
        return bool(env[f"in{selected(env)}"])

    valid = None
    sampler = None
    if encoding == "onehot":

        def valid(env: Env) -> bool:
            return sum(bool(env[f"s{i}"]) for i in range(n)) == 1

        def sampler(rng: random.Random) -> Dict[str, bool]:
            hot = rng.randrange(n)
            env = {f"s{i}": i == hot for i in range(n)}
            env.update({f"in{i}": bool(rng.getrandbits(1)) for i in range(n)})
            return env

    elif encoding == "onehot_weak":

        def valid(env: Env) -> bool:
            return sum(bool(env[f"s{i}"]) for i in range(n - 1)) <= 1

        def sampler(rng: random.Random) -> Dict[str, bool]:
            hot = rng.randrange(n)
            env = {f"s{i}": i == hot for i in range(n - 1)}
            env.update({f"in{i}": bool(rng.getrandbits(1)) for i in range(n)})
            return env

    return FunctionalSpec(
        outputs={"out": out},
        valid=valid,
        sampler=sampler,
        golden="mux",
        notes=f"{n}-input mux, {encoding} selects",
    )


def _mux_io(builder: MacroBuilder, n: int, spec: MacroSpec, n_selects: int):
    data = [builder.input(f"in{i}") for i in range(n)]
    selects = [builder.input(f"s{i}") for i in range(n_selects)]
    # Long-interconnect instances (Section 4's tri-state use case) declare
    # the output wire's lumped resistance via the ``wire_res`` spec param.
    out = builder.output(
        "out",
        load=spec.output_load,
        wire_res=float(spec.param("wire_res", 0.0)),
    )
    return data, selects, out


class StrongMutexPassgateMux(MacroGenerator):
    """Figure 2(a): one-hot selects, N-first pass gates."""

    name = "mux/strong_mutex_passgate"
    macro_type = "mux"
    description = "strongly mutexed N-first pass-gate mux (Fig 2a)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "mux" and spec.width >= 2

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return mux_golden_spec(spec.width, "onehot")

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        builder = MacroBuilder(f"mux{n}_strong_pass", tech)
        data, selects, out = _mux_io(builder, n, spec, n)
        builder.size("P1"), builder.size("N1")
        builder.size("N2")
        builder.size("N2i", ratio_of=("N2", 0.5))
        builder.size("P3"), builder.size("N3")
        merge = builder.wire("merge", wire_cap=MERGE_WIRE_CAP_PER_INPUT * n)
        for i in range(n):
            mid = builder.wire(f"mid{i}")
            builder.inv(f"drv{i}", data[i], mid, "P1", "N1")
            builder.passgate(
                f"pass{i}", mid, selects[i], merge, "N2", "N2i", mutex="strong"
            )
        builder.inv("outdrv", merge, out, "P3", "N3")
        return builder.done()


class WeakMutexPassgateMux(MacroGenerator):
    """Figure 2(b): selects not guaranteed one-hot; the last select is the
    NOR of the others, adding select-to-output delay."""

    name = "mux/weak_mutex_passgate"
    macro_type = "mux"
    description = "weakly mutexed N-first pass-gate mux (Fig 2b)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "mux" and spec.width >= 3

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return mux_golden_spec(spec.width, "onehot_weak")

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        builder = MacroBuilder(f"mux{n}_weak_pass", tech)
        data, selects, out = _mux_io(builder, n, spec, n - 1)
        builder.size("P1"), builder.size("N1")
        builder.size("N2")
        builder.size("N2i", ratio_of=("N2", 0.5))
        builder.size("P3"), builder.size("N3")
        builder.size("P4"), builder.size("N4")
        merge = builder.wire("merge", wire_cap=MERGE_WIRE_CAP_PER_INPUT * n)
        last_sel = builder.wire("slast")
        builder.nor("selnor", selects, last_sel, "P4", "N4")
        all_selects = list(selects) + [last_sel]
        for i in range(n):
            mid = builder.wire(f"mid{i}")
            builder.inv(f"drv{i}", data[i], mid, "P1", "N1")
            builder.passgate(
                f"pass{i}", mid, all_selects[i], merge, "N2", "N2i", mutex="weak"
            )
        builder.inv("outdrv", merge, out, "P3", "N3")
        return builder.done()


class EncodedSelectMux2(MacroGenerator):
    """Figure 2(c): 2-input pass-gate mux steered by one encoded select (a
    local complement inverter, no mutex-forcing NOR in the select path)."""

    name = "mux/encoded_select_2to1"
    macro_type = "mux"
    description = "2-input pass-gate mux with encoded select (Fig 2c)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "mux" and spec.width == 2

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return mux_golden_spec(2, "encoded")

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        builder = MacroBuilder("mux2_encoded_pass", tech)
        data = [builder.input("in0"), builder.input("in1")]
        select = builder.input("select")
        out = builder.output("out", load=spec.output_load)
        builder.size("P1"), builder.size("N1")
        builder.size("N2")
        builder.size("N2i", ratio_of=("N2", 0.5))
        builder.size("P3"), builder.size("N3")
        builder.size("P4"), builder.size("N4")
        merge = builder.wire("merge", wire_cap=MERGE_WIRE_CAP_PER_INPUT * 2)
        sel_b = builder.wire("selb")
        builder.inv("selinv", select, sel_b, "P4", "N4")
        for i, sel_net in enumerate((sel_b, select)):
            mid = builder.wire(f"mid{i}")
            builder.inv(f"drv{i}", data[i], mid, "P1", "N1")
            builder.passgate(
                f"pass{i}", mid, sel_net, merge, "N2", "N2i", mutex="encoded"
            )
        builder.inv("outdrv", merge, out, "P3", "N3")
        return builder.done()


class TristateMux(MacroGenerator):
    """Figure 2(d): tri-state drivers onto a shared node — "used when the
    load to be driven is very large or when the input signals travel over
    long interconnects"."""

    name = "mux/tristate"
    macro_type = "mux"
    description = "tri-state mux (Fig 2d)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "mux" and spec.width >= 2

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return mux_golden_spec(spec.width, "onehot")

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        builder = MacroBuilder(f"mux{n}_tristate", tech)
        data, selects, out = _mux_io(builder, n, spec, n)
        builder.size("P1"), builder.size("N1")
        builder.size("P2"), builder.size("N2")
        merge = builder.wire("merge", wire_cap=MERGE_WIRE_CAP_PER_INPUT * n)
        for i in range(n):
            builder.tristate(f"tri{i}", data[i], selects[i], merge, "P1", "N1")
        builder.inv("outdrv", merge, out, "P2", "N2")
        return builder.done()


class UnsplitDominoMux(MacroGenerator):
    """Figure 2(e): all product terms on a single domino node.  "The clock
    power is an important design metric in the selection of this topology."""

    name = "mux/unsplit_domino"
    macro_type = "mux"
    description = "Nx1 un-split domino mux (Fig 2e)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "mux" and spec.width >= 2

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return mux_golden_spec(spec.width, "onehot")

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        builder = MacroBuilder(f"mux{n}_unsplit_domino", tech)
        data, selects, out = _mux_io(builder, n, spec, n)
        clk = builder.clock()
        builder.size("P1")
        builder.size("N1")
        builder.size("N2")
        builder.size("P3"), builder.size("N3")
        node = builder.wire("dyn", wire_cap=MERGE_WIRE_CAP_PER_INPUT * n)
        legs = [
            [(selects[i], PinClass.SELECT), (data[i], PinClass.DATA)]
            for i in range(n)
        ]
        builder.domino("dom", legs, clk, node, "P1", "N1", evaluate="N2")
        builder.inv("outdrv", node, out, "P3", "N3", skew="high")
        return builder.done()


class PartitionedDominoMux(MacroGenerator):
    """Figure 2(f): the node is split into (m, N-m) partitions — "typically
    better than (e) in terms of area and power when the size of the mux is
    large.  A good choice of m is m = floor(n/2)".  Equal partitions share
    labels; unequal partitions are labeled separately, per the paper."""

    name = "mux/partitioned_domino"
    macro_type = "mux"
    description = "(m, N-m) partitioned domino mux (Fig 2f)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "mux" and spec.width >= 4

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return mux_golden_spec(spec.width, "onehot")

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        m = int(spec.param("partition", n // 2))
        if not 1 <= m < n:
            raise ValueError(f"partition size {m} invalid for {n}-input mux")
        builder = MacroBuilder(f"mux{n}_part{m}_domino", tech)
        data, selects, out = _mux_io(builder, n, spec, n)
        clk = builder.clock()
        builder.size("P1"), builder.size("N1"), builder.size("N2")
        equal = (m == n - m)
        if equal:
            top_labels = bottom_labels = ("P1", "N1", "N2")
        else:
            builder.size("P3"), builder.size("N3"), builder.size("N4")
            top_labels = ("P1", "N1", "N2")
            bottom_labels = ("P3", "N3", "N4")
        builder.size("P5"), builder.size("N5")

        node_top = builder.wire("dyn_top", wire_cap=MERGE_WIRE_CAP_PER_INPUT * m)
        node_bot = builder.wire(
            "dyn_bot", wire_cap=MERGE_WIRE_CAP_PER_INPUT * (n - m)
        )
        legs_top = [
            [(selects[i], PinClass.SELECT), (data[i], PinClass.DATA)]
            for i in range(m)
        ]
        legs_bot = [
            [(selects[i], PinClass.SELECT), (data[i], PinClass.DATA)]
            for i in range(m, n)
        ]
        builder.domino(
            "dom_top", legs_top, clk, node_top,
            top_labels[0], top_labels[1], evaluate=top_labels[2],
        )
        builder.domino(
            "dom_bot", legs_bot, clk, node_bot,
            bottom_labels[0], bottom_labels[1], evaluate=bottom_labels[2],
        )
        # Both dynamic nodes precharge high; at most one falls, so a NAND2
        # recovers the selected data (OR of the two partitions' terms).
        builder.nand("combine", [node_top, node_bot], out, "P5", "N5")
        return builder.done()


ALL_MUX_GENERATORS: Tuple[MacroGenerator, ...] = (
    StrongMutexPassgateMux(),
    WeakMutexPassgateMux(),
    EncodedSelectMux2(),
    TristateMux(),
    UnsplitDominoMux(),
    PartitionedDominoMux(),
)
