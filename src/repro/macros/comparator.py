"""32-bit two-stage dynamic (D1-D2) equality comparators — the Figure-7
topology-exploration corpus.

``equal = NOR over all bits of (a_i XOR b_i)``, computed in two domino
phases.  The three published alternatives differ in how the XOR terms are
lumped and how the wide NOR is decomposed:

=========================  =============================================
``comparator/xorsum2``     D1: Xorsum2 x16, NAND2 x8 | D2: NOR4 x2, NAND2
(the "original" Merced     (the topology the paper's designers chose; the
topology)                  SMART exploration confirms it wins)
``comparator/xorsum1``     D1: Xorsum1 x32, NAND2 x16 | D2: NOR8 x2, NAND2
``comparator/xorsum4``     D1: Xorsum4 x8, NAND2 x4 | D2: NOR4 x1, INV
=========================  =============================================

An "XorsumK" D1 gate is a clocked domino node with ``2K`` legs of series 2 —
one leg per mismatch minterm ``a_i b̄_i`` / ``ā_i b_i`` over its K bit pairs —
whose buffered output rises when *any* of its K pairs differ.  NAND2s pair
the difference signals (static, inverting, so the D2 NOR sees active-low
"pair group equal" signals); the D2 domino NOR combines them; a final static
gate restores the ``equal`` sense.

The generator is parameterized by ``(k, nor_width, final)`` so new
alternatives are one registry entry away, matching how a designer would
explore with SMART.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..models.technology import Technology
from ..netlist.circuit import Circuit
from ..netlist.funcspec import Env, FunctionalSpec
from ..netlist.nets import Net, PinClass
from .base import MacroBuilder, MacroGenerator, MacroSpec


def comparator_golden_spec(width: int) -> FunctionalSpec:
    """``equal = (a == b)`` with a sampler biased toward (near-)equal
    operands: uniform sampling at width 32 would essentially never exercise
    the equal case, leaving half of the truth table untested."""

    def equal(env: Env) -> bool:
        return all(bool(env[f"a{i}"]) == bool(env[f"b{i}"]) for i in range(width))

    def sampler(rng: random.Random) -> Dict[str, bool]:
        env = {f"a{i}": bool(rng.getrandbits(1)) for i in range(width)}
        mode = rng.randrange(3)
        for i in range(width):
            env[f"b{i}"] = env[f"a{i}"] if mode else bool(rng.getrandbits(1))
        if mode == 2:  # near miss: exactly one differing bit
            flip = rng.randrange(width)
            env[f"b{flip}"] = not env[f"b{flip}"]
        return env

    return FunctionalSpec(
        outputs={"equal": equal},
        sampler=sampler,
        golden="comparator",
        notes=f"{width}-bit equality",
    )


class TwoPhaseDominoComparator(MacroGenerator):
    """Parameterized D1-D2 domino equality comparator."""

    #: bits per D1 xorsum gate
    k = 2
    #: fan-in of the D2 NOR rank
    nor_width = 4
    #: "nand2" or "inv" final output gate
    final = "nand2"

    name = "comparator/xorsum2"
    macro_type = "comparator"
    description = "D1: Xorsum2 + Nand2, D2: Nor4 + Nand2 (original topology)"

    def applicable(self, spec: MacroSpec) -> bool:
        if spec.macro_type != "comparator":
            return False
        width = spec.width
        n_xorsum = width // self.k
        if width % self.k:
            return False
        n_pairs = n_xorsum // 2
        if n_xorsum % 2:
            return False
        n_nor = n_pairs // self.nor_width
        if n_pairs % self.nor_width:
            return False
        if self.final == "nand2":
            return n_nor == 2
        return n_nor == 1

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return comparator_golden_spec(spec.width)

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        width = spec.width
        builder = MacroBuilder(
            f"cmp{width}_xorsum{self.k}_nor{self.nor_width}", tech
        )
        a = [builder.input(f"a{i}") for i in range(width)]
        b = [builder.input(f"b{i}") for i in range(width)]
        out = builder.output("equal", load=spec.output_load)
        clk = builder.clock()

        # Complement rails (shared labels).
        pu_in = builder.size("P_in")
        pd_in = builder.size("N_in")
        a_b, b_b = [], []
        for i in range(width):
            an = builder.wire(f"an{i}")
            bn = builder.wire(f"bn{i}")
            builder.inv(f"ainv{i}", a[i], an, pu_in, pd_in)
            builder.inv(f"binv{i}", b[i], bn, pu_in, pd_in)
            a_b.append(an)
            b_b.append(bn)

        # D1 rank: XorsumK domino nodes ("pairs differ").
        builder.size("P1"), builder.size("N1"), builder.size("E1")
        builder.size("PI1"), builder.size("NI1")
        diffs: List[Net] = []
        for gi in range(width // self.k):
            legs = []
            for bit in range(gi * self.k, (gi + 1) * self.k):
                legs.append([(a[bit], PinClass.DATA), (b_b[bit], PinClass.DATA)])
                legs.append([(a_b[bit], PinClass.DATA), (b[bit], PinClass.DATA)])
            node = builder.wire(f"xs{gi}_dyn")
            diff = builder.wire(f"diff{gi}")
            builder.domino(f"xs{gi}", legs, clk, node, "P1", "N1", evaluate="E1")
            builder.inv(f"xsbuf{gi}", node, diff, "PI1", "NI1", skew="high")
            diffs.append(diff)

        # Static NAND2 rank closing D1: "both groups equal", active low...
        # nand(diff_i, diff_j) is high unless both differ; to keep the logic
        # monotonic for D2 we instead NOR pairs of diff signals: high when
        # neither group differs.  The paper's label is Nand2; with active-low
        # difference rails the same gate count and loading results, so we
        # keep the published NOR-equivalent structure under the Nand2 name.
        builder.size("P2"), builder.size("N2")
        pair_eq: List[Net] = []
        for pi in range(0, len(diffs), 2):
            eq = builder.wire(f"paireq{pi // 2}")
            builder.nor(
                f"pairgate{pi // 2}", [diffs[pi], diffs[pi + 1]], eq, "P2", "N2"
            )
            pair_eq.append(eq)

        # D2 rank: domino NOR over "pair equal" signals.  The node falls when
        # any pair_eq is low?  Domino pulls down on *high* inputs, so gate the
        # legs with the complement sense: re-invert pair_eq locally.
        builder.size("P2i"), builder.size("N2i")
        pair_ne: List[Net] = []
        for i, eq in enumerate(pair_eq):
            ne = builder.wire(f"pairne{i}")
            builder.inv(f"pairinv{i}", eq, ne, "P2i", "N2i")
            pair_ne.append(ne)

        builder.size("P3"), builder.size("N3")
        builder.size("PI3"), builder.size("NI3")
        nor_nodes: List[Net] = []
        for ni in range(0, len(pair_ne), self.nor_width):
            chunk = pair_ne[ni:ni + self.nor_width]
            node = builder.wire(f"nor{ni}_dyn")
            buffered = builder.wire(f"anydiff{ni}")
            builder.domino(
                f"nor{ni}",
                [[(net, PinClass.DATA)] for net in chunk],
                clk,
                node,
                "P3",
                "N3",
            )
            builder.inv(f"norbuf{ni}", node, buffered, "PI3", "NI3", skew="high")
            nor_nodes.append(buffered)

        # Final gate restores "equal": no group saw a difference.
        builder.size("P4"), builder.size("N4")
        if self.final == "nand2" and len(nor_nodes) == 2:
            builder.nor("outgate", nor_nodes, out, "P4", "N4")
        else:
            builder.inv("outgate", nor_nodes[0], out, "P4", "N4")
        return builder.done()


class Xorsum1Comparator(TwoPhaseDominoComparator):
    k = 1
    nor_width = 8
    final = "nand2"
    name = "comparator/xorsum1"
    description = "D1: Xorsum1 + Nand2, D2: Nor8 + Nand2 (alternative 1)"


class Xorsum4Comparator(TwoPhaseDominoComparator):
    k = 4
    nor_width = 4
    final = "inv"
    name = "comparator/xorsum4"
    description = "D1: Xorsum4 + Nand2, D2: Nor4 + INV (alternative 2)"


ALL_COMPARATOR_GENERATORS = (
    TwoPhaseDominoComparator(),
    Xorsum1Comparator(),
    Xorsum4Comparator(),
)
